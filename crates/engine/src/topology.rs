//! The tiered virtual-grid hierarchy (paper Section 2, Figure 1).
//!
//! The network is organised in tiers: leaf sensors at the bottom, and at
//! each higher tier one leader per cell of an increasingly coarse virtual
//! grid, up to a single leader for the whole network. *"At each cell at
//! the lowest tier of the grid, there is one leader (or parent) node,
//! that is responsible for processing the measurements of all the sensors
//! in the cell."* Leader election itself is out of scope for the paper
//! (it defers to [17, 33, 47]); here leader assignment is deterministic,
//! which also makes simulations replayable.
//!
//! Three constructors cover the paper's experiments and the scaling
//! benchmarks:
//!
//! * [`Hierarchy::balanced`] — explicit per-tier fan-outs, e.g.
//!   `balanced(32, &[4, 2, 4])` builds the 32-leaf / 8 / 4 / 1 four-level
//!   hierarchy used in the accuracy experiments (§10.2).
//! * [`Hierarchy::virtual_grid`] — a `side × side` leaf grid with
//!   quad-tree cells, the literal Figure 1 shape, used for the
//!   communication-scaling experiment (Figure 11).
//! * [`Hierarchy::deep`] — a deep (4–5 tier) shape with near-uniform
//!   fan-outs derived from the leaf count, for the 1k/10k/50k-leaf scale
//!   benchmarks.
//!
//! Storage is flat: child lists and tier membership live in two CSR
//! (compressed sparse row) arenas — one contiguous id vector plus an
//! offset vector each — instead of one heap allocation per node. At 50k
//! nodes that is 4 allocations total rather than ~100k, and walking a
//! tier or a child list is a contiguous slice scan.

use crate::node::{Location, NodeId, NodeRole};
use crate::SimError;

/// A CSR arena of node-id rows: row `i` is `ids[off[i]..off[i+1]]`.
#[derive(Debug, Clone)]
struct Rows {
    ids: Vec<NodeId>,
    off: Vec<u32>,
}

impl Rows {
    fn new() -> Self {
        Self {
            ids: Vec::new(),
            off: vec![0],
        }
    }

    /// Appends a row; rows must be pushed in index order.
    fn push(&mut self, row: &[NodeId]) {
        self.ids.extend_from_slice(row);
        self.off.push(self.ids.len() as u32);
    }

    /// Appends an empty row (leaves have no children).
    fn push_empty(&mut self) {
        self.off.push(self.ids.len() as u32);
    }

    fn row(&self, i: usize) -> &[NodeId] {
        &self.ids[self.off[i] as usize..self.off[i + 1] as usize]
    }

    fn len(&self) -> usize {
        self.off.len() - 1
    }
}

/// An immutable tiered hierarchy of nodes.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    roles: Vec<NodeRole>,
    locations: Vec<Location>,
    parents: Vec<Option<NodeId>>,
    /// CSR child lists, indexed by node id.
    children: Rows,
    /// CSR tier membership; row 0 is the leaf tier (level 1).
    levels: Rows,
}

impl Hierarchy {
    /// Builds a balanced hierarchy: `leaf_count` leaves, then one tier
    /// per entry of `fanouts`, where each leader adopts (up to)
    /// `fanouts[t]` nodes of the tier below. The fan-outs must reduce
    /// the network to a single root (checked — [`SimError::MultiRoot`]
    /// otherwise).
    ///
    /// ```
    /// use snod_engine::Hierarchy;
    /// // The paper's §10.2 setup: 32 leaf streams under 3 leader tiers.
    /// let h = Hierarchy::balanced(32, &[4, 2, 4]).unwrap();
    /// assert_eq!(h.leaves().len(), 32);
    /// assert_eq!(h.level_count(), 4);
    /// assert_eq!(h.node_count(), 32 + 8 + 4 + 1);
    /// ```
    pub fn balanced(leaf_count: usize, fanouts: &[usize]) -> Result<Self, SimError> {
        if leaf_count == 0 {
            return Err(SimError::ZeroSize("leaf count"));
        }
        if fanouts.contains(&0) {
            return Err(SimError::ZeroSize("fan-out"));
        }
        let mut roles = Vec::with_capacity(leaf_count * 2);
        let mut parents: Vec<Option<NodeId>> = Vec::with_capacity(leaf_count * 2);
        let mut children = Rows::new();
        let mut levels = Rows::new();

        let mut current: Vec<NodeId> = (0..leaf_count)
            .map(|i| {
                roles.push(NodeRole::Leaf);
                parents.push(None);
                children.push_empty();
                NodeId(i as u32)
            })
            .collect();
        levels.push(&current);

        for (tier, &fanout) in fanouts.iter().enumerate() {
            let mut next = Vec::with_capacity(current.len().div_ceil(fanout));
            for group in current.chunks(fanout) {
                let leader = NodeId(roles.len() as u32);
                roles.push(NodeRole::Leader {
                    level: (tier + 2) as u8,
                });
                parents.push(None);
                children.push(group);
                for &c in group {
                    parents[c.index()] = Some(leader);
                }
                next.push(leader);
            }
            levels.push(&next);
            current = next;
        }

        let top_tier = levels.row(levels.len() - 1).len();
        if top_tier != 1 {
            return Err(SimError::MultiRoot { top_tier });
        }

        // Leaf placement on a near-square grid; leaders at child centroids.
        let side = (leaf_count as f64).sqrt().ceil() as usize;
        let mut locations = vec![Location { x: 0.0, y: 0.0 }; roles.len()];
        for (i, leaf) in levels.row(0).iter().enumerate() {
            locations[leaf.index()] = Location {
                x: (i % side) as f64 / side.max(1) as f64,
                y: (i / side) as f64 / side.max(1) as f64,
            };
        }
        for level in 1..levels.len() {
            for li in levels.off[level] as usize..levels.off[level + 1] as usize {
                let leader = levels.ids[li];
                let kids = children.row(leader.index());
                let n = kids.len() as f64;
                let (sx, sy) = kids.iter().fold((0.0, 0.0), |(sx, sy), c| {
                    let l = locations[c.index()];
                    (sx + l.x, sy + l.y)
                });
                locations[leader.index()] = Location {
                    x: sx / n,
                    y: sy / n,
                };
            }
        }

        Ok(Self {
            roles,
            locations,
            parents,
            children,
            levels,
        })
    }

    /// A deep balanced hierarchy: `tiers` total levels (counting the
    /// leaf tier) over `leaf_count` leaves, with near-uniform fan-outs
    /// of roughly `leaf_count^(1/(tiers-1))` per tier so the top tier
    /// is a single root. This is the generator behind the 1k/10k/50k
    /// scale benchmarks:
    ///
    /// ```
    /// use snod_engine::Hierarchy;
    /// let h = Hierarchy::deep(10_000, 5).unwrap();
    /// assert_eq!(h.leaves().len(), 10_000);
    /// assert_eq!(h.level_count(), 5);
    /// ```
    pub fn deep(leaf_count: usize, tiers: usize) -> Result<Self, SimError> {
        if leaf_count == 0 {
            return Err(SimError::ZeroSize("leaf count"));
        }
        if tiers == 0 {
            return Err(SimError::ZeroSize("tier count"));
        }
        if tiers == 1 {
            // Only the degenerate single-node network has one tier.
            return if leaf_count == 1 {
                Self::balanced(1, &[])
            } else {
                Err(SimError::MultiRoot {
                    top_tier: leaf_count,
                })
            };
        }
        let leader_tiers = tiers - 1;
        let mut fanouts = Vec::with_capacity(leader_tiers);
        let mut remaining = leaf_count;
        for t in 0..leader_tiers {
            let left = (leader_tiers - t) as f64;
            // `remaining^(1/left)` rounded up always reaches 1 by the
            // top tier; once it does, fan-out 2 chains single leaders
            // upward so the requested depth is exact.
            let f = ((remaining as f64).powf(1.0 / left).ceil() as usize).max(2);
            fanouts.push(f);
            remaining = remaining.div_ceil(f);
        }
        Self::balanced(leaf_count, &fanouts)
    }

    /// A `side × side` leaf grid organised by quad-tree cells (fan-out 4
    /// per tier) until a single root remains — the literal shape of the
    /// paper's Figure 1. `side` is rounded up to a power of two.
    pub fn virtual_grid(side: usize) -> Result<Self, SimError> {
        if side == 0 {
            return Err(SimError::ZeroSize("grid side"));
        }
        let side = side.next_power_of_two();
        let tiers = side.trailing_zeros() as usize; // log2(side) quad tiers
        // Build by explicit quad-tree grouping (chunks() in `balanced`
        // would group linearly, breaking 2-d cell locality).
        let leaf_count = side * side;
        let mut roles = Vec::with_capacity(leaf_count * 2);
        let mut parents: Vec<Option<NodeId>> = Vec::with_capacity(leaf_count * 2);
        let mut children = Rows::new();
        let mut levels = Rows::new();
        let mut locations = Vec::with_capacity(leaf_count * 2);

        // Leaf tier, row-major on the plane.
        let mut grid: Vec<Vec<NodeId>> = Vec::with_capacity(side);
        for y in 0..side {
            let mut row = Vec::with_capacity(side);
            for x in 0..side {
                let id = NodeId(roles.len() as u32);
                roles.push(NodeRole::Leaf);
                parents.push(None);
                children.push_empty();
                locations.push(Location {
                    x: (x as f64 + 0.5) / side as f64,
                    y: (y as f64 + 0.5) / side as f64,
                });
                row.push(id);
            }
            grid.push(row);
        }
        let leaf_row: Vec<NodeId> = grid.iter().flatten().copied().collect();
        levels.push(&leaf_row);

        let mut dim = side;
        for tier in 0..tiers {
            let next_dim = dim / 2;
            let mut next_grid: Vec<Vec<NodeId>> = Vec::with_capacity(next_dim);
            for cy in 0..next_dim {
                let mut row = Vec::with_capacity(next_dim);
                for cx in 0..next_dim {
                    let kids = [
                        grid[2 * cy][2 * cx],
                        grid[2 * cy][2 * cx + 1],
                        grid[2 * cy + 1][2 * cx],
                        grid[2 * cy + 1][2 * cx + 1],
                    ];
                    let leader = NodeId(roles.len() as u32);
                    roles.push(NodeRole::Leader {
                        level: (tier + 2) as u8,
                    });
                    let (sx, sy) = kids.iter().fold((0.0, 0.0), |(sx, sy), c| {
                        let l: Location = locations[c.index()];
                        (sx + l.x, sy + l.y)
                    });
                    locations.push(Location {
                        x: sx / 4.0,
                        y: sy / 4.0,
                    });
                    parents.push(None);
                    children.push(&kids);
                    for &c in &kids {
                        parents[c.index()] = Some(leader);
                    }
                    row.push(leader);
                }
                next_grid.push(row);
            }
            let tier_row: Vec<NodeId> = next_grid.iter().flatten().copied().collect();
            levels.push(&tier_row);
            grid = next_grid;
            dim = next_dim;
        }

        Ok(Self {
            roles,
            locations,
            parents,
            children,
            levels,
        })
    }

    /// Total number of nodes (leaves + leaders).
    pub fn node_count(&self) -> usize {
        self.roles.len()
    }

    /// Number of tiers, counting the leaf tier.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Node ids at tier `level` (1-based; level 1 = leaves).
    pub fn level(&self, level: usize) -> &[NodeId] {
        self.levels.row(level - 1)
    }

    /// All leaf sensors.
    pub fn leaves(&self) -> &[NodeId] {
        self.levels.row(0)
    }

    /// The single node at the highest tier.
    pub fn root(&self) -> NodeId {
        *self
            .levels
            .row(self.levels.len() - 1)
            .first()
            .expect("top tier has a node")
    }

    /// Role of `node`.
    pub fn role(&self, node: NodeId) -> NodeRole {
        self.roles[node.index()]
    }

    /// Tier of `node` (1 = leaf).
    pub fn level_of(&self, node: NodeId) -> u8 {
        self.roles[node.index()].level()
    }

    /// The leader `node` reports to, `None` for the root.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.parents[node.index()]
    }

    /// The nodes reporting to `node` (empty for leaves).
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        self.children.row(node.index())
    }

    /// Location of `node` on the unit square.
    pub fn location(&self, node: NodeId) -> Location {
        self.locations[node.index()]
    }

    /// Leaf sensors in the subtree rooted at `node` (the sensors whose
    /// combined sliding window the leader summarises — paper Section 3).
    pub fn descendant_leaves(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            if self.role(n).is_leaf() {
                out.push(n);
            } else {
                stack.extend(self.children(n).iter().copied());
            }
        }
        out.sort();
        out
    }

    /// Validates that `node` exists.
    pub fn check(&self, node: NodeId) -> Result<(), SimError> {
        if node.index() < self.roles.len() {
            Ok(())
        } else {
            Err(SimError::UnknownNode(node))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_paper_setup() {
        let h = Hierarchy::balanced(32, &[4, 2, 4]).unwrap();
        assert_eq!(h.node_count(), 45);
        assert_eq!(h.level(1).len(), 32);
        assert_eq!(h.level(2).len(), 8);
        assert_eq!(h.level(3).len(), 4);
        assert_eq!(h.level(4).len(), 1);
        assert_eq!(h.level_of(h.root()), 4);
    }

    #[test]
    fn balanced_rejects_zero_parameters() {
        assert!(Hierarchy::balanced(0, &[4]).is_err());
        assert!(Hierarchy::balanced(8, &[0]).is_err());
    }

    #[test]
    fn balanced_rejects_fanouts_that_leave_multiple_roots() {
        // 8 leaves under a single fan-out-4 tier leaves 2 top nodes.
        assert!(matches!(
            Hierarchy::balanced(8, &[4]),
            Err(SimError::MultiRoot { top_tier: 2 })
        ));
        // Multiple leaves with no leader tier at all.
        assert!(matches!(
            Hierarchy::balanced(4, &[]),
            Err(SimError::MultiRoot { top_tier: 4 })
        ));
    }

    #[test]
    fn balanced_handles_fanout_product_exceeding_leaf_count() {
        // 5 leaves under fan-outs whose product (8) overshoots: tiers
        // shrink as ceil(n/f) and the shape still reduces to one root.
        let h = Hierarchy::balanced(5, &[4, 2]).unwrap();
        assert_eq!(h.level(1).len(), 5);
        assert_eq!(h.level(2).len(), 2); // ceil(5/4)
        assert_eq!(h.level(3).len(), 1);
        // The second leader adopted the lone leftover leaf.
        let l2 = h.level(2);
        assert_eq!(h.children(l2[0]).len(), 4);
        assert_eq!(h.children(l2[1]).len(), 1);
    }

    #[test]
    fn balanced_degenerate_fanout_one_chains_single_nodes() {
        let h = Hierarchy::balanced(1, &[1, 1]).unwrap();
        assert_eq!(h.node_count(), 3);
        assert_eq!(h.level_count(), 3);
        // A chain: leaf → mid → root, one node per tier.
        for level in 1..=3 {
            assert_eq!(h.level(level).len(), 1);
        }
        let mid = h.level(2)[0];
        assert_eq!(h.parent(h.leaves()[0]), Some(mid));
        assert_eq!(h.parent(mid), Some(h.root()));
        // Fan-out 1 over multiple leaves can never reduce.
        assert!(matches!(
            Hierarchy::balanced(3, &[1, 1]),
            Err(SimError::MultiRoot { top_tier: 3 })
        ));
    }

    #[test]
    fn parent_child_links_are_consistent() {
        let h = Hierarchy::balanced(32, &[4, 2, 4]).unwrap();
        for level in 1..=h.level_count() {
            for &n in h.level(level) {
                if let Some(p) = h.parent(n) {
                    assert!(h.children(p).contains(&n));
                    assert_eq!(h.level_of(p), h.level_of(n) + 1);
                } else {
                    assert_eq!(n, h.root());
                }
            }
        }
    }

    #[test]
    fn every_leaf_reaches_the_root() {
        let h = Hierarchy::balanced(32, &[4, 2, 4]).unwrap();
        for &leaf in h.leaves() {
            let mut n = leaf;
            let mut hops = 0;
            while let Some(p) = h.parent(n) {
                n = p;
                hops += 1;
                assert!(hops <= h.level_count());
            }
            assert_eq!(n, h.root());
        }
    }

    #[test]
    fn descendant_leaves_partition_the_network() {
        let h = Hierarchy::balanced(32, &[4, 2, 4]).unwrap();
        // The root covers every leaf.
        assert_eq!(h.descendant_leaves(h.root()).len(), 32);
        // Level-2 leaders partition the leaves.
        let mut seen = Vec::new();
        for &l in h.level(2) {
            seen.extend(h.descendant_leaves(l));
        }
        seen.sort();
        assert_eq!(seen, h.leaves());
    }

    #[test]
    fn deep_hits_requested_tier_count_at_scale() {
        for (leaves, tiers) in [(1_000, 4), (10_000, 5), (50_000, 5)] {
            let h = Hierarchy::deep(leaves, tiers).unwrap();
            assert_eq!(h.leaves().len(), leaves, "{leaves}/{tiers}");
            assert_eq!(h.level_count(), tiers, "{leaves}/{tiers}");
            assert_eq!(h.level(tiers).len(), 1);
            // Structure is sound: every leaf climbs to the root in
            // exactly tiers-1 hops, and tier widths strictly shrink.
            let mut n = h.leaves()[0];
            let mut hops = 0;
            while let Some(p) = h.parent(n) {
                n = p;
                hops += 1;
            }
            assert_eq!(hops, tiers - 1);
            for t in 1..tiers {
                assert!(h.level(t + 1).len() < h.level(t).len().max(2));
            }
        }
    }

    #[test]
    fn deep_degenerate_shapes() {
        // Few leaves under a deep request: fan-out-2 chains pad the
        // depth so the tier count is still exact.
        let h = Hierarchy::deep(2, 5).unwrap();
        assert_eq!(h.level_count(), 5);
        assert_eq!(h.leaves().len(), 2);
        let h = Hierarchy::deep(1, 1).unwrap();
        assert_eq!(h.node_count(), 1);
        assert!(Hierarchy::deep(0, 4).is_err());
        assert!(Hierarchy::deep(4, 0).is_err());
        assert!(matches!(
            Hierarchy::deep(4, 1),
            Err(SimError::MultiRoot { top_tier: 4 })
        ));
    }

    #[test]
    fn virtual_grid_is_a_quad_tree() {
        let h = Hierarchy::virtual_grid(4).unwrap();
        assert_eq!(h.leaves().len(), 16);
        assert_eq!(h.level_count(), 3); // 16 → 4 → 1
        assert_eq!(h.level(2).len(), 4);
        assert_eq!(h.level(3).len(), 1);
        for &l in h.level(2) {
            assert_eq!(h.children(l).len(), 4);
            // children of a quad cell are mutually close on the plane
            let locs: Vec<_> = h.children(l).iter().map(|&c| h.location(c)).collect();
            for a in &locs {
                for b in &locs {
                    assert!(a.distance(b) < 0.5);
                }
            }
        }
    }

    #[test]
    fn virtual_grid_rounds_to_power_of_two() {
        let h = Hierarchy::virtual_grid(3).unwrap();
        assert_eq!(h.leaves().len(), 16);
    }

    #[test]
    fn leader_location_is_child_centroid() {
        let h = Hierarchy::virtual_grid(2).unwrap();
        let root = h.root();
        let loc = h.location(root);
        assert!((loc.x - 0.5).abs() < 1e-12);
        assert!((loc.y - 0.5).abs() < 1e-12);
    }

    #[test]
    fn check_rejects_unknown_nodes() {
        let h = Hierarchy::balanced(4, &[4]).unwrap();
        assert!(h.check(NodeId(0)).is_ok());
        assert!(h.check(NodeId(99)).is_err());
    }

    #[test]
    fn single_leaf_degenerate_hierarchy() {
        let h = Hierarchy::balanced(1, &[]).unwrap();
        assert_eq!(h.node_count(), 1);
        assert_eq!(h.root(), NodeId(0));
        assert!(h.parent(NodeId(0)).is_none());
    }
}
