//! The Section 9 applications of the estimation framework.
//!
//! *"An accurate online approximation of the probability density function
//! allows us to solve a number of problems in a sensor network."* Three
//! of them are implemented here:
//!
//! * [`estimate_range_count`] / [`estimate_range_mean`] — online
//!   (spatio-temporal) range queries: *"What is the average temperature
//!   in region (X, Y) during the time interval [t₁, t₂]?"*
//! * [`detect_faulty_sensors`] — *"a parent sensor can compute the
//!   difference between the estimator models received from its children,
//!   to determine if any of them is faulty"*, using the JS-divergence of
//!   Section 6.
//! * [`OutlierCountAlarm`] — *"Give a warning if the number of outliers
//!   in a given region exceeds a given threshold T over the most recent
//!   time window W"*, built on the exponential histogram so the alarm
//!   itself stays within sketch memory.

use snod_density::{js_divergence_models, DensityModel, GridDiscretization};
use snod_persist::{ByteReader, ByteWriter, Persist, PersistError};
use snod_sketch::ExpHistogram;

use crate::config::CoreError;

/// Estimated number of window readings inside the box `[lo, hi]`
/// (Equation 4 generalised to an arbitrary box).
pub fn estimate_range_count<M: DensityModel + ?Sized>(
    model: &M,
    lo: &[f64],
    hi: &[f64],
) -> Result<f64, CoreError> {
    Ok(model.box_prob(lo, hi)? * model.window_len())
}

/// Estimated mean of the readings inside the box `[lo, hi]`, computed by
/// integrating the model over a `grid_k`-cell discretisation of the box.
/// Returns `None` when the box has (estimated) zero mass.
pub fn estimate_range_mean<M: DensityModel + ?Sized>(
    model: &M,
    lo: &[f64],
    hi: &[f64],
    grid_k: usize,
) -> Result<Option<Vec<f64>>, CoreError> {
    let d = model.dims();
    if lo.len() != d || hi.len() != d || grid_k == 0 {
        return Err(CoreError::Config("mean query box/grid malformed"));
    }
    let mut mass_total = 0.0;
    let mut weighted = vec![0.0; d];
    // Iterate the k^d sub-cells of the query box.
    let total = grid_k.pow(d as u32);
    let mut cell_lo = vec![0.0; d];
    let mut cell_hi = vec![0.0; d];
    for flat in 0..total {
        let mut rem = flat;
        for j in (0..d).rev() {
            let idx = rem % grid_k;
            rem /= grid_k;
            let w = (hi[j] - lo[j]) / grid_k as f64;
            cell_lo[j] = lo[j] + idx as f64 * w;
            cell_hi[j] = cell_lo[j] + w;
        }
        let mass = model.box_prob(&cell_lo, &cell_hi)?;
        mass_total += mass;
        for j in 0..d {
            weighted[j] += mass * 0.5 * (cell_lo[j] + cell_hi[j]);
        }
    }
    if mass_total <= f64::EPSILON {
        return Ok(None);
    }
    Ok(Some(weighted.into_iter().map(|w| w / mass_total).collect()))
}

/// Flags children whose estimator model diverges from their siblings.
///
/// For each model, the **minimum** JS-divergence to any sibling is
/// computed on a `grid_k` grid; indices whose minimum exceeds
/// `threshold` are reported. The minimum (rather than the mean) makes
/// the attribution robust: one genuinely faulty sensor would inflate
/// every healthy sibling's *mean* by `d/(l−1)`, while each healthy
/// sensor always has a healthy sibling at small minimum distance. Needs
/// at least three children to be meaningful (with two you cannot tell
/// which one is faulty); with fewer, returns empty.
pub fn detect_faulty_sensors<M: DensityModel>(
    models: &[M],
    grid_k: usize,
    threshold: f64,
) -> Result<Vec<usize>, CoreError> {
    if models.len() < 3 {
        return Ok(Vec::new());
    }
    let dims = models[0].dims();
    let grid = GridDiscretization::new(dims, grid_k).map_err(CoreError::Density)?;
    let probs: Vec<Vec<f64>> = models
        .iter()
        .map(|m| grid.cell_probs(m).map_err(CoreError::Density))
        .collect::<Result<_, _>>()?;
    let n = models.len();
    let mut flagged = Vec::new();
    for i in 0..n {
        let mut min_div = f64::INFINITY;
        for (j, q) in probs.iter().enumerate() {
            if i != j {
                min_div = min_div.min(snod_density::js_divergence(&probs[i], q));
            }
        }
        if min_div > threshold {
            flagged.push(i);
        }
    }
    Ok(flagged)
}

/// Mean pairwise JS-divergence between two concrete models — the §9
/// primitive exposed directly (e.g. for dashboards).
pub fn model_distance<A: DensityModel + ?Sized, B: DensityModel + ?Sized>(
    a: &A,
    b: &B,
    grid_k: usize,
) -> Result<f64, CoreError> {
    js_divergence_models(a, b, grid_k).map_err(CoreError::Density)
}

/// Windowed outlier-count alarm: *"warn if the number of outliers in a
/// given region exceeds T over the most recent window W"*.
#[derive(Debug, Clone)]
pub struct OutlierCountAlarm {
    counter: ExpHistogram,
    threshold: u64,
}

impl OutlierCountAlarm {
    /// Alarm over the last `window` readings with trigger `threshold`,
    /// counting with relative error `eps`.
    pub fn new(window: usize, threshold: u64, eps: f64) -> Result<Self, CoreError> {
        Ok(Self {
            counter: ExpHistogram::new(window, eps).map_err(CoreError::Sketch)?,
            threshold,
        })
    }

    /// Records one reading's verdict.
    pub fn record(&mut self, is_outlier: bool) {
        self.counter.push(is_outlier);
    }

    /// Estimated outliers in the window.
    pub fn estimate(&self) -> u64 {
        self.counter.estimate()
    }

    /// True when the estimated count exceeds the threshold.
    pub fn alarmed(&self) -> bool {
        self.counter.estimate() > self.threshold
    }
}

impl Persist for OutlierCountAlarm {
    fn save(&self, w: &mut ByteWriter) {
        self.counter.save(w);
        self.threshold.save(w);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            counter: ExpHistogram::load(r)?,
            threshold: u64::load(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snod_density::Kde1d;

    fn model_at(center: f64, n: usize) -> Kde1d {
        let xs: Vec<f64> = (0..n).map(|i| center + 0.002 * ((i % 25) as f64)).collect();
        Kde1d::from_sample(&xs, 0.02, 1_000.0).unwrap()
    }

    #[test]
    fn range_count_matches_model_mass() {
        let m = model_at(0.5, 100);
        let inside = estimate_range_count(&m, &[0.4], &[0.6]).unwrap();
        let outside = estimate_range_count(&m, &[0.8], &[0.9]).unwrap();
        assert!(inside > 900.0, "inside {inside}");
        assert!(outside < 10.0, "outside {outside}");
    }

    #[test]
    fn range_mean_recovers_cluster_position() {
        let m = model_at(0.5, 200);
        let mean = estimate_range_mean(&m, &[0.0], &[1.0], 64)
            .unwrap()
            .expect("non-zero mass");
        assert!((mean[0] - 0.525).abs() < 0.02, "mean {mean:?}");
    }

    #[test]
    fn range_mean_of_empty_region_is_none() {
        let m = model_at(0.2, 100);
        assert!(estimate_range_mean(&m, &[0.8], &[0.9], 16)
            .unwrap()
            .is_none());
    }

    #[test]
    fn faulty_sensor_stands_out() {
        let healthy: Vec<Kde1d> = (0..4).map(|_| model_at(0.5, 100)).collect();
        let mut models = healthy;
        models.push(model_at(0.9, 100)); // the faulty one
        let flagged = detect_faulty_sensors(&models, 64, 0.5).unwrap();
        assert_eq!(flagged, vec![4]);
    }

    #[test]
    fn no_faults_when_siblings_agree() {
        let models: Vec<Kde1d> = (0..4)
            .map(|i| model_at(0.5 + 0.001 * i as f64, 100))
            .collect();
        assert!(detect_faulty_sensors(&models, 64, 0.5).unwrap().is_empty());
    }

    #[test]
    fn too_few_siblings_yield_no_verdict() {
        let models = vec![model_at(0.2, 50), model_at(0.8, 50)];
        assert!(detect_faulty_sensors(&models, 32, 0.1).unwrap().is_empty());
    }

    #[test]
    fn outlier_alarm_trips_and_recovers() {
        let mut alarm = OutlierCountAlarm::new(100, 5, 0.1).unwrap();
        for _ in 0..50 {
            alarm.record(false);
        }
        assert!(!alarm.alarmed());
        for _ in 0..10 {
            alarm.record(true);
        }
        assert!(alarm.alarmed(), "estimate {}", alarm.estimate());
        for _ in 0..200 {
            alarm.record(false);
        }
        assert!(!alarm.alarmed());
    }

    #[test]
    fn model_distance_is_symmetric_enough() {
        let a = model_at(0.3, 100);
        let b = model_at(0.7, 100);
        let ab = model_distance(&a, &b, 64).unwrap();
        let ba = model_distance(&b, &a, 64).unwrap();
        assert!((ab - ba).abs() < 1e-12);
        assert!(ab > 0.8);
    }
}
