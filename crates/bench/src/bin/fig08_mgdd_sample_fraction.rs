//! **Figure 8**: MGDD precision and recall while varying the sample
//! fraction `f ∈ {0.25, 0.5, 0.75, 1.0}` (1-d synthetic, kernel
//! estimators).
//!
//! The paper's observation: *"its performance improves as the sample
//! fraction f increases … f determines the rate at which the
//! observations are sent from the children nodes to their parent, and
//! thus influences the frequency with which the global estimators at the
//! leaf sensors are updated."*
//!
//! Knobs: `FIG_RUNS`, `FIG_WINDOW`, `FIG_EVAL`, `FIG_LEAVES` as in the
//! other figure binaries.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use snod_bench::accuracy::{run_accuracy, AccuracyConfig, AlgorithmKind, EstimatorKind};
use snod_bench::report::{pct, Table};
use snod_data::GaussianMixtureStream;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn sensor_stream(run: u64, sensor: usize) -> GaussianMixtureStream {
    let seed = 0xF1608 + run * 10_007 + sensor as u64;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    let weights = [
        rng.gen_range(0.55..1.45),
        rng.gen_range(0.55..1.45),
        rng.gen_range(0.55..1.45),
    ];
    GaussianMixtureStream::new(1, seed).with_weights(weights)
}

fn main() {
    let runs = env_u64("FIG_RUNS", 3);
    let window = env_u64("FIG_WINDOW", 10_000) as usize;
    let eval = env_u64("FIG_EVAL", 1_000);
    let leaves = env_u64("FIG_LEAVES", 32) as usize;

    println!("Figure 8 — MGDD vs sample fraction f (1-d synthetic, kernel)");
    println!(
        "|W|={window}, |R|={}, {leaves} leaves, {runs} runs\n",
        window / 20
    );

    let mut t = Table::new(["f", "precision", "recall", "true-M (L2)"]);
    for &f in &[0.25f64, 0.5, 0.75, 1.0] {
        let mut cfg = AccuracyConfig::paper_defaults_1d();
        cfg.leaves = leaves;
        cfg.window = window;
        cfg.sample_size = window / 20; // the paper's default |R| = 0.05·|W|
        cfg.sample_fraction = f;
        cfg.warmup = window as u64;
        cfg.eval = eval;
        cfg.runs = runs;
        cfg.with_d3 = false;
        let results = run_accuracy(&cfg, sensor_stream);
        // Headline MGDD series: detection against the first leader
        // tier's (level 2) global model.
        let pr = results
            .series
            .get(&(AlgorithmKind::Mgdd, EstimatorKind::Kernel, 2))
            .copied()
            .unwrap_or_default();
        t.row([
            format!("{f}"),
            pct(pr.precision()),
            pct(pr.recall()),
            results.true_mdef.get(1).copied().unwrap_or(0).to_string(),
        ]);
    }
    println!("{}", t.render());
}
