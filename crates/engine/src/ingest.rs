//! Socket-backed ingestion: an out-of-order, at-least-once reading
//! buffer that replays as an in-order [`StreamSource`].
//!
//! Network ingestion breaks the two assumptions every driver makes
//! about its source — that reading `seq` of a leaf is requested exactly
//! once, in order. A TCP feed delivers readings out of order (multiple
//! connections, retransmissions after reconnects) and more than once
//! (at-least-once delivery). [`IngestBuffer`] sits between the socket
//! and the driver and restores both invariants:
//!
//! * **Dedup** — each `(node, seq)` is accepted once; replays of
//!   already-buffered or already-consumed readings are counted and
//!   dropped, which is what makes at-least-once retransmission
//!   idempotent.
//! * **Contiguity** — [`IngestBuffer::frontier`] reports the largest
//!   `W` such that every leaf holds (or has consumed) all readings
//!   `seq < W`. A driver that only advances its stop time past complete
//!   waves (`stop_ns = W·period − 1` with
//!   [`crate::LiveRuntime::run_slice`]) therefore never asks for a
//!   reading that has not arrived — and never ends a stream early.
//! * **Explicit end** — a stream only ends when the producer declares
//!   its total via [`IngestBuffer::finish`]; the buffer then lets the
//!   driver's fetch of `seq == total` return `None`, exactly how a
//!   recorded [`crate::ReadingTrace`] ends a replayed stream.
//!
//! The whole buffer implements [`snod_persist::Persist`], so a daemon
//! checkpoint captures buffered-but-unprocessed readings alongside the
//! runtime state: restart resumes mid-wave without losing or replaying
//! anything already folded into the models.

use std::collections::HashMap;

use snod_persist::{ByteReader, ByteWriter, Persist, PersistError};

use crate::config::StreamSource;
use crate::node::NodeId;

/// What [`IngestBuffer::push`] did with a reading.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Newly buffered; will be handed to the driver in order.
    Accepted,
    /// Already buffered or already consumed — dropped (idempotent).
    Duplicate,
    /// `node` is not a leaf of this buffer.
    UnknownNode,
    /// `seq` is at or past the declared stream total — dropped.
    BeyondEnd,
}

/// Per-leaf reorder/dedup buffer feeding a driver in strict order.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestBuffer {
    /// Leaf node ids, in topology order.
    leaves: Vec<u32>,
    /// node id → index into the per-leaf vectors.
    index_of: HashMap<u32, usize>,
    /// Buffered readings not yet fetched by the driver.
    pending: HashMap<(u32, u64), Vec<f64>>,
    /// Next seq the driver will fetch, per leaf.
    consumed: Vec<u64>,
    /// First seq not yet received, per leaf (`>= consumed`): everything
    /// below it is consumed or pending.
    contig: Vec<u64>,
    /// Declared stream totals (set by [`IngestBuffer::finish`]).
    total: Vec<Option<u64>>,
    /// Readings dropped as duplicates.
    duplicates: u64,
}

impl IngestBuffer {
    /// An empty buffer over the given leaves.
    pub fn new(leaves: &[NodeId]) -> Self {
        let leaves: Vec<u32> = leaves.iter().map(|n| n.0).collect();
        let index_of = leaves.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let n = leaves.len();
        Self {
            leaves,
            index_of,
            pending: HashMap::new(),
            consumed: vec![0; n],
            contig: vec![0; n],
            total: vec![None; n],
            duplicates: 0,
        }
    }

    /// Offers one reading. Out-of-order arrivals are buffered;
    /// duplicates (by `(node, seq)`) are counted and dropped.
    pub fn push(&mut self, node: NodeId, seq: u64, value: Vec<f64>) -> PushOutcome {
        let Some(&i) = self.index_of.get(&node.0) else {
            return PushOutcome::UnknownNode;
        };
        if let Some(total) = self.total[i] {
            if seq >= total {
                return PushOutcome::BeyondEnd;
            }
        }
        if seq < self.consumed[i] || self.pending.contains_key(&(node.0, seq)) {
            self.duplicates += 1;
            return PushOutcome::Duplicate;
        }
        self.pending.insert((node.0, seq), value);
        if seq == self.contig[i] {
            let mut c = self.contig[i];
            while self.pending.contains_key(&(node.0, c)) {
                c += 1;
            }
            self.contig[i] = c;
        }
        PushOutcome::Accepted
    }

    /// Declares that `node`'s stream has exactly `total` readings
    /// (`seq` 0..total). Returns false on a conflicting declaration
    /// (different from an earlier one, or below what already arrived).
    pub fn finish(&mut self, node: NodeId, total: u64) -> bool {
        let Some(&i) = self.index_of.get(&node.0) else {
            return false;
        };
        match self.total[i] {
            Some(t) => t == total,
            None if total < self.contig[i] => false,
            None => {
                self.total[i] = Some(total);
                true
            }
        }
    }

    /// The largest `W` such that every *unfinished* leaf has received
    /// all readings `seq < W`. Finished leaves (total declared and
    /// fully received) no longer bound the frontier.
    pub fn frontier(&self) -> u64 {
        let mut w = u64::MAX;
        for i in 0..self.leaves.len() {
            if self.leaf_finished(i) {
                continue;
            }
            w = w.min(self.contig[i]);
        }
        if w == u64::MAX {
            0
        } else {
            w
        }
    }

    fn leaf_finished(&self, i: usize) -> bool {
        matches!(self.total[i], Some(t) if self.contig[i] >= t)
    }

    /// True once every leaf's declared total has fully arrived: the
    /// driver can run to quiescence and the streams will end exactly at
    /// their totals.
    pub fn all_finished(&self) -> bool {
        (0..self.leaves.len()).all(|i| self.leaf_finished(i))
    }

    /// Contiguous received high-water mark of `node` (first missing
    /// seq).
    pub fn received(&self, node: NodeId) -> u64 {
        self.index_of.get(&node.0).map_or(0, |&i| self.contig[i])
    }

    /// The leaves this buffer serves, in topology order.
    pub fn leaves(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.leaves.iter().map(|&n| NodeId(n))
    }

    /// Total readings dropped as duplicates so far.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Readings buffered but not yet consumed by the driver.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Total readings consumed by the driver across all leaves.
    pub fn consumed_total(&self) -> u64 {
        self.consumed.iter().sum()
    }
}

impl Persist for IngestBuffer {
    fn save(&self, w: &mut ByteWriter) {
        self.leaves.save(w);
        self.consumed.save(w);
        self.contig.save(w);
        self.total.save(w);
        self.duplicates.save(w);
        let mut rows: Vec<(&(u32, u64), &Vec<f64>)> = self.pending.iter().collect();
        rows.sort_by_key(|(k, _)| **k);
        w.put_usize(rows.len());
        for (k, v) in rows {
            k.save(w);
            v.save(w);
        }
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let leaves = Vec::<u32>::load(r)?;
        let consumed = Vec::<u64>::load(r)?;
        let contig = Vec::<u64>::load(r)?;
        let total = Vec::<Option<u64>>::load(r)?;
        let duplicates = u64::load(r)?;
        let n_pending = r.get_len()?;
        let mut pending = HashMap::with_capacity(n_pending);
        for _ in 0..n_pending {
            let k = <(u32, u64)>::load(r)?;
            let v = Vec::<f64>::load(r)?;
            pending.insert(k, v);
        }
        if consumed.len() != leaves.len() || contig.len() != leaves.len() || total.len() != leaves.len() {
            return Err(PersistError::Corrupt("ingest buffer shape mismatch"));
        }
        let index_of = leaves.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        Ok(Self {
            leaves,
            index_of,
            pending,
            consumed,
            contig,
            total,
            duplicates,
        })
    }
}

/// The driver side: strictly in-order fetches. A fetch past the
/// contiguous frontier (which a correctly sliced driver never issues
/// before [`IngestBuffer::all_finished`]) ends the stream — identical
/// to how a [`crate::ReadingTrace`] ends at its last recorded row.
impl StreamSource for IngestBuffer {
    fn next(&mut self, node: NodeId, seq: u64) -> Option<Vec<f64>> {
        let &i = self.index_of.get(&node.0)?;
        debug_assert_eq!(
            seq, self.consumed[i],
            "driver fetches must be strictly in order"
        );
        let value = self.pending.remove(&(node.0, seq))?;
        self.consumed[i] = self.consumed[i].max(seq + 1);
        Some(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf2() -> IngestBuffer {
        IngestBuffer::new(&[NodeId(0), NodeId(1)])
    }

    #[test]
    fn in_order_push_advances_frontier() {
        let mut b = buf2();
        assert_eq!(b.push(NodeId(0), 0, vec![1.0]), PushOutcome::Accepted);
        assert_eq!(b.frontier(), 0); // leaf 1 has nothing yet
        assert_eq!(b.push(NodeId(1), 0, vec![2.0]), PushOutcome::Accepted);
        assert_eq!(b.frontier(), 1);
    }

    #[test]
    fn out_of_order_buffers_until_gap_fills() {
        let mut b = buf2();
        b.push(NodeId(0), 1, vec![1.0]);
        b.push(NodeId(0), 2, vec![2.0]);
        assert_eq!(b.received(NodeId(0)), 0);
        b.push(NodeId(0), 0, vec![0.0]);
        assert_eq!(b.received(NodeId(0)), 3);
        // Fetches come out in order regardless of arrival order.
        assert_eq!(b.next(NodeId(0), 0), Some(vec![0.0]));
        assert_eq!(b.next(NodeId(0), 1), Some(vec![1.0]));
        assert_eq!(b.next(NodeId(0), 2), Some(vec![2.0]));
    }

    #[test]
    fn duplicates_are_dropped_and_counted() {
        let mut b = buf2();
        b.push(NodeId(0), 0, vec![1.0]);
        assert_eq!(b.push(NodeId(0), 0, vec![9.9]), PushOutcome::Duplicate);
        assert_eq!(b.next(NodeId(0), 0), Some(vec![1.0])); // first write wins
        // Replay of an already-consumed reading is also a duplicate.
        assert_eq!(b.push(NodeId(0), 0, vec![9.9]), PushOutcome::Duplicate);
        assert_eq!(b.duplicates(), 2);
    }

    #[test]
    fn finish_ends_streams_exactly_at_totals() {
        let mut b = buf2();
        b.push(NodeId(0), 0, vec![1.0]);
        b.push(NodeId(1), 0, vec![1.0]);
        assert!(b.finish(NodeId(0), 1));
        assert!(b.finish(NodeId(1), 1));
        assert!(b.all_finished());
        assert_eq!(b.push(NodeId(0), 5, vec![1.0]), PushOutcome::BeyondEnd);
        assert_eq!(b.next(NodeId(0), 0), Some(vec![1.0]));
        assert_eq!(b.next(NodeId(0), 1), None); // stream ends at total
        // Conflicting declarations are rejected.
        assert!(!b.finish(NodeId(0), 3));
        assert!(b.finish(NodeId(0), 1));
    }

    #[test]
    fn finished_leaves_stop_bounding_the_frontier() {
        let mut b = buf2();
        b.push(NodeId(0), 0, vec![1.0]);
        assert!(b.finish(NodeId(0), 1));
        b.push(NodeId(1), 0, vec![1.0]);
        b.push(NodeId(1), 1, vec![2.0]);
        assert_eq!(b.frontier(), 2); // only leaf 1 counts now
        assert!(!b.all_finished());
    }

    #[test]
    fn unknown_nodes_are_rejected() {
        let mut b = buf2();
        assert_eq!(b.push(NodeId(7), 0, vec![1.0]), PushOutcome::UnknownNode);
        assert!(!b.finish(NodeId(7), 1));
    }

    #[test]
    fn sequence_gaps_at_high_node_counts() {
        // 10k leaves, every leaf delivered with a seq gap: evens first,
        // so the frontier is pinned at the gap; then the odd backfill
        // releases the whole window at once. Exercises the per-leaf
        // contiguity scan and the frontier min-reduction at scale.
        let n = 10_000u32;
        let ids: Vec<NodeId> = (0..n).map(NodeId).collect();
        let mut b = IngestBuffer::new(&ids);
        let per_leaf = 8u64;
        for &leaf in &ids {
            for seq in (0..per_leaf).step_by(2) {
                assert_eq!(b.push(leaf, seq, vec![0.0]), PushOutcome::Accepted);
            }
        }
        assert_eq!(b.frontier(), 1, "every leaf is missing seq 1");
        assert_eq!(b.pending_len(), n as usize * (per_leaf as usize / 2));
        for &leaf in &ids {
            for seq in (1..per_leaf).step_by(2) {
                assert_eq!(b.push(leaf, seq, vec![0.0]), PushOutcome::Accepted);
            }
        }
        assert_eq!(b.frontier(), per_leaf);
        assert_eq!(b.duplicates(), 0);
    }

    #[test]
    fn overflow_replay_past_totals_at_high_node_counts() {
        // An aggressive at-least-once producer replays whole windows
        // and overshoots declared totals across 10k leaves: every
        // replay is a counted duplicate, every overshoot is BeyondEnd,
        // and the buffer's memory stays bounded by the live window.
        let n = 10_000u32;
        let ids: Vec<NodeId> = (0..n).map(NodeId).collect();
        let mut b = IngestBuffer::new(&ids);
        let total = 4u64;
        for &leaf in &ids {
            for seq in 0..total {
                b.push(leaf, seq, vec![1.0]);
            }
            assert!(b.finish(leaf, total));
        }
        assert!(b.all_finished());
        for &leaf in &ids {
            // Full-window replay: all duplicates.
            for seq in 0..total {
                assert_eq!(b.push(leaf, seq, vec![1.0]), PushOutcome::Duplicate);
            }
            // Overshoot past the declared total: dropped, not buffered.
            for seq in total..total + 3 {
                assert_eq!(b.push(leaf, seq, vec![1.0]), PushOutcome::BeyondEnd);
            }
        }
        assert_eq!(b.duplicates(), u64::from(n) * total);
        assert_eq!(b.pending_len(), n as usize * total as usize);
        // Drain in order; consumed replays also count as duplicates.
        for &leaf in &ids {
            for seq in 0..total {
                assert_eq!(b.next(leaf, seq), Some(vec![1.0]));
            }
        }
        assert_eq!(b.pending_len(), 0);
        assert_eq!(b.push(NodeId(0), 0, vec![1.0]), PushOutcome::Duplicate);
        assert_eq!(b.consumed_total(), u64::from(n) * total);
    }

    #[test]
    fn persists_mid_wave() {
        let mut b = buf2();
        b.push(NodeId(0), 0, vec![0.5]);
        b.push(NodeId(0), 2, vec![2.5]); // gap at seq 1
        b.push(NodeId(1), 0, vec![1.5]);
        b.push(NodeId(1), 0, vec![1.5]); // duplicate
        b.finish(NodeId(1), 2);
        assert_eq!(b.next(NodeId(0), 0), Some(vec![0.5]));
        let mut w = ByteWriter::new();
        b.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = IngestBuffer::load(&mut r).expect("round trips");
        assert_eq!(b, back);
    }
}
