//! Internal calibration harness: single-sensor sanity check of detector
//! vs ground-truth behaviour on the paper's synthetic workload, with the
//! paper's parameters. Not a figure — a diagnostics tool used while
//! developing and for regression-spotting drifts in the generators.

use snod_core::{EstimatorConfig, SensorEstimator};
use snod_data::{DataStream, GaussianMixtureStream};
use snod_outlier::{DistanceOutlierConfig, MdefConfig, PrecisionRecall};

use snod_bench::harness::TruthIndex;
use snod_bench::report::{pct, Table};

fn main() {
    let window = 10_000usize;
    let eval = 2_000usize;
    let dist_rule = DistanceOutlierConfig::new(45.0, 0.01);
    let mdef_rule = MdefConfig::new(0.08, 0.01, 3.0).unwrap();

    let mut table = Table::new([
        "seed",
        "R",
        "true-D",
        "true-M",
        "D3 prec",
        "D3 rec",
        "MGDD prec",
        "MGDD rec",
    ]);

    for seed in 0..3u64 {
        for &sample_size in &[125usize, 250, 500] {
            let mut stream = GaussianMixtureStream::new(1, seed);
            let mut truth = TruthIndex::new(&dist_rule, &mdef_rule);
            let mut ring: std::collections::VecDeque<(u64, Vec<f64>)> =
                std::collections::VecDeque::new();
            let cfg = EstimatorConfig::builder()
                .window(window)
                .sample_size(sample_size)
                .seed(seed * 17 + 1)
                .build()
                .unwrap();
            let mut est = SensorEstimator::new(cfg);

            let mut pr_d = PrecisionRecall::new();
            let mut pr_m = PrecisionRecall::new();
            let mut true_d = 0u64;
            let mut true_m = 0u64;

            for i in 0..(window + eval) as u64 {
                let v = stream.next_reading();
                // slide exact window
                if ring.len() == window {
                    let (id, old) = ring.pop_front().unwrap();
                    truth.remove(id, &old);
                }
                truth.insert(i, &v);
                ring.push_back((i, v.clone()));

                let in_eval = i >= window as u64;
                if in_eval {
                    let td = truth.is_distance_outlier(&v, &dist_rule);
                    let tm = truth.is_mdef_outlier(&v, &mdef_rule);
                    true_d += td as u64;
                    true_m += tm as u64;
                    let pd = est.is_distance_outlier(&v, &dist_rule).unwrap();
                    let pm = est.evaluate_mdef(&v, &mdef_rule).unwrap().is_outlier;
                    pr_d.record(pd, td);
                    pr_m.record(pm, tm);
                }
                est.observe(&v).unwrap();
            }

            table.row([
                seed.to_string(),
                sample_size.to_string(),
                true_d.to_string(),
                true_m.to_string(),
                pct(pr_d.precision()),
                pct(pr_d.recall()),
                pct(pr_m.precision()),
                pct(pr_m.recall()),
            ]);
        }
    }
    println!("single-sensor calibration: |W|={window}, eval={eval} readings");
    println!("{}", table.render());
}
