//! `snod-serve`: a crash-safe multi-tenant ingestion daemon for the
//! D3 outlier detector.
//!
//! The daemon accepts length-prefixed [`wire`] frames over TCP, routes
//! each tenant's readings into its own detector runtime (one
//! [`snod_engine::LiveRuntime`] per tenant, advanced by stream-time
//! slicing so the served results are bit-identical to an in-process
//! run), and surfaces escalations plus health metrics on a scrapeable
//! HTTP endpoint.
//!
//! Robustness spine:
//! - **bounded queues** per tenant with load shedding (shed readings
//!   are unacked, so at-least-once clients retransmit them),
//! - **idempotent ingestion** via per-stream sequence numbers,
//! - **supervised workers**: a crashed tenant respawns warm from its
//!   last checkpoint,
//! - **durable acks**: `durable` advances only when a checkpoint hits
//!   disk, so clients know exactly what to replay after a `kill -9`,
//! - **graceful shutdown** that drains queues and writes final
//!   checkpoints — and a `hard_abort` crash path for testing that
//!   does neither.
//!
//! The [`proxy`] module provides a seeded socket-level fault injector
//! (the transport analogue of the engine's `FaultPlan`) used by the
//! differential tests to prove all of the above.

pub mod client;
pub mod config;
mod daemon;
pub mod error;
mod http;
pub mod proxy;
mod stats;
mod tenant;
pub mod wire;

pub use client::{ClientConfig, DetectionRow, ServeClient};
pub use config::{valid_tenant_name, ServeConfig, TenantSpec};
pub use daemon::{serve, ServerHandle};
pub use error::ServeError;
pub use proxy::{FaultProxy, SocketFaultPlan};
pub use stats::{EscalationRecord, ServeStats};
