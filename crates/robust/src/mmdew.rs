//! Maximum mean discrepancy on exponential windows: logarithmically
//! merged bucket summaries with maintained within-bucket kernel sums.

use rand::Rng;

use snod_persist::{ByteReader, ByteWriter, Persist, PersistError, SeededRng};

use crate::RobustError;

/// Configuration of the [`Mmdew`] change detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MmdewConfig {
    /// Data dimensionality.
    pub dimensions: usize,
    /// RBF kernel precision: `k(x, y) = exp(−γ·‖x−y‖²)` (bounded by 1,
    /// which is what makes the `√(1/n + 1/m)` threshold scale-free).
    pub gamma: f64,
    /// Maximum retained samples per bucket; a merge that overflows it
    /// keeps a seeded uniform subsample and recomputes the bucket's
    /// kernel self-sum exactly over the survivors.
    pub bucket_cap: usize,
    /// Threshold coefficient `c` in `τ = c·√(1/n + 1/m)`.
    pub threshold_scale: f64,
    /// Minimum retained samples required on *each* side of a split
    /// before that split is tested.
    pub min_per_side: usize,
    /// Evaluate the statistic every this many inserts (testing on every
    /// arrival is wasted work while the windows barely changed).
    pub test_every: u64,
    /// Seed of the subsampling RNG.
    pub seed: u64,
}

impl MmdewConfig {
    /// Validates every field.
    pub fn validate(&self) -> Result<(), RobustError> {
        if self.dimensions == 0 {
            return Err(RobustError::BadConfig("dimensionality must be positive"));
        }
        if !(self.gamma > 0.0) || !self.gamma.is_finite() {
            return Err(RobustError::BadConfig("gamma must be finite and positive"));
        }
        if self.bucket_cap < 2 {
            return Err(RobustError::BadConfig("bucket cap must be at least 2"));
        }
        if !(self.threshold_scale > 0.0) || !self.threshold_scale.is_finite() {
            return Err(RobustError::BadConfig(
                "threshold scale must be finite and positive",
            ));
        }
        if self.min_per_side == 0 {
            return Err(RobustError::BadConfig("min per side must be positive"));
        }
        if self.test_every == 0 {
            return Err(RobustError::BadConfig("test cadence must be positive"));
        }
        Ok(())
    }
}

/// One exponential-window bucket: true count, capped retained samples,
/// and the exact kernel double sum `Σᵢ Σⱼ k(sᵢ, sⱼ)` over the retained
/// samples (diagonal included).
#[derive(Debug, Clone, PartialEq)]
pub struct RetainedBucket {
    /// Merge level (a bucket at level ℓ absorbed 2^ℓ arrivals).
    pub level: u32,
    /// True number of stream values the bucket summarises.
    pub count: u64,
    /// Retained subsample (≤ `bucket_cap` values).
    pub samples: Vec<Vec<f64>>,
    /// Maintained within-bucket kernel double sum.
    pub self_sum: f64,
}

/// The winning split of one statistic evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitStat {
    /// Biased MMD estimate (√ of the V-statistic MMD²) at the split.
    pub mmd: f64,
    /// Threshold `c·√(1/n + 1/m)` at the split.
    pub threshold: f64,
    /// Retained samples on the older side.
    pub older: usize,
    /// Retained samples on the newer side.
    pub newer: usize,
}

/// A raised distribution-shift alarm.
#[derive(Debug, Clone, PartialEq)]
pub struct ChangeEvent {
    /// The split that crossed its threshold (maximal margin).
    pub split: SplitStat,
    /// Buckets dropped (everything older than the detected change).
    pub dropped_buckets: usize,
    /// True stream count the dropped buckets summarised.
    pub dropped_count: u64,
}

/// The MMDEW change detector. Buckets are kept oldest-first; inserting
/// appends a singleton level-0 bucket and merges equal levels from the
/// back, so bucket sizes double with age and only O(log n) summaries
/// exist at any time.
#[derive(Debug, Clone, PartialEq)]
pub struct Mmdew {
    cfg: MmdewConfig,
    buckets: Vec<RetainedBucket>,
    inserts: u64,
    alarms: u64,
    rng: SeededRng,
}

impl Mmdew {
    /// A fresh detector.
    pub fn new(cfg: MmdewConfig) -> Result<Self, RobustError> {
        cfg.validate()?;
        Ok(Self {
            cfg,
            buckets: Vec::new(),
            inserts: 0,
            alarms: 0,
            rng: SeededRng::seed_from_u64(cfg.seed ^ 0x33D1),
        })
    }

    /// The configuration.
    pub fn config(&self) -> &MmdewConfig {
        &self.cfg
    }

    /// Values inserted since construction (pruned ones included).
    pub fn inserts(&self) -> u64 {
        self.inserts
    }

    /// Alarms raised so far.
    pub fn alarms(&self) -> u64 {
        self.alarms
    }

    /// The current buckets, oldest first.
    pub fn buckets(&self) -> &[RetainedBucket] {
        &self.buckets
    }

    /// Total retained samples across buckets.
    pub fn retained(&self) -> usize {
        self.buckets.iter().map(|b| b.samples.len()).sum()
    }

    /// Inserts one value; on the configured cadence evaluates every
    /// bucket-boundary split and, if the maximal-margin split exceeds
    /// its threshold, prunes the pre-change buckets and reports the
    /// alarm.
    pub fn insert(&mut self, x: &[f64]) -> Result<Option<ChangeEvent>, RobustError> {
        if x.len() != self.cfg.dimensions {
            return Err(RobustError::Dimension {
                expected: self.cfg.dimensions,
                got: x.len(),
            });
        }
        if x.iter().any(|v| !v.is_finite()) {
            return Err(RobustError::NonFinite);
        }
        self.buckets.push(RetainedBucket {
            level: 0,
            count: 1,
            samples: vec![x.to_vec()],
            self_sum: 1.0, // k(x, x) = 1 for the RBF kernel
        });
        // Exponential-histogram cascade: merge equal levels from the back.
        while self.buckets.len() >= 2 {
            let n = self.buckets.len();
            if self.buckets[n - 2].level != self.buckets[n - 1].level {
                break;
            }
            let b = self.buckets.pop().expect("len >= 2");
            let a = self.buckets.pop().expect("len >= 2");
            let merged = self.merge(a, b);
            self.buckets.push(merged);
        }
        self.inserts += 1;
        if !self.inserts.is_multiple_of(self.cfg.test_every) {
            return Ok(None);
        }
        let Some(split) = self.evaluate() else {
            return Ok(None);
        };
        if split.mmd <= split.threshold {
            return Ok(None);
        }
        // Drop everything older than the detected change. The split is
        // identified by its retained-count prefix.
        let mut seen = 0usize;
        let mut cut = 0usize;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.samples.len();
            if seen == split.older {
                cut = i + 1;
                break;
            }
        }
        let dropped: Vec<RetainedBucket> = self.buckets.drain(..cut).collect();
        self.alarms += 1;
        Ok(Some(ChangeEvent {
            split,
            dropped_buckets: dropped.len(),
            dropped_count: dropped.iter().map(|b| b.count).sum(),
        }))
    }

    /// Evaluates the MMD statistic at every bucket boundary and returns
    /// the split with the largest margin over its threshold (testable
    /// splits only); `None` when no split has `min_per_side` retained
    /// samples on both sides.
    ///
    /// One O(T²) pass over the T retained samples accumulates the
    /// bucket-pair kernel cross sums; the per-split within/cross sums
    /// then fall out of O(B²) additions. The within-bucket diagonal
    /// blocks come from the *maintained* `self_sum`s — the quantity the
    /// merged-vs-naive proptest bounds against a from-scratch
    /// recomputation.
    // Triangular (i, j) index pairs over `cross` — iterator forms would
    // obscure the i < j / i == j symmetry the sums depend on.
    #[allow(clippy::needless_range_loop)]
    pub fn evaluate(&self) -> Option<SplitStat> {
        let b = self.buckets.len();
        if b < 2 {
            return None;
        }
        // cross[i][j] (i < j): Σ over sample pairs of k(s_i, s_j).
        let mut cross = vec![vec![0.0f64; b]; b];
        for i in 0..b {
            for j in (i + 1)..b {
                cross[i][j] = kernel_cross(
                    &self.buckets[i].samples,
                    &self.buckets[j].samples,
                    self.cfg.gamma,
                );
            }
        }
        let mut best: Option<SplitStat> = None;
        for split in 0..(b - 1) {
            let older: usize = self.buckets[..=split]
                .iter()
                .map(|bk| bk.samples.len())
                .sum();
            let newer: usize = self.buckets[(split + 1)..]
                .iter()
                .map(|bk| bk.samples.len())
                .sum();
            if older < self.cfg.min_per_side || newer < self.cfg.min_per_side {
                continue;
            }
            let mut sum_xx = 0.0f64;
            let mut sum_yy = 0.0f64;
            let mut sum_xy = 0.0f64;
            for i in 0..b {
                for j in i..b {
                    let s = if i == j {
                        self.buckets[i].self_sum
                    } else {
                        2.0 * cross[i][j]
                    };
                    if j <= split {
                        sum_xx += s;
                    } else if i > split {
                        sum_yy += s;
                    } else {
                        sum_xy += s; // already the full (unordered) cross mass
                    }
                }
            }
            let n = older as f64;
            let m = newer as f64;
            let mmd2 = sum_xx / (n * n) + sum_yy / (m * m) - sum_xy / (n * m);
            let mmd = mmd2.max(0.0).sqrt();
            let threshold = self.cfg.threshold_scale * (1.0 / n + 1.0 / m).sqrt();
            let cand = SplitStat {
                mmd,
                threshold,
                older,
                newer,
            };
            let better = match &best {
                None => true,
                Some(cur) => cand.mmd - cand.threshold > cur.mmd - cur.threshold,
            };
            if better {
                best = Some(cand);
            }
        }
        best
    }

    /// Merges two adjacent equal-level buckets, maintaining the kernel
    /// self-sum incrementally; a capacity overflow keeps a seeded
    /// uniform subsample and recomputes the sum exactly over it.
    fn merge(&mut self, a: RetainedBucket, b: RetainedBucket) -> RetainedBucket {
        let cross = kernel_cross(&a.samples, &b.samples, self.cfg.gamma);
        let mut samples = a.samples;
        samples.extend(b.samples);
        let mut self_sum = a.self_sum + b.self_sum + 2.0 * cross;
        if samples.len() > self.cfg.bucket_cap {
            // Partial Fisher–Yates: the first `cap` slots end up a
            // uniform subsample, drawn from the persisted RNG stream so
            // a restored detector subsamples identically.
            for i in 0..self.cfg.bucket_cap {
                let j = self.rng.gen_range(i..samples.len());
                samples.swap(i, j);
            }
            samples.truncate(self.cfg.bucket_cap);
            self_sum = kernel_self(&samples, self.cfg.gamma);
        }
        RetainedBucket {
            level: a.level + 1,
            count: a.count + b.count,
            samples,
            self_sum,
        }
    }
}

/// `exp(−γ·‖x−y‖²)`.
fn rbf(x: &[f64], y: &[f64], gamma: f64) -> f64 {
    let d2: f64 = x
        .iter()
        .zip(y)
        .map(|(a, b)| {
            let d = a - b;
            d * d
        })
        .sum();
    (-gamma * d2).exp()
}

/// `Σ_{x∈xs} Σ_{y∈ys} k(x, y)`.
fn kernel_cross(xs: &[Vec<f64>], ys: &[Vec<f64>], gamma: f64) -> f64 {
    let mut sum = 0.0;
    for x in xs {
        for y in ys {
            sum += rbf(x, y, gamma);
        }
    }
    sum
}

/// `Σᵢ Σⱼ k(sᵢ, sⱼ)` (diagonal included).
fn kernel_self(samples: &[Vec<f64>], gamma: f64) -> f64 {
    let n = samples.len();
    let mut sum = n as f64; // the diagonal: k(x, x) = 1
    for i in 0..n {
        for j in (i + 1)..n {
            sum += 2.0 * rbf(&samples[i], &samples[j], gamma);
        }
    }
    sum
}

impl Persist for MmdewConfig {
    fn save(&self, w: &mut ByteWriter) {
        self.dimensions.save(w);
        self.gamma.save(w);
        self.bucket_cap.save(w);
        self.threshold_scale.save(w);
        self.min_per_side.save(w);
        self.test_every.save(w);
        self.seed.save(w);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let cfg = Self {
            dimensions: usize::load(r)?,
            gamma: f64::load(r)?,
            bucket_cap: usize::load(r)?,
            threshold_scale: f64::load(r)?,
            min_per_side: usize::load(r)?,
            test_every: u64::load(r)?,
            seed: u64::load(r)?,
        };
        cfg.validate()
            .map_err(|_| PersistError::Corrupt("invalid mmdew config"))?;
        Ok(cfg)
    }
}

impl Persist for RetainedBucket {
    fn save(&self, w: &mut ByteWriter) {
        self.level.save(w);
        self.count.save(w);
        self.samples.save(w);
        self.self_sum.save(w);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let b = Self {
            level: u32::load(r)?,
            count: u64::load(r)?,
            samples: Vec::<Vec<f64>>::load(r)?,
            self_sum: f64::load(r)?,
        };
        if b.samples.is_empty() {
            return Err(PersistError::Corrupt("empty mmdew bucket"));
        }
        if b.samples.iter().any(|s| s.iter().any(|v| !v.is_finite())) {
            return Err(PersistError::Corrupt("non-finite mmdew sample"));
        }
        Ok(b)
    }
}

impl Persist for Mmdew {
    fn save(&self, w: &mut ByteWriter) {
        self.cfg.save(w);
        self.buckets.save(w);
        self.inserts.save(w);
        self.alarms.save(w);
        self.rng.save(w);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let cfg = MmdewConfig::load(r)?;
        let buckets = Vec::<RetainedBucket>::load(r)?;
        let dims = cfg.dimensions;
        if buckets.iter().any(|b| {
            b.samples.len() > cfg.bucket_cap || b.samples.iter().any(|s| s.len() != dims)
        }) {
            return Err(PersistError::Corrupt("mmdew bucket violates config"));
        }
        Ok(Self {
            cfg,
            buckets,
            inserts: u64::load(r)?,
            alarms: u64::load(r)?,
            rng: SeededRng::load(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MmdewConfig {
        MmdewConfig {
            dimensions: 1,
            gamma: 8.0,
            bucket_cap: 16,
            threshold_scale: 0.6,
            min_per_side: 8,
            test_every: 4,
            seed: 7,
        }
    }

    #[test]
    fn bucket_levels_stay_logarithmic() {
        let mut det = Mmdew::new(cfg()).unwrap();
        for i in 0..512 {
            det.insert(&[0.5 + 0.001 * f64::from(i % 7)]).unwrap();
        }
        // 512 inserts with no alarm on a flat stream → ≤ log2(512)+1
        // buckets, strictly decreasing levels from the front.
        assert!(det.buckets().len() <= 10, "{} buckets", det.buckets().len());
        let levels: Vec<u32> = det.buckets().iter().map(|b| b.level).collect();
        assert!(levels.windows(2).all(|w| w[0] > w[1]), "{levels:?}");
        let total: u64 = det.buckets().iter().map(|b| b.count).sum();
        assert_eq!(total, 512);
        assert!(det
            .buckets()
            .iter()
            .all(|b| b.samples.len() <= det.config().bucket_cap));
    }

    #[test]
    fn detects_a_mean_shift() {
        let mut det = Mmdew::new(cfg()).unwrap();
        let mut alarm_at = None;
        for i in 0..600 {
            let x = if i < 300 {
                0.2 + 0.01 * f64::from(i % 5)
            } else {
                0.8 + 0.01 * f64::from(i % 5)
            };
            if det.insert(&[x]).unwrap().is_some() && alarm_at.is_none() {
                alarm_at = Some(i);
            }
        }
        let at = alarm_at.expect("mean shift missed");
        assert!(at >= 300, "alarm before the change at {at}");
        assert!(at < 450, "alarm too late at {at}");
        // The pruning dropped pre-change history.
        assert!(det.alarms() >= 1);
    }

    #[test]
    fn stationary_stream_stays_quiet() {
        let mut det = Mmdew::new(cfg()).unwrap();
        for i in 0..1_000 {
            let x = 0.5 + 0.02 * f64::from(i % 11) / 11.0;
            assert_eq!(det.insert(&[x]).unwrap(), None, "false alarm at {i}");
        }
    }

    #[test]
    fn rejects_bad_values_and_configs() {
        assert!(Mmdew::new(MmdewConfig { gamma: 0.0, ..cfg() }).is_err());
        assert!(Mmdew::new(MmdewConfig {
            bucket_cap: 1,
            ..cfg()
        })
        .is_err());
        assert!(Mmdew::new(MmdewConfig {
            test_every: 0,
            ..cfg()
        })
        .is_err());
        let mut det = Mmdew::new(cfg()).unwrap();
        assert_eq!(
            det.insert(&[1.0, 2.0]),
            Err(RobustError::Dimension {
                expected: 1,
                got: 2
            })
        );
        assert_eq!(det.insert(&[f64::NAN]), Err(RobustError::NonFinite));
    }

    #[test]
    fn persist_round_trip_resumes_bit_identically() {
        let mut live = Mmdew::new(cfg()).unwrap();
        for i in 0..200 {
            live.insert(&[0.3 + 0.05 * f64::from(i % 9)]).unwrap();
        }
        let mut restored = Mmdew::from_bytes(&live.to_bytes()).unwrap();
        assert_eq!(restored, live);
        // Same future: inserts (subsampling draws included) and
        // statistics agree exactly.
        for i in 0..200 {
            let x = [0.9 + 0.01 * f64::from(i % 3)];
            assert_eq!(live.insert(&x).unwrap(), restored.insert(&x).unwrap());
        }
        assert_eq!(live, restored);
    }
}
