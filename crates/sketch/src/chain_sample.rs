//! Chain sampling over sliding windows (Babcock, Datar, Motwani, SODA 2002).
//!
//! The paper's kernel estimators are built from a uniform random sample `R`
//! of the current sliding window `W` (Section 5: *"chain-sample, which
//! maintains a running sample of the sensor readings in the window"*).
//! A sample of size `|R|` *with replacement* is maintained as `|R|`
//! independent chains; each chain uses expected `O(1)` memory.
//!
//! ## The single-chain algorithm
//!
//! For the `i`-th stream element (1-based) and window length `w`:
//!
//! 1. With probability `1 / min(i, w)` the element becomes the chain's
//!    current sample. A *replacement index* is drawn uniformly from
//!    `[i+1, i+w]` — the range of indices that will be in the window at the
//!    moment element `i` expires — and any previously stored successors are
//!    discarded.
//! 2. Otherwise, if `i` equals the replacement index the chain is waiting
//!    for, the element is appended to the chain and a fresh replacement
//!    index is drawn from `[i+1, i+w]` for it.
//! 3. When the current sample expires (its index drops out of the window),
//!    the chain advances to its first stored successor. Because the
//!    replacement index is at most `cur + w`, the successor is guaranteed
//!    to have arrived (and to still be in the window) by expiry time.
//!
//! ## Per-element cost
//!
//! A naive implementation touches all `|R|` chains on every element. This
//! one runs in expected `O(1 + |R|/|W|)` per element: how many chains
//! select the element is drawn from `Binomial(|R|, 1/min(i, w))`, and
//! chains waiting for a replacement or an expiry at index `i` are found
//! through index-keyed maps instead of scans.

use std::collections::HashMap;
use std::collections::VecDeque;

use rand::Rng;
use snod_persist::{ByteReader, ByteWriter, Persist, PersistError, SeededRng};

use crate::SketchError;

#[derive(Debug, Clone)]
struct Chain<T> {
    /// `(stream index, value)` of the element currently sampled.
    current: Option<(u64, T)>,
    /// Stored future replacements, ascending by index.
    successors: VecDeque<(u64, T)>,
    /// Index (1-based) of the next replacement this chain waits for.
    pending: Option<u64>,
}

impl<T> Chain<T> {
    fn new() -> Self {
        Self {
            current: None,
            successors: VecDeque::new(),
            pending: None,
        }
    }

    fn stored(&self) -> usize {
        usize::from(self.current.is_some()) + self.successors.len()
    }
}

/// A with-replacement uniform sample of the last `window` stream elements,
/// maintained as `sample_size` independent chains.
///
/// ```
/// use snod_sketch::ChainSampler;
/// let mut s = ChainSampler::<f64>::new(100, 10, 42).unwrap();
/// for i in 0..1000 {
///     s.push(i as f64);
/// }
/// let sample = s.sample();
/// assert_eq!(sample.len(), 10);
/// // every sampled value lies in the current window [900, 999]
/// assert!(sample.iter().all(|&v| (900.0..1000.0).contains(&v)));
/// ```
#[derive(Debug, Clone)]
pub struct ChainSampler<T> {
    chains: Vec<Chain<T>>,
    window: u64,
    /// 1-based index of the last element pushed.
    position: u64,
    /// Increments whenever the *current sample* of any chain changes —
    /// lets callers cache anything derived from [`Self::sample`].
    version: u64,
    /// Chains waiting for a replacement at a given future index.
    waiting: HashMap<u64, Vec<usize>>,
    /// Chains whose current sample expires at a given future index.
    expiring: HashMap<u64, Vec<usize>>,
    rng: SeededRng,
}

impl<T: Clone> ChainSampler<T> {
    /// Creates a sampler over a window of `window` elements that maintains
    /// `sample_size` chains. `seed` makes the sampler deterministic.
    pub fn new(window: usize, sample_size: usize, seed: u64) -> Result<Self, SketchError> {
        if window == 0 {
            return Err(SketchError::ZeroSize("window capacity"));
        }
        if sample_size == 0 {
            return Err(SketchError::ZeroSize("sample size"));
        }
        Ok(Self {
            chains: (0..sample_size).map(|_| Chain::new()).collect(),
            window: window as u64,
            position: 0,
            version: 0,
            waiting: HashMap::new(),
            expiring: HashMap::new(),
            rng: SeededRng::seed_from_u64(seed),
        })
    }

    /// Number of chains, i.e. the with-replacement sample size `|R|`.
    pub fn sample_size(&self) -> usize {
        self.chains.len()
    }

    /// The window length `|W|`.
    pub fn window(&self) -> usize {
        self.window as usize
    }

    /// Total elements pushed so far.
    pub fn stream_len(&self) -> u64 {
        self.position
    }

    /// A counter that changes whenever [`Self::sample`] would return a
    /// different set — cache invalidation hook for derived models.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// How many of the `k` chains select this element, distributed as
    /// `Binomial(k, 1/bound)`. Sampled by inversion for small means.
    fn draw_selection_count(&mut self, bound: u64) -> usize {
        let k = self.chains.len();
        if bound == 1 {
            return k; // first element: every chain takes it
        }
        let p = 1.0 / bound as f64;
        // With a large mean (early stream positions), q^k underflows and
        // inversion degenerates — fall back to per-chain Bernoulli there.
        if k as f64 * p > 300.0 {
            return (0..k).filter(|_| self.rng.gen::<f64>() < p).count();
        }
        // Inversion sampling: walk the binomial CDF. The mean k/bound is
        // tiny in steady state (|R|/|W| ≪ 1), so this loop is short.
        let mut u: f64 = self.rng.gen();
        let q = 1.0 - p;
        // P(X = 0) = q^k
        let mut prob = q.powi(k as i32);
        let mut x = 0usize;
        while u > prob && x < k {
            u -= prob;
            // P(X = x+1) = P(X = x) · (k − x)/(x + 1) · p/q
            prob *= (k - x) as f64 / (x + 1) as f64 * (p / q);
            x += 1;
        }
        x
    }

    /// Picks `count` distinct chain indices uniformly (rejection
    /// sampling; `count` is almost always 0 or 1).
    fn draw_selected_chains(&mut self, count: usize, out: &mut Vec<usize>) {
        out.clear();
        let k = self.chains.len();
        if count >= k {
            out.extend(0..k);
            return;
        }
        while out.len() < count {
            let c = self.rng.gen_range(0..k);
            if !out.contains(&c) {
                out.push(c);
            }
        }
    }

    /// Feeds one stream element into every chain. Returns `true` when the
    /// element was stored by at least one chain (the paper's leaf processes
    /// forward an element to their parent, with probability `f`, exactly
    /// when the sample accepted it — algorithm D3, line 14).
    pub fn push(&mut self, value: T) -> bool {
        snod_obs::counter!("sketch.chain.pushes").incr();
        self.position += 1;
        let i = self.position;
        let w = self.window;
        let mut accepted = false;

        // 1. Chains that select this element (probability 1/min(i, w)
        //    each, drawn jointly as a binomial).
        let count = self.draw_selection_count(i.min(w));
        let mut selected = Vec::new();
        self.draw_selected_chains(count, &mut selected);
        for &c in &selected {
            let replacement = self.rng.gen_range(i + 1..=i + w);
            let chain = &mut self.chains[c];
            // Invalidate any stale bookkeeping: entries in `waiting` and
            // `expiring` are validated against the chain state when their
            // index arrives, so no eager cleanup is needed here.
            chain.current = Some((i, value.clone()));
            chain.successors.clear();
            chain.pending = Some(replacement);
            self.waiting.entry(replacement).or_default().push(c);
            self.expiring.entry(i + w).or_default().push(c);
            accepted = true;
            self.version += 1;
        }

        // 2. Chains waiting for exactly this index as a replacement.
        if let Some(waiters) = self.waiting.remove(&i) {
            for c in waiters {
                if selected.contains(&c) {
                    continue; // the selection above superseded the wait
                }
                let chain = &mut self.chains[c];
                if chain.pending != Some(i) {
                    continue; // stale entry from before a re-selection
                }
                let replacement = self.rng.gen_range(i + 1..=i + w);
                chain.successors.push_back((i, value.clone()));
                chain.pending = Some(replacement);
                self.waiting.entry(replacement).or_default().push(c);
                accepted = true;
            }
        }

        // 3. Chains whose current sample expires with this arrival
        //    (current index == i − w).
        if let Some(expired) = self.expiring.remove(&i) {
            for c in expired {
                let chain = &mut self.chains[c];
                let Some((idx, _)) = chain.current else {
                    continue;
                };
                if idx + w != i {
                    continue; // stale: the chain re-selected since
                }
                chain.current = chain.successors.pop_front();
                self.version += 1;
                if let Some((nidx, _)) = chain.current {
                    self.expiring.entry(nidx + w).or_default().push(c);
                }
            }
        }
        if accepted {
            snod_obs::counter!("sketch.chain.accepts").incr();
        }
        accepted
    }

    /// The current with-replacement sample. Length equals `sample_size()`
    /// once the stream is non-empty (each chain always holds one live
    /// element after the first push).
    pub fn sample(&self) -> Vec<T> {
        self.chains
            .iter()
            .filter_map(|c| c.current.as_ref().map(|(_, v)| v.clone()))
            .collect()
    }

    /// Like [`Self::sample`] but exposes the stream index of every sampled
    /// element (used by tests to check window membership).
    pub fn sample_with_indices(&self) -> Vec<(u64, T)> {
        self.chains
            .iter()
            .filter_map(|c| c.current.clone())
            .collect()
    }

    /// Total number of `(index, value)` entries currently stored across all
    /// chains — the quantity charged against sensor memory in §10.3.
    pub fn stored_entries(&self) -> usize {
        self.chains.iter().map(Chain::stored).sum()
    }

    /// Approximate memory footprint in bytes, assuming `value_bytes` bytes
    /// per stored value (the paper assumes a 16-bit architecture, i.e. 2
    /// bytes per number) plus 8 bytes for the stream index of each entry.
    pub fn memory_bytes(&self, value_bytes: usize) -> usize {
        self.stored_entries() * (value_bytes + 8)
    }
}

impl<T: Persist> Persist for Chain<T> {
    fn save(&self, w: &mut ByteWriter) {
        self.current.save(w);
        self.successors.save(w);
        self.pending.save(w);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            current: Persist::load(r)?,
            successors: Persist::load(r)?,
            pending: Persist::load(r)?,
        })
    }
}

impl<T: Persist> Persist for ChainSampler<T> {
    fn save(&self, w: &mut ByteWriter) {
        self.chains.save(w);
        w.put_u64(self.window);
        w.put_u64(self.position);
        w.put_u64(self.version);
        self.waiting.save(w);
        self.expiring.save(w);
        self.rng.save(w);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let sampler = Self {
            chains: Persist::load(r)?,
            window: r.get_u64()?,
            position: r.get_u64()?,
            version: r.get_u64()?,
            waiting: Persist::load(r)?,
            expiring: Persist::load(r)?,
            rng: Persist::load(r)?,
        };
        if sampler.window == 0 {
            return Err(PersistError::Corrupt("chain sampler window must be positive"));
        }
        if sampler.chains.is_empty() {
            return Err(PersistError::Corrupt("chain sampler needs at least one chain"));
        }
        Ok(sampler)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_parameters() {
        assert!(ChainSampler::<f64>::new(0, 4, 1).is_err());
        assert!(ChainSampler::<f64>::new(4, 0, 1).is_err());
    }

    #[test]
    fn sample_is_full_size_after_first_element() {
        let mut s = ChainSampler::new(16, 8, 7).unwrap();
        s.push(1.0_f64);
        assert_eq!(s.sample().len(), 8);
    }

    #[test]
    fn sample_never_shrinks() {
        // Every chain's replacement arrives before its expiry, so the
        // sample stays full forever.
        let mut s = ChainSampler::new(32, 16, 23).unwrap();
        for i in 0..10_000u64 {
            s.push(i);
            assert_eq!(s.sample().len(), 16, "sample shrank at element {i}");
        }
    }

    #[test]
    fn sampled_indices_always_inside_window() {
        let mut s = ChainSampler::new(50, 20, 3).unwrap();
        for i in 0..5_000_u64 {
            s.push(i as f64);
            let horizon = s.stream_len().saturating_sub(50);
            for (idx, _) in s.sample_with_indices() {
                assert!(idx > horizon && idx <= s.stream_len());
            }
        }
    }

    #[test]
    fn sample_is_roughly_uniform_over_window() {
        // Push a long stream where the value equals the stream position,
        // then check that sampled positions cover the window without heavy
        // bias: split the window into 4 quartiles and require each to get
        // at least half of its expected share.
        let w = 400;
        let k = 64;
        let mut counts = [0usize; 4];
        let mut total = 0usize;
        for seed in 0..40 {
            let mut s = ChainSampler::new(w, k, seed).unwrap();
            for i in 0..(3 * w as u64) {
                s.push(i);
            }
            let lo = 3 * w as u64 - w as u64; // window start (exclusive horizon)
            for (idx, _) in s.sample_with_indices() {
                let off = (idx - lo - 1) as usize;
                counts[off * 4 / w] += 1;
                total += 1;
            }
        }
        let expected = total as f64 / 4.0;
        for (q, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) > 0.5 * expected && (c as f64) < 1.5 * expected,
                "quartile {q} count {c} far from expected {expected}"
            );
        }
    }

    #[test]
    fn chains_use_bounded_memory() {
        let mut s = ChainSampler::new(1_000, 32, 11).unwrap();
        let mut max_entries = 0;
        for i in 0..50_000_u64 {
            s.push(i);
            max_entries = max_entries.max(s.stored_entries());
        }
        // Expected chain length is O(1); allow a generous constant.
        assert!(
            max_entries < 32 * 16,
            "stored entries {max_entries} exceed expected O(k) bound"
        );
    }

    #[test]
    fn bookkeeping_maps_stay_bounded() {
        let mut s = ChainSampler::new(500, 64, 13).unwrap();
        for i in 0..100_000u64 {
            s.push(i);
        }
        // One waiting entry per chain tail, one expiring entry per live
        // chain head (plus bounded stale entries within one window).
        assert!(s.waiting.len() <= 64 * 4, "waiting {}", s.waiting.len());
        assert!(s.expiring.len() <= 64 * 4, "expiring {}", s.expiring.len());
    }

    #[test]
    fn version_changes_exactly_when_sample_changes() {
        let mut s = ChainSampler::new(64, 8, 17).unwrap();
        let mut last_version = s.version();
        let mut last_sample = s.sample();
        for i in 0..2_000u64 {
            s.push(i);
            let sample = s.sample();
            if s.version() == last_version {
                assert_eq!(sample, last_sample, "sample changed without version bump");
            }
            last_version = s.version();
            last_sample = sample;
        }
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let mut a = ChainSampler::new(100, 10, 99).unwrap();
        let mut b = ChainSampler::new(100, 10, 99).unwrap();
        for i in 0..1_000_u64 {
            a.push(i);
            b.push(i);
        }
        assert_eq!(a.sample(), b.sample());
    }

    #[test]
    fn large_sample_pushes_are_fast_enough_for_debug_tests() {
        // Regression guard for the O(|R|)-per-push implementation: 40k
        // pushes against |R| = 2000 must stay well under a second even
        // unoptimised.
        let mut s = ChainSampler::new(20_000, 2_000, 1).unwrap();
        let start = std::time::Instant::now();
        for i in 0..40_000u64 {
            s.push(i);
        }
        assert!(
            start.elapsed() < std::time::Duration::from_secs(10),
            "pushes took {:?}",
            start.elapsed()
        );
    }
}
