//! Entry point of the `snod` binary.

use snod_cli::args::{parse, Command, USAGE};
use snod_cli::run;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout().lock();
    let result = match &command {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Demo => run::demo(&mut stdout),
        Command::Simulate(a) => run::simulate(a, &mut stdout),
        Command::Serve(a) => run::serve_daemon(a, &mut stdout),
        Command::Client(a) => run::serve_client(a, &mut stdout),
        Command::Stats(a) => run::stats(a, &mut stdout).map(|n| {
            eprintln!("{n} readings");
        }),
        Command::Detect(a) => run::detect(a, &mut stdout).map(|(n, o)| {
            eprintln!("{n} readings, {o} outliers");
        }),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
