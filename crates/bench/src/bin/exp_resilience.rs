//! Extension experiment (beyond the paper): detection robustness and
//! latency of the distributed pipeline under radio loss.
//!
//! The paper's evaluation assumes reliable delivery; real deployments
//! drop frames. Two questions the library's users will ask:
//!
//! 1. **Resilience** — how do leaf-level and root-level D3 detections
//!    degrade as the per-hop loss probability grows?
//! 2. **Latency** — how long after a deviant reading arrives does the
//!    *root* confirm it (per-hop link latency × depth, plus losses)?
//!
//! Knobs: `FIG_LEAVES` (default 16), `FIG_READINGS` (default 4000).

use snod_bench::report::{num, Table};
use snod_core::{run_d3, D3Config, EstimatorConfig};
use snod_outlier::DistanceOutlierConfig;
use snod_simnet::{Hierarchy, NodeId, SimConfig};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let leaves = env_u64("FIG_LEAVES", 16) as usize;
    let readings = env_u64("FIG_READINGS", 4_000);
    let window = 1_000usize;
    let cfg = D3Config {
        estimator: EstimatorConfig::builder()
            .window(window)
            .sample_size(100)
            .seed(77)
            .build()
            .expect("valid configuration"),
        rule: DistanceOutlierConfig::new(10.0, 0.01),
        sample_fraction: 0.5,
    };
    // Every leaf emits one unmistakable deviant value every 250 readings;
    // each occurrence is bit-unique so root confirmations can be matched
    // back to the exact leaf detection for latency measurement.
    let make_source = || {
        move |node: NodeId, seq: u64| {
            if seq % 250 == 249 {
                Some(vec![0.92 + 1e-4 * node.0 as f64 + 1e-9 * seq as f64])
            } else {
                let h = (seq * 31 + node.0 as u64 * 17) % 500;
                Some(vec![0.35 + 0.15 * (h as f64 + 0.5) / 500.0])
            }
        }
    };

    println!(
        "Resilience of D3 under radio loss — {leaves} leaves, {readings} readings/leaf, \
         deviants every 250 readings\n"
    );
    let mut t = Table::new([
        "loss",
        "leaf dets",
        "root dets",
        "root/leaf",
        "median root latency (ms)",
    ]);
    for &loss in &[0.0f64, 0.05, 0.1, 0.2, 0.4] {
        let topo = Hierarchy::balanced(leaves, &[4, 4]).expect("valid hierarchy");
        let sim = SimConfig::default().with_drop_probability(loss);
        let mut src = make_source();
        let net = run_d3(topo, &cfg, sim, &mut src, readings).expect("d3 run");
        let topo = net.topology();
        let leaf_dets: Vec<_> = topo
            .leaves()
            .iter()
            .flat_map(|&l| net.app(l).detections.iter().cloned())
            .filter(|d| d.value[0] > 0.9)
            .collect();
        let root_dets: Vec<_> = net
            .app(topo.root())
            .detections
            .iter()
            .filter(|d| d.value[0] > 0.9)
            .cloned()
            .collect();
        // Root confirmation latency: root detection time minus the leaf
        // detection time of the same (bit-identical) value.
        let mut latencies: Vec<u64> = root_dets
            .iter()
            .filter_map(|rd| {
                leaf_dets
                    .iter()
                    .find(|ld| ld.value == rd.value)
                    .map(|ld| rd.time_ns - ld.time_ns)
            })
            .collect();
        latencies.sort_unstable();
        let median_ms = latencies
            .get(latencies.len() / 2)
            .map(|&ns| ns as f64 / 1e6)
            .unwrap_or(f64::NAN);
        t.row([
            format!("{:.0}%", loss * 100.0),
            leaf_dets.len().to_string(),
            root_dets.len().to_string(),
            num(root_dets.len() as f64 / leaf_dets.len().max(1) as f64, 2),
            num(median_ms, 1),
        ]);
    }
    println!("{}", t.render());
    println!(
        "expected shape: leaf detections are loss-independent (local); root\n\
         confirmations decay roughly like (1−loss)^hops; latency = hops × 5 ms links."
    );
}
