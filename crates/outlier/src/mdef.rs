//! MDEF / aLOCI local-metrics outliers (paper Sections 3 and 8, Figure 3).
//!
//! The Multi-Granularity Deviation Factor compares the *counting
//! neighborhood* of `p` (radius `αr`) against the counting neighborhoods
//! of the points in its *sampling neighborhood* (radius `r`):
//!
//! ```text
//! MDEF(p, r, α)   = 1 − n(p, αr) / n̂(p, r, α)
//! σ_MDEF(p, r, α) = σ_n̂(p, r, α) / n̂(p, r, α)
//! outlier ⇔ MDEF > k_σ · σ_MDEF          (paper Equation 9, k_σ = 3)
//! ```
//!
//! where `n̂` is the (point-weighted) average of `n(q, αr)` over
//! `q ∈ N(p, r)` and `σ_n̂` its standard deviation. Following Figure 3 of
//! the paper, the average is estimated from a density model by dividing
//! the domain into cells of width `2αr` and issuing one range query
//! `N(center_i, αr)` per cell that intersects `[p − r, p + r]` — the
//! aLOCI discretisation. This costs `1/(2αr)` range queries per dimension
//! (Theorem 4).

use snod_density::{DensityError, DensityModel};
use snod_persist::{ByteReader, ByteWriter, Persist, PersistError};

/// How `σ_MDEF` is estimated from the per-cell counts.
///
/// The paper specifies `k_σ = 3` and cites aLOCI for the machinery, but
/// with the LOCI-orthodox count-weighted *population* deviation, `σ_MDEF`
/// on any Gaussian-slope or Poisson-sparse region exceeds `MDEF/k_σ ≤ 1/3`
/// and the flagged set on the paper's own synthetic workload is **empty**
/// — incompatible with the reported "40–80 outliers" and ≈94% precision.
/// Interpreting the deviation as the uncertainty *of the local average*
/// (`σ/√#cells`, a standard error) reproduces the paper's observable
/// behaviour; it is therefore the default, with the orthodox estimator
/// kept for comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SigmaMode {
    /// Count-weighted population deviation of the cell counts
    /// (LOCI/aLOCI as published).
    Weighted,
    /// Standard error of the count-weighted mean: `σ_weighted / √m`
    /// over the `m` non-empty cells (reproduces the paper's numbers).
    #[default]
    StandardError,
}

/// Parameters of the MDEF-based outlier rule. The paper's synthetic
/// experiments use `r = 0.08`, `αr = 0.01`, `k_σ = 3`; the real-data
/// experiments use `r = 0.05`, `αr = 0.003`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MdefConfig {
    /// Sampling-neighborhood radius `r`.
    pub sampling_radius: f64,
    /// Counting-neighborhood radius `αr` (so `α = αr / r`).
    pub counting_radius: f64,
    /// Significance factor `k_σ`.
    pub k_sigma: f64,
    /// The σ_MDEF estimator (see [`SigmaMode`]).
    pub sigma_mode: SigmaMode,
    /// Minimum MDEF for a flag regardless of σ_MDEF. Guards against the
    /// degenerate σ → 0 of perfectly homogeneous neighborhoods, where
    /// self-exclusion alone yields `MDEF = 1/n̂ > 0 = k_σ·σ_MDEF`.
    pub min_deviation: f64,
}

impl MdefConfig {
    /// Creates a configuration, validating `0 < αr ≤ r` and `k_σ > 0`.
    pub fn new(sampling_radius: f64, counting_radius: f64, k_sigma: f64) -> Option<Self> {
        (counting_radius > 0.0 && counting_radius <= sampling_radius && k_sigma > 0.0).then_some(
            Self {
                sampling_radius,
                counting_radius,
                k_sigma,
                sigma_mode: SigmaMode::default(),
                min_deviation: 0.05,
            },
        )
    }

    /// Switches the σ_MDEF estimator.
    pub fn with_sigma_mode(mut self, mode: SigmaMode) -> Self {
        self.sigma_mode = mode;
        self
    }

    /// The ratio `α = αr / r`.
    pub fn alpha(&self) -> f64 {
        self.counting_radius / self.sampling_radius
    }

    /// Applies the configured mode to the weighted deviation over `m`
    /// non-empty cells.
    pub fn effective_sigma(&self, weighted_sigma: f64, cells: usize) -> f64 {
        match self.sigma_mode {
            SigmaMode::Weighted => weighted_sigma,
            SigmaMode::StandardError => weighted_sigma / (cells.max(1) as f64).sqrt(),
        }
    }

    /// The flagging rule (Equation 9 plus the degeneracy margin):
    /// `MDEF > k_σ·σ_MDEF` **and** `MDEF > min_deviation`.
    pub fn flags(&self, mdef: f64, sigma_mdef: f64) -> bool {
        mdef > self.k_sigma * sigma_mdef && mdef > self.min_deviation
    }
}

/// The full MDEF diagnostics for one observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MdefEvaluation {
    /// `n(p, αr)` — estimated count in the counting neighborhood of `p`.
    pub count: f64,
    /// `n̂(p, r, α)` — point-weighted average counting-neighborhood count
    /// over the sampling neighborhood.
    pub avg_count: f64,
    /// `MDEF(p, r, α)`.
    pub mdef: f64,
    /// `σ_MDEF(p, r, α)`.
    pub sigma_mdef: f64,
    /// Whether Equation 9 flags `p`.
    pub is_outlier: bool,
}

/// MDEF detector evaluating observations against any density model.
#[derive(Debug, Clone, Copy)]
pub struct MdefDetector {
    cfg: MdefConfig,
}

impl MdefDetector {
    /// Creates a detector.
    pub fn new(cfg: MdefConfig) -> Self {
        Self { cfg }
    }

    /// The bound configuration.
    pub fn config(&self) -> &MdefConfig {
        &self.cfg
    }

    /// Evaluates observation `p` against `model` (the *global* model in
    /// the MGDD algorithm). Implements the `isMDEFOutlier()` check of the
    /// paper's Figure 4 (MGDD, line 27).
    pub fn evaluate<M: DensityModel + ?Sized>(
        &self,
        model: &M,
        p: &[f64],
    ) -> Result<MdefEvaluation, DensityError> {
        snod_obs::counter!("outlier.mdef.evals").incr();
        let d = model.dims();
        if p.len() != d {
            return Err(DensityError::DimensionMismatch {
                expected: d,
                got: p.len(),
            });
        }
        let ar = self.cfg.counting_radius;
        let r = self.cfg.sampling_radius;
        let cell = 2.0 * ar;

        // Cells of width 2αr (per dimension, aligned to the domain origin)
        // that intersect the sampling box [p − r, p + r].
        let mut lo_idx = Vec::with_capacity(d);
        let mut n_cells = Vec::with_capacity(d);
        for &c in p.iter().take(d) {
            let lo = ((c - r) / cell).floor().max(0.0) as i64;
            let hi = ((c + r) / cell).floor() as i64;
            let hi = hi.max(lo);
            lo_idx.push(lo);
            n_cells.push((hi - lo + 1) as usize);
        }
        let total_cells: usize = n_cells.iter().product();

        // All counting queries of one evaluation share the radius αr, so
        // they go to the model as a single batch: the counting
        // neighborhood of p itself, then one query per cell centre (the
        // flat-index order emits centres ascending in dimension 0, which
        // the sorted-sweep implementations exploit).
        let mut queries = Vec::with_capacity((1 + total_cells) * d);
        queries.extend_from_slice(p);
        for flat in 0..total_cells {
            let mut rem = flat;
            let at = queries.len();
            queries.resize(at + d, 0.0);
            for j in (0..d).rev() {
                let off = rem % n_cells[j];
                rem /= n_cells[j];
                queries[at + j] = (lo_idx[j] + off as i64) as f64 * cell + ar;
            }
        }
        let counts = model.neighborhood_counts(&queries, ar)?;

        // Counting neighborhood of p itself.
        let count = counts[0];

        // Weighted first and second moments of the per-cell counts c_i,
        // weighting each cell by its own count (each of the ~c_i points in
        // cell i has counting-neighborhood count ≈ c_i).
        let mut w_sum = 0.0;
        let mut w_mean = 0.0;
        let mut w_sq = 0.0;
        let mut nonempty = 0usize;
        for &c in &counts[1..] {
            // Estimated fractional counts below one reading are noise
            // floor, not population: skip them like empty cells.
            if c >= 0.5 {
                w_sum += c;
                w_mean += c * c;
                w_sq += c * c * c;
                nonempty += 1;
            }
        }
        if w_sum <= f64::EPSILON {
            // Empty sampling neighborhood: the point is maximally deviant.
            return Ok(MdefEvaluation {
                count,
                avg_count: 0.0,
                mdef: 1.0,
                sigma_mdef: 0.0,
                is_outlier: true,
            });
        }
        let avg = w_mean / w_sum;
        let var = (w_sq / w_sum - avg * avg).max(0.0);
        let sigma_mdef = self.cfg.effective_sigma(var.sqrt(), nonempty) / avg;
        let mdef = 1.0 - count / avg;
        let is_outlier = self.cfg.flags(mdef, sigma_mdef);
        Ok(MdefEvaluation {
            count,
            avg_count: avg,
            mdef,
            sigma_mdef,
            is_outlier,
        })
    }

    /// Convenience: just the boolean verdict.
    pub fn check<M: DensityModel + ?Sized>(
        &self,
        model: &M,
        p: &[f64],
    ) -> Result<bool, DensityError> {
        Ok(self.evaluate(model, p)?.is_outlier)
    }
}

impl Persist for SigmaMode {
    fn save(&self, w: &mut ByteWriter) {
        w.put_u8(match self {
            SigmaMode::Weighted => 0,
            SigmaMode::StandardError => 1,
        });
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        match r.get_u8()? {
            0 => Ok(SigmaMode::Weighted),
            1 => Ok(SigmaMode::StandardError),
            _ => Err(PersistError::Corrupt("unknown sigma-mode tag")),
        }
    }
}

impl Persist for MdefConfig {
    fn save(&self, w: &mut ByteWriter) {
        self.sampling_radius.save(w);
        self.counting_radius.save(w);
        self.k_sigma.save(w);
        self.sigma_mode.save(w);
        self.min_deviation.save(w);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let sampling_radius = f64::load(r)?;
        let counting_radius = f64::load(r)?;
        let k_sigma = f64::load(r)?;
        let sigma_mode = SigmaMode::load(r)?;
        let min_deviation = f64::load(r)?;
        if !(counting_radius > 0.0 && counting_radius <= sampling_radius && k_sigma > 0.0) {
            return Err(PersistError::Corrupt("mdef radii violate 0 < ar <= r"));
        }
        Ok(Self {
            sampling_radius,
            counting_radius,
            k_sigma,
            sigma_mode,
            min_deviation,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snod_density::Kde1d;

    fn cfg() -> MdefConfig {
        MdefConfig::new(0.08, 0.01, 3.0).expect("valid config")
    }

    fn cluster_model() -> Kde1d {
        // Dense *uniform* block on [0.40, 0.50]: with k_σ = 3 and
        // MDEF ≤ 1, flagging requires σ_MDEF < 1/3, i.e. a sampling
        // neighborhood dominated by homogeneous density. A uniform core
        // is the clean geometry for that (a Gaussian core spanning
        // several 2αr cells is too heterogeneous to flag — see the
        // brute-force tests for that documented behavior).
        let xs: Vec<f64> = (0..500)
            .map(|i| 0.40 + 0.10 * (i as f64 + 0.5) / 500.0)
            .collect();
        // Small bandwidth so the block's edges stay sharp.
        Kde1d::new(xs, 0.004, 10_000.0, snod_density::EpanechnikovKernel).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(MdefConfig::new(0.08, 0.0, 3.0).is_none());
        assert!(MdefConfig::new(0.01, 0.08, 3.0).is_none()); // αr > r
        assert!(MdefConfig::new(0.08, 0.01, 0.0).is_none());
        assert!((cfg().alpha() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn cluster_core_is_not_mdef_outlier() {
        let det = MdefDetector::new(cfg());
        let model = cluster_model();
        let e = det.evaluate(&model, &[0.45]).unwrap();
        assert!(e.mdef < 0.5, "core mdef too high: {e:?}");
        assert!(!e.is_outlier, "cluster core flagged: {e:?}");
    }

    #[test]
    fn cluster_skirt_point_is_mdef_outlier() {
        // A point just outside the cluster whose sampling neighborhood is
        // dominated by the homogeneous dense core: the canonical MDEF
        // outlier (its own count is far below the local average).
        let det = MdefDetector::new(cfg());
        let model = cluster_model();
        let e = det.evaluate(&model, &[0.55]).unwrap();
        assert!(e.mdef > 0.8, "skirt point mdef {e:?}");
        assert!(e.is_outlier, "skirt point not flagged: {e:?}");
    }

    #[test]
    fn empty_neighborhood_flags_outlier() {
        let det = MdefDetector::new(cfg());
        let model = cluster_model();
        let e = det.evaluate(&model, &[0.95]).unwrap();
        assert!(e.is_outlier);
        assert_eq!(e.mdef, 1.0);
        assert_eq!(e.avg_count, 0.0);
    }

    #[test]
    fn denser_than_neighbors_never_flagged() {
        // The densest point has a count above the local average: MDEF < 0.
        let det = MdefDetector::new(cfg());
        let model = cluster_model();
        let e = det.evaluate(&model, &[0.45]).unwrap();
        assert!(
            e.count >= e.avg_count * 0.8,
            "core unexpectedly thin: {e:?}"
        );
        assert!(!e.is_outlier);
    }

    #[test]
    fn dimension_mismatch_is_error() {
        let det = MdefDetector::new(cfg());
        let model = cluster_model();
        assert!(det.evaluate(&model, &[0.5, 0.5]).is_err());
    }

    #[test]
    fn local_density_awareness_spares_sparse_but_uniform_regions() {
        // A uniformly sparse region is locally *normal*: every counting
        // neighborhood holds roughly the same small count, so MDEF ≈ 0.
        // (This is exactly where MDEF is more robust than a single global
        // distance threshold — paper Section 3.)
        let xs: Vec<f64> = (0..100).map(|i| 0.2 + 0.006 * i as f64).collect();
        let model = Kde1d::from_sample(&xs, 0.17, 10_000.0).unwrap();
        let det = MdefDetector::new(cfg());
        let e = det.evaluate(&model, &[0.5]).unwrap();
        assert!(!e.is_outlier, "uniform-region point flagged: {e:?}");
    }

    #[test]
    fn evaluation_is_deterministic() {
        let det = MdefDetector::new(cfg());
        let model = cluster_model();
        let a = det.evaluate(&model, &[0.52]).unwrap();
        let b = det.evaluate(&model, &[0.52]).unwrap();
        assert_eq!(a, b);
    }
}
