//! First-class detector backends.
//!
//! The four detector families — D3 (kernel-density distance rule), MGDD
//! (multi-granular MDEF), FQN (streaming Q_n robust scale) and MMDEW
//! (MMD on exponential windows) — share the same runtime shape: a
//! per-node [`DetectorEngine`] that ingests readings, exchanges wire
//! messages up the hierarchy and records [`Detection`]s. This module
//! names that shape ([`DetectorBackend`]) so every layer above the
//! engines — the pipeline, the CLI, `snod serve` tenants and the bench
//! crate's conformance harness — can be written once, generically,
//! instead of once per algorithm.
//!
//! A backend value is a *validated recipe*: it knows how to build one
//! engine per node (seed-decorrelated via the node id) and how to read
//! the detections back out. The free functions [`build_backend_network`]
//! and [`build_backend_live`] turn a recipe into the simulated or the
//! wall-clock runtime over identical engines — the pairing the
//! driver-parity suites pin bit-for-bit.

use snod_persist::Persist;
use snod_simnet::{
    DetectorEngine, FaultPlan, Hierarchy, LiveRuntime, Network, NodeId, SimConfig, StreamSource,
    Wire,
};

use crate::config::{CoreError, D3Config, MgddConfig};
use crate::d3::{D3Node, D3Payload, Detection};
use crate::fqn::{FqnConfig, FqnNode, FqnPayload};
use crate::mgdd::MgddNode;
use crate::mgdd::MgddPayload;
use crate::shift::{MmdewNode, MmdewNodeConfig, MmdewPayload};

/// The detector families selectable at runtime (CLI `--detector`,
/// serve tenant specs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Distributed distance-based deviation detection (paper §7).
    D3,
    /// Multi-granular MDEF deviation detection (paper §8).
    Mgdd,
    /// MMD-on-exponential-windows change detection (Kalinke et al.).
    Mmdew,
    /// Streaming Q_n robust-scale outlier detection (Cafaro et al.).
    Fqn,
}

impl BackendKind {
    /// All selectable kinds, in CLI presentation order.
    pub const ALL: [BackendKind; 4] = [
        BackendKind::D3,
        BackendKind::Mgdd,
        BackendKind::Mmdew,
        BackendKind::Fqn,
    ];

    /// The CLI/config token for this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            BackendKind::D3 => "d3",
            BackendKind::Mgdd => "mgdd",
            BackendKind::Mmdew => "mmdew",
            BackendKind::Fqn => "fqn",
        }
    }
}

impl std::str::FromStr for BackendKind {
    type Err = CoreError;

    fn from_str(s: &str) -> Result<Self, CoreError> {
        match s {
            "d3" => Ok(BackendKind::D3),
            "mgdd" => Ok(BackendKind::Mgdd),
            "mmdew" => Ok(BackendKind::Mmdew),
            "fqn" => Ok(BackendKind::Fqn),
            _ => Err(CoreError::Config(
                "unknown detector (expected d3|mgdd|mmdew|fqn)",
            )),
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A validated recipe for one detector family: builds the per-node
/// engines and reads their detections back out.
pub trait DetectorBackend: Clone + Send + Sync + 'static {
    /// The wire message type exchanged up the hierarchy.
    type Payload: Wire + Persist + Clone + Send + 'static;
    /// The per-node engine.
    type Engine: DetectorEngine<Self::Payload> + Persist + Send + 'static;

    /// Which family this is.
    fn kind(&self) -> BackendKind;

    /// Validates the recipe's parameters.
    fn validate(&self) -> Result<(), CoreError>;

    /// Builds the engine for `node` within `topo` (seed-decorrelated).
    fn make_engine(&self, node: NodeId, topo: &Hierarchy) -> Self::Engine;

    /// The detections an engine has recorded so far.
    fn detections(engine: &Self::Engine) -> &[Detection];
}

/// [`DetectorBackend`] recipe for D3.
#[derive(Debug, Clone)]
pub struct D3Backend(pub D3Config);

impl DetectorBackend for D3Backend {
    type Payload = D3Payload;
    type Engine = D3Node;

    fn kind(&self) -> BackendKind {
        BackendKind::D3
    }

    fn validate(&self) -> Result<(), CoreError> {
        self.0.validate()
    }

    fn make_engine(&self, node: NodeId, topo: &Hierarchy) -> D3Node {
        D3Node::new(node, topo, &self.0)
    }

    fn detections(engine: &D3Node) -> &[Detection] {
        &engine.detections
    }
}

/// [`DetectorBackend`] recipe for MGDD. `broadcast_levels` lists the
/// tiers whose leaders broadcast their models downward.
#[derive(Debug, Clone)]
pub struct MgddBackend {
    /// The MGDD parameters.
    pub cfg: MgddConfig,
    /// Tiers whose leaders broadcast models (1 = leaf tier).
    pub broadcast_levels: Vec<u8>,
}

impl DetectorBackend for MgddBackend {
    type Payload = MgddPayload;
    type Engine = MgddNode;

    fn kind(&self) -> BackendKind {
        BackendKind::Mgdd
    }

    fn validate(&self) -> Result<(), CoreError> {
        self.cfg.validate()
    }

    fn make_engine(&self, node: NodeId, topo: &Hierarchy) -> MgddNode {
        MgddNode::new(node, topo, &self.cfg, &self.broadcast_levels)
    }

    fn detections(engine: &MgddNode) -> &[Detection] {
        &engine.detections
    }
}

/// [`DetectorBackend`] recipe for FQN.
#[derive(Debug, Clone)]
pub struct FqnBackend(pub FqnConfig);

impl DetectorBackend for FqnBackend {
    type Payload = FqnPayload;
    type Engine = FqnNode;

    fn kind(&self) -> BackendKind {
        BackendKind::Fqn
    }

    fn validate(&self) -> Result<(), CoreError> {
        self.0.validate()
    }

    fn make_engine(&self, node: NodeId, topo: &Hierarchy) -> FqnNode {
        FqnNode::new(node, topo, &self.0)
    }

    fn detections(engine: &FqnNode) -> &[Detection] {
        &engine.detections
    }
}

/// [`DetectorBackend`] recipe for MMDEW.
#[derive(Debug, Clone)]
pub struct MmdewBackend(pub MmdewNodeConfig);

impl DetectorBackend for MmdewBackend {
    type Payload = MmdewPayload;
    type Engine = MmdewNode;

    fn kind(&self) -> BackendKind {
        BackendKind::Mmdew
    }

    fn validate(&self) -> Result<(), CoreError> {
        self.0.validate()
    }

    fn make_engine(&self, node: NodeId, topo: &Hierarchy) -> MmdewNode {
        MmdewNode::new(node, topo, &self.0)
    }

    fn detections(engine: &MmdewNode) -> &[Detection] {
        &engine.detections
    }
}

/// Builds the simulated network for any backend without running it.
pub fn build_backend_network<B: DetectorBackend>(
    backend: &B,
    topo: Hierarchy,
    sim: SimConfig,
    plan: FaultPlan,
) -> Result<Network<B::Payload, B::Engine>, CoreError> {
    backend.validate()?;
    Ok(Network::new(topo, sim, |node, topo| backend.make_engine(node, topo)).with_fault_plan(plan))
}

/// Builds the live (wall-clock) runtime over the identical engines.
pub fn build_backend_live<B: DetectorBackend>(
    backend: &B,
    topo: Hierarchy,
    sim: SimConfig,
    plan: FaultPlan,
) -> Result<LiveRuntime<B::Payload, B::Engine>, CoreError> {
    backend.validate()?;
    Ok(
        LiveRuntime::new(topo, sim, |node, topo| backend.make_engine(node, topo))
            .with_fault_plan(plan),
    )
}

/// Runs any backend under a fault schedule: each leaf consumes
/// `readings_per_leaf` readings from `source`.
pub fn run_backend_with_faults<B: DetectorBackend, S: StreamSource>(
    backend: &B,
    topo: Hierarchy,
    sim: SimConfig,
    plan: FaultPlan,
    source: &mut S,
    readings_per_leaf: u64,
) -> Result<Network<B::Payload, B::Engine>, CoreError> {
    let mut net = build_backend_network(backend, topo, sim, plan)?;
    net.run(source, readings_per_leaf);
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EstimatorConfig;
    use snod_outlier::DistanceOutlierConfig;

    fn d3_backend() -> D3Backend {
        D3Backend(D3Config {
            estimator: EstimatorConfig::builder()
                .window(500)
                .sample_size(64)
                .seed(7)
                .build()
                .unwrap(),
            rule: DistanceOutlierConfig::new(10.0, 0.02),
            sample_fraction: 0.5,
        })
    }

    fn spiky_source() -> impl FnMut(NodeId, u64) -> Option<Vec<f64>> {
        |node: NodeId, seq: u64| {
            if node.0 == 0 && seq % 100 == 99 {
                Some(vec![0.9])
            } else {
                Some(vec![
                    0.45 + 0.002 * ((seq % 25) as f64) + 0.001 * node.0 as f64,
                ])
            }
        }
    }

    #[test]
    fn kind_tokens_round_trip() {
        for kind in BackendKind::ALL {
            assert_eq!(kind.as_str().parse::<BackendKind>().unwrap(), kind);
        }
        assert!("kde".parse::<BackendKind>().is_err());
    }

    #[test]
    fn generic_build_matches_the_concrete_builder() {
        // The abstraction must not change behavior: the generic builder
        // and run_d3 produce bit-identical stats and detections.
        let topo = Hierarchy::balanced(4, &[2, 2]).unwrap();
        let backend = d3_backend();
        let mut a = spiky_source();
        let generic = run_backend_with_faults(
            &backend,
            topo.clone(),
            SimConfig::default(),
            FaultPlan::none(),
            &mut a,
            600,
        )
        .unwrap();
        let mut b = spiky_source();
        let concrete = crate::d3::run_d3(
            topo,
            &backend.0,
            SimConfig::default(),
            &mut b,
            600,
        )
        .unwrap();
        assert_eq!(generic.stats(), concrete.stats());
        for (node, app) in generic.apps() {
            assert_eq!(
                D3Backend::detections(app),
                &concrete.app(node).detections[..]
            );
        }
        assert_eq!(generic.checkpoint(), concrete.checkpoint());
    }

    #[test]
    fn every_backend_runs_end_to_end() {
        let topo = Hierarchy::balanced(4, &[2, 2]).unwrap();

        fn drive<B: DetectorBackend>(backend: &B, topo: Hierarchy) -> usize {
            let mut source = |node: NodeId, seq: u64| {
                let base = if seq < 200 { 0.3 } else { 0.7 };
                if node.0 == 0 && seq % 90 == 89 {
                    Some(vec![3.0])
                } else {
                    Some(vec![
                        base + 0.01 * ((seq.wrapping_mul(13) + node.0 as u64) % 7) as f64,
                    ])
                }
            };
            let net = run_backend_with_faults(
                backend,
                topo,
                SimConfig::default(),
                FaultPlan::none(),
                &mut source,
                400,
            )
            .unwrap();
            net.apps().map(|(_, a)| B::detections(a).len()).sum()
        }

        assert!(drive(&d3_backend(), topo.clone()) > 0, "d3 silent");
        assert!(
            drive(&FqnBackend(FqnConfig::default()), topo.clone()) > 0,
            "fqn silent"
        );
        assert!(
            drive(&MmdewBackend(MmdewNodeConfig::default()), topo) > 0,
            "mmdew silent"
        );
    }

    #[test]
    fn invalid_recipes_are_rejected() {
        let topo = Hierarchy::balanced(2, &[2]).unwrap();
        let fqn = FqnConfig {
            k_scale: -1.0,
            ..FqnConfig::default()
        };
        assert!(build_backend_network(
            &FqnBackend(fqn),
            topo.clone(),
            SimConfig::default(),
            FaultPlan::none()
        )
        .is_err());
        let mut mmdew = MmdewNodeConfig::default();
        mmdew.detector.bucket_cap = 0;
        assert!(
            build_backend_live(&MmdewBackend(mmdew), topo, SimConfig::default(), FaultPlan::none())
                .is_err()
        );
    }
}
