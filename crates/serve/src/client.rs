//! A resilient single-threaded client for `snod serve`.
//!
//! The client owns the at-least-once half of the ingestion contract:
//! every reading stays in a resend buffer until the server acks it as
//! `durable` (covered by an on-disk checkpoint; without a checkpoint
//! directory the server reports `durable == received`). On any
//! connection failure the client redials with backoff, re-Hellos every
//! tenant **in open order** — which makes its locally predicted handles
//! match the server's dense per-connection assignment — and replays the
//! entire unpruned buffer. The server's sequence-number dedup absorbs
//! the overlap, so retransmission is always safe.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::wire::{encode_frame, FrameDecoder, Msg};

/// One detection or escalation as reported by the daemon:
/// `(node, time_ns, level, value)`.
pub type DetectionRow = (u32, u64, u8, Vec<f64>);

/// Client knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Server address.
    pub addr: String,
    /// Unacked readings are retransmitted at this cadence (covers
    /// load-shedding drops).
    pub resend_interval: Duration,
    /// Initial redial backoff after a connection failure.
    pub connect_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Subscribe to live escalation frames.
    pub subscribe: bool,
}

impl ClientConfig {
    /// Defaults for `addr`.
    pub fn new(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            resend_interval: Duration::from_millis(300),
            connect_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(1),
            subscribe: false,
        }
    }
}

#[derive(Debug, Default)]
struct TenantState {
    name: String,
    /// Resend buffer: rows not yet covered by a durable ack.
    sent: Vec<(u32, u64, Vec<f64>)>,
    /// Per-node `(received, durable)` marks from the latest ack.
    marks: HashMap<u32, (u64, u64)>,
    totals: Option<Vec<(u32, u64)>>,
    finished: bool,
    resumed: Option<bool>,
    escalations: Vec<DetectionRow>,
    detections: Option<Vec<DetectionRow>>,
    detections_version: u64,
}

/// See the module docs.
pub struct ServeClient {
    cfg: ClientConfig,
    conn: Option<(TcpStream, FrameDecoder)>,
    tenants: Vec<TenantState>,
    last_resend: Instant,
    backoff: Duration,
    next_dial: Instant,
    last_error: Option<(u8, String)>,
    reconnects: u64,
    ever_connected: bool,
}

impl ServeClient {
    pub fn new(cfg: ClientConfig) -> Self {
        let backoff = cfg.connect_backoff;
        Self {
            cfg,
            conn: None,
            tenants: Vec::new(),
            last_resend: Instant::now(),
            backoff,
            next_dial: Instant::now(),
            last_error: None,
            reconnects: 0,
            ever_connected: false,
        }
    }

    /// Opens (or re-opens, after a client restart) a tenant stream.
    /// Returns the handle used by every other method.
    pub fn open(&mut self, tenant: impl Into<String>) -> u32 {
        let handle = self.tenants.len() as u32;
        self.tenants.push(TenantState {
            name: tenant.into(),
            ..TenantState::default()
        });
        if self.conn.is_some() {
            self.send_frame(&Msg::Hello {
                tenant: self.tenants[handle as usize].name.clone(),
                subscribe: self.cfg.subscribe,
            });
        }
        handle
    }

    /// Buffers and transmits one reading (at-least-once).
    pub fn send(&mut self, handle: u32, node: u32, seq: u64, value: Vec<f64>) {
        let t = &mut self.tenants[handle as usize];
        let durable = t.marks.get(&node).map_or(0, |m| m.1);
        if seq >= durable {
            t.sent.push((node, seq, value.clone()));
        }
        self.ensure_conn();
        self.send_frame(&Msg::Reading {
            handle,
            node,
            seq,
            value,
        });
    }

    /// Declares the per-leaf stream totals.
    pub fn finish(&mut self, handle: u32, totals: Vec<(u32, u64)>) {
        self.tenants[handle as usize].totals = Some(totals.clone());
        self.ensure_conn();
        self.send_frame(&Msg::Finish { handle, totals });
    }

    /// Drives the connection for `wait`: reads frames, retransmits
    /// unacked readings, reconnects as needed.
    pub fn pump(&mut self, wait: Duration) {
        let deadline = Instant::now() + wait;
        loop {
            self.ensure_conn();
            self.read_frames();
            self.maybe_resend();
            if Instant::now() >= deadline {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Pumps until the server confirms the tenant's stream is complete.
    pub fn wait_finished(&mut self, handle: u32, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while !self.tenants[handle as usize].finished {
            if Instant::now() >= deadline {
                return false;
            }
            self.pump(Duration::from_millis(20));
        }
        true
    }

    /// Fetches the tenant's full detection list.
    pub fn query(&mut self, handle: u32, timeout: Duration) -> Option<Vec<DetectionRow>> {
        let want = self.tenants[handle as usize].detections_version + 1;
        let deadline = Instant::now() + timeout;
        let mut last_ask = Instant::now() - Duration::from_secs(1);
        while self.tenants[handle as usize].detections_version < want {
            if Instant::now() >= deadline {
                return None;
            }
            if last_ask.elapsed() >= Duration::from_millis(200) {
                self.ensure_conn();
                self.send_frame(&Msg::Query { handle });
                last_ask = Instant::now();
            }
            self.pump(Duration::from_millis(20));
        }
        self.tenants[handle as usize].detections.clone()
    }

    /// Escalation frames received so far (requires `subscribe`).
    pub fn escalations(&self, handle: u32) -> &[DetectionRow] {
        &self.tenants[handle as usize].escalations
    }

    /// Whether the server reported the tenant as resumed from a
    /// checkpoint at the last Hello.
    pub fn resumed(&self, handle: u32) -> Option<bool> {
        self.tenants[handle as usize].resumed
    }

    /// The last protocol error frame received, if any.
    pub fn last_error(&self) -> Option<&(u8, String)> {
        self.last_error.as_ref()
    }

    /// Successful redials after a lost connection.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Readings buffered awaiting a durable ack.
    pub fn unacked(&self, handle: u32) -> usize {
        self.tenants[handle as usize].sent.len()
    }

    /// Requests an injected worker panic (the daemon must enable
    /// crash frames).
    pub fn inject_crash(&mut self, handle: u32) {
        self.ensure_conn();
        self.send_frame(&Msg::Crash { handle });
    }

    fn ensure_conn(&mut self) {
        if self.conn.is_some() || Instant::now() < self.next_dial {
            return;
        }
        match TcpStream::connect(&self.cfg.addr) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
                self.conn = Some((stream, FrameDecoder::new()));
                self.backoff = self.cfg.connect_backoff;
                if self.ever_connected {
                    self.reconnects += 1;
                } else {
                    self.ever_connected = true;
                }
                // Re-Hello every tenant in open order so server handles
                // match ours, then retransmit what the server lacks.
                for i in 0..self.tenants.len() {
                    let hello = Msg::Hello {
                        tenant: self.tenants[i].name.clone(),
                        subscribe: self.cfg.subscribe,
                    };
                    self.send_frame(&hello);
                }
                self.resend_unreceived();
            }
            Err(_) => {
                self.next_dial = Instant::now() + self.backoff;
                self.backoff = (self.backoff * 2).min(self.cfg.max_backoff);
            }
        }
    }

    /// Retransmits every row the server has not acked as *received*,
    /// plus the Finish totals. Rows between `durable` and `received`
    /// stay buffered but are not re-sent here: if the server crashes
    /// and loses them, its Attach-ack on reconnect rewinds our marks to
    /// the restored state and the next pass picks them up.
    fn resend_unreceived(&mut self) {
        for handle in 0..self.tenants.len() as u32 {
            let t = &self.tenants[handle as usize];
            if t.finished {
                continue;
            }
            let rows: Vec<(u32, u64, Vec<f64>)> = t
                .sent
                .iter()
                .filter(|(node, seq, _)| {
                    *seq >= t.marks.get(node).map_or(0, |m| m.0)
                })
                .cloned()
                .collect();
            for (node, seq, value) in rows {
                self.send_frame(&Msg::Reading {
                    handle,
                    node,
                    seq,
                    value,
                });
            }
            if let Some(totals) = self.tenants[handle as usize].totals.clone() {
                self.send_frame(&Msg::Finish { handle, totals });
            }
        }
    }

    fn maybe_resend(&mut self) {
        if self.last_resend.elapsed() < self.cfg.resend_interval || self.conn.is_none() {
            return;
        }
        self.last_resend = Instant::now();
        self.resend_unreceived();
    }

    fn send_frame(&mut self, msg: &Msg) {
        let Some((stream, _)) = self.conn.as_mut() else {
            return;
        };
        if stream.write_all(&encode_frame(msg)).is_err() {
            self.drop_conn();
        }
    }

    fn drop_conn(&mut self) {
        self.conn = None;
        self.next_dial = Instant::now() + self.backoff;
        self.backoff = (self.backoff * 2).min(self.cfg.max_backoff);
    }

    fn read_frames(&mut self) {
        let Some((stream, dec)) = self.conn.as_mut() else {
            return;
        };
        let mut buf = [0u8; 16 * 1024];
        match stream.read(&mut buf) {
            Ok(0) => {
                self.drop_conn();
                return;
            }
            Ok(n) => dec.feed(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => {
                self.drop_conn();
                return;
            }
        }
        loop {
            let frame = {
                let Some((_, dec)) = self.conn.as_mut() else {
                    return;
                };
                dec.next_frame()
            };
            match frame {
                Ok(Some(msg)) => self.handle_frame(msg),
                Ok(None) => return,
                Err(_) => {
                    // A server speaking garbage: drop and redial.
                    self.drop_conn();
                    return;
                }
            }
        }
    }

    fn handle_frame(&mut self, msg: Msg) {
        match msg {
            Msg::HelloOk { handle, resumed } => {
                if let Some(t) = self.tenants.get_mut(handle as usize) {
                    t.resumed = Some(resumed);
                }
            }
            Msg::Ack { handle, acks } => {
                let Some(t) = self.tenants.get_mut(handle as usize) else {
                    return;
                };
                for (node, received, durable) in acks {
                    t.marks.insert(node, (received, durable));
                }
                // Durably acked rows can never be needed again.
                t.sent.retain(|(node, seq, _)| {
                    *seq >= t.marks.get(node).map_or(0, |m| m.1)
                });
            }
            Msg::Escalation {
                handle,
                node,
                time_ns,
                level,
                value,
            } => {
                if let Some(t) = self.tenants.get_mut(handle as usize) {
                    t.escalations.push((node, time_ns, level, value));
                }
            }
            Msg::Detections { handle, rows } => {
                if let Some(t) = self.tenants.get_mut(handle as usize) {
                    t.detections = Some(rows);
                    t.detections_version += 1;
                }
            }
            Msg::FinishOk { handle } => {
                if let Some(t) = self.tenants.get_mut(handle as usize) {
                    t.finished = true;
                }
            }
            Msg::Error { code, message } => {
                self.last_error = Some((code, message));
            }
            Msg::Pong => {}
            // Client-side frames arriving at the client: ignore.
            _ => {}
        }
    }
}
