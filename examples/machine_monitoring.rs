//! The paper's motivating scenario (§1): a machine fitted with sensors
//! monitoring its operation.
//!
//! *"These sensors measure quantities such as temperature, pressure, and
//! vibration amplitude … in some cases we have to monitor two specific
//! attributes together, such as operating frequency and vibration
//! amplitude, or otherwise we would miss interesting deviations."*
//!
//! This example monitors a 2-d (frequency, vibration) stream where each
//! attribute alone stays within its normal band during a bearing fault —
//! only the *joint* deviation (high frequency with high vibration) is
//! anomalous. A 1-d detector per attribute misses it; the 2-d kernel
//! model catches it.
//!
//! Run with: `cargo run --release --example machine_monitoring`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sensor_outliers::core::{EstimatorConfig, SensorEstimator};
use sensor_outliers::outlier::DistanceOutlierConfig;

/// Normal operation: frequency and vibration are *negatively* coupled
/// (high RPM → smoother). During the fault window, vibration is high at
/// high frequency — each marginal stays in range.
fn reading(rng: &mut StdRng, in_fault: bool) -> Vec<f64> {
    let freq = 0.4 + 0.2 * rng.gen::<f64>();
    let coupled = if in_fault {
        0.55 + 0.25 * (freq - 0.4) / 0.2 // rises with frequency: anomalous
    } else {
        0.75 - 0.25 * (freq - 0.4) / 0.2 // falls with frequency: normal
    };
    let vib = (coupled + 0.02 * (rng.gen::<f64>() - 0.5)).clamp(0.0, 1.0);
    vec![freq, vib]
}

fn main() {
    let window = 8_000;
    let cfg2d = EstimatorConfig::builder()
        .window(window)
        .sample_size(400)
        .dimensions(2)
        .seed(5)
        .build()
        .expect("valid configuration");
    let mut joint = SensorEstimator::new(cfg2d);

    let cfg1d = EstimatorConfig::builder()
        .window(window)
        .sample_size(400)
        .seed(6)
        .build()
        .expect("valid configuration");
    let mut freq_only = SensorEstimator::new(cfg1d.clone_for_seed(7));
    let mut vib_only = SensorEstimator::new(cfg1d);

    let rule = DistanceOutlierConfig::new(40.0, 0.04);
    let mut rng = StdRng::seed_from_u64(99);

    let fault = 9_000..9_050u32;
    let (mut joint_hits, mut freq_hits, mut vib_hits) = (0u32, 0u32, 0u32);

    for i in 0..12_000u32 {
        let v = reading(&mut rng, fault.contains(&i));
        if i >= window as u32 {
            if joint.is_distance_outlier_scaled(&v, &rule).expect("2-d") {
                joint_hits += 1;
                if fault.contains(&i) {
                    println!(
                        "t={i}: joint detector flags (freq {:.3}, vib {:.3}) during fault",
                        v[0], v[1]
                    );
                }
            }
            freq_hits += freq_only
                .is_distance_outlier_scaled(&v[..1], &rule)
                .expect("1-d") as u32;
            vib_hits += vib_only
                .is_distance_outlier_scaled(&v[1..], &rule)
                .expect("1-d") as u32;
        }
        joint.observe(&v).expect("2-d reading");
        freq_only.observe(&v[..1]).expect("1-d reading");
        vib_only.observe(&v[1..]).expect("1-d reading");
    }

    println!("\nfault window: {} readings", fault.len());
    println!("joint (freq, vib) detector : {joint_hits} flags");
    println!("frequency-only detector    : {freq_hits} flags");
    println!("vibration-only detector    : {vib_hits} flags");
    println!("\nthe marginals stay inside their normal bands during the fault,");
    println!("so only the multi-dimensional model sees the deviation (paper §1).");
}

/// Tiny helper so the two 1-d estimators get distinct sampler seeds.
trait CloneForSeed {
    fn clone_for_seed(&self, seed: u64) -> Self;
}

impl CloneForSeed for EstimatorConfig {
    fn clone_for_seed(&self, seed: u64) -> Self {
        let mut c = *self;
        c.seed = seed;
        c
    }
}
