//! Distance-based `(D, r)`-outliers (paper Sections 3 and 7).
//!
//! *"A point p in a dataset T is a (D, r)-outlier if at most D of the
//! points in T lie within distance r from p"* (Knorr & Ng). Online, the
//! sensor estimates the number of neighbors with its density model:
//! `N(p, r) = P[p − r, p + r] · |W|` and flags `p` when
//! `N(p, r) < t` (paper's `IsOutlier()` procedure, Figure 4 lines 32–36).

use snod_density::{DensityError, DensityModel};
use snod_persist::{ByteReader, ByteWriter, Persist, PersistError};

/// Parameters of the `(D, r)`-outlier rule. The paper's synthetic
/// experiments look for `(45, 0.01)`-outliers; the real-data experiments
/// use `(100, 0.005)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceOutlierConfig {
    /// Neighborhood radius `r` (L∞).
    pub radius: f64,
    /// Threshold `t`: flag when fewer than this many neighbors exist.
    pub min_neighbors: f64,
}

impl DistanceOutlierConfig {
    /// `(D, r)` constructor matching the paper's notation order.
    pub fn new(min_neighbors: f64, radius: f64) -> Self {
        Self {
            radius,
            min_neighbors,
        }
    }
}

impl Persist for DistanceOutlierConfig {
    fn save(&self, w: &mut ByteWriter) {
        self.radius.save(w);
        self.min_neighbors.save(w);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            radius: f64::load(r)?,
            min_neighbors: f64::load(r)?,
        })
    }
}

/// Tests whether `p` is a `(D, r)`-outlier under `model`'s estimate of the
/// window distribution.
pub fn is_distance_outlier<M: DensityModel + ?Sized>(
    model: &M,
    p: &[f64],
    cfg: &DistanceOutlierConfig,
) -> Result<bool, DensityError> {
    Ok(model.neighborhood_count(p, cfg.radius)? < cfg.min_neighbors)
}

/// Convenience wrapper binding a configuration, so call sites read as
/// `detector.check(&model, p)`.
#[derive(Debug, Clone, Copy)]
pub struct DistanceOutlierDetector {
    cfg: DistanceOutlierConfig,
}

impl DistanceOutlierDetector {
    /// Creates a detector for `(D, r)`-outliers.
    pub fn new(cfg: DistanceOutlierConfig) -> Self {
        Self { cfg }
    }

    /// The bound configuration.
    pub fn config(&self) -> &DistanceOutlierConfig {
        &self.cfg
    }

    /// Tests `p` against `model`.
    pub fn check<M: DensityModel + ?Sized>(
        &self,
        model: &M,
        p: &[f64],
    ) -> Result<bool, DensityError> {
        is_distance_outlier(model, p, &self.cfg)
    }

    /// Estimated neighbor count — exposed for diagnostics and tests.
    pub fn neighbor_count<M: DensityModel + ?Sized>(
        &self,
        model: &M,
        p: &[f64],
    ) -> Result<f64, DensityError> {
        model.neighborhood_count(p, self.cfg.radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snod_density::Kde1d;

    fn clustered_model() -> Kde1d {
        // 95% of mass near 0.4, 5% near 0.9; window of 1000 values.
        let mut xs = vec![];
        for i in 0..190 {
            xs.push(0.4 + 0.0005 * (i % 50) as f64);
        }
        for i in 0..10 {
            xs.push(0.9 + 0.0005 * i as f64);
        }
        Kde1d::from_sample(&xs, 0.12, 1_000.0).unwrap()
    }

    #[test]
    fn cluster_member_is_not_outlier() {
        let model = clustered_model();
        let cfg = DistanceOutlierConfig::new(45.0, 0.05);
        assert!(!is_distance_outlier(&model, &[0.41], &cfg).unwrap());
    }

    #[test]
    fn sparse_region_is_outlier() {
        let model = clustered_model();
        let cfg = DistanceOutlierConfig::new(45.0, 0.01);
        assert!(is_distance_outlier(&model, &[0.7], &cfg).unwrap());
    }

    #[test]
    fn threshold_is_strict_less_than() {
        let model = clustered_model();
        let det = DistanceOutlierDetector::new(DistanceOutlierConfig::new(45.0, 0.05));
        let n = det.neighbor_count(&model, &[0.41]).unwrap();
        // Exactly-n threshold: n < n is false → not an outlier.
        let exact = DistanceOutlierConfig::new(n, 0.05);
        assert!(!is_distance_outlier(&model, &[0.41], &exact).unwrap());
        let above = DistanceOutlierConfig::new(n + 1.0, 0.05);
        assert!(is_distance_outlier(&model, &[0.41], &above).unwrap());
    }

    #[test]
    fn dimension_mismatch_surfaces_error() {
        let model = clustered_model();
        let cfg = DistanceOutlierConfig::new(45.0, 0.01);
        assert!(is_distance_outlier(&model, &[0.5, 0.5], &cfg).is_err());
    }

    #[test]
    fn larger_radius_finds_more_neighbors() {
        let model = clustered_model();
        let det_small = DistanceOutlierDetector::new(DistanceOutlierConfig::new(1.0, 0.01));
        let det_large = DistanceOutlierDetector::new(DistanceOutlierConfig::new(1.0, 0.2));
        let ns = det_small.neighbor_count(&model, &[0.4]).unwrap();
        let nl = det_large.neighbor_count(&model, &[0.4]).unwrap();
        assert!(nl > ns);
    }
}
