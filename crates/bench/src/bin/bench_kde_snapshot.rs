//! Timing snapshot for the batched KDE query engine and the epoch-based
//! incremental model maintenance, written to `BENCH_kde.json` in the
//! working directory.
//!
//! Methodology: every measurement is the best wall-clock time over
//! several runs (best-of is robust to scheduler noise); a speedup is
//! `baseline / optimised`. Absolute timings vary by host — the snapshot
//! documents the *ratios* discussed in DESIGN.md §Performance
//! architecture:
//!
//! * `batched` — the MGDD counting pattern (one uniform-radius
//!   neighborhood count per MDEF cell) answered by one sorted sweep
//!   ([`DensityModel::neighborhood_counts`]) vs one scalar query per
//!   cell.
//! * `incremental` — the MGDD leaf replica pattern (push one relayed
//!   value, reassess against the model) under the epoch
//!   [`RebuildPolicy`] vs `RebuildPolicy::always()`, which reproduces
//!   the old rebuild-on-every-push behaviour.

use std::hint::black_box;
use std::time::Instant;

use snod_core::{IncrementalReplica, RebuildPolicy};
use snod_density::{scott_bandwidth, DensityModel, Kde, Kde1d};

const RUNS: usize = 5;

fn best_secs<F: FnMut()>(mut f: F) -> f64 {
    // One untimed warm-up run populates caches and allocator pools.
    f();
    let mut best = f64::INFINITY;
    for _ in 0..RUNS {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn sample_1d(n: usize) -> Vec<f64> {
    (0..n as u64)
        .map(|i| ((i * 2_654_435_761) % n as u64) as f64 / n as f64)
        .collect()
}

/// Batched vs scalar: `q` uniform-radius counts against a 1-d model.
fn kde1d_pair(n: usize, q: usize, reps: usize) -> (f64, f64) {
    // σ and radius mirror the MDEF defaults: counting queries use the
    // narrow cell radius αr = 0.01, where per-query search overhead is
    // visible next to the kernel arithmetic.
    let kde = Kde1d::from_sample(&sample_1d(n), 0.1, 10_000.0).unwrap();
    let queries: Vec<f64> = (0..q).map(|i| i as f64 / q as f64).collect();
    let r = 0.01;
    let scalar = best_secs(|| {
        for _ in 0..reps {
            for &p in &queries {
                black_box(kde.neighborhood_count(black_box(&[p]), r).unwrap());
            }
        }
    });
    let batched = best_secs(|| {
        for _ in 0..reps {
            black_box(kde.neighborhood_counts(black_box(&queries), r).unwrap());
        }
    });
    (scalar, batched)
}

/// Batched vs scalar in 2-d (frontier prunes on dimension 0).
fn kde2d_pair(n: usize, q: usize, reps: usize) -> (f64, f64) {
    let rows: Vec<Vec<f64>> = (0..n as u64)
        .map(|i| {
            vec![
                ((i * 2_654_435_761) % n as u64) as f64 / n as f64,
                ((i * 40_503 + 7) % n as u64) as f64 / n as f64,
            ]
        })
        .collect();
    let kde = Kde::from_sample(&rows, &[0.1, 0.1], 10_000.0).unwrap();
    let flat: Vec<f64> = (0..q).flat_map(|i| [i as f64 / q as f64, 0.5]).collect();
    let r = 0.01;
    let scalar = best_secs(|| {
        for _ in 0..reps {
            for p in flat.chunks_exact(2) {
                black_box(kde.neighborhood_count(black_box(p), r).unwrap());
            }
        }
    });
    let batched = best_secs(|| {
        for _ in 0..reps {
            black_box(kde.neighborhood_counts(black_box(&flat), r).unwrap());
        }
    });
    (scalar, batched)
}

/// The MGDD leaf hot path: every relayed push updates the replica and
/// reassesses one point against its model.
fn replica_run(policy: RebuildPolicy, pushes: usize) -> f64 {
    best_secs(|| {
        let mut replica = IncrementalReplica::new(100, policy);
        for i in 0..pushes as u64 {
            let v = ((i * 37) % 1_009) as f64 / 1_009.0;
            replica.push(vec![v], vec![0.1], 1_000.0);
            if replica.sample_len() >= 10 {
                let m = replica.model().unwrap();
                black_box(m.neighborhood_count(&[0.5], 0.05).unwrap());
            }
        }
    })
}

fn main() {
    let (s1, b1) = kde1d_pair(1_000, 64, 200);
    let (s2, b2) = kde2d_pair(1_000, 64, 200);
    let rebuild = replica_run(RebuildPolicy::always(), 20_000);
    let epoch = replica_run(RebuildPolicy::default(), 20_000);
    let hot_path = rebuild / epoch;

    let json = format!(
        "{{\n  \"methodology\": \"best of {RUNS} runs; speedup = baseline_secs / optimised_secs\",\n  \
         \"batched_query_engine\": {{\n    \
         \"kde1d_q64_r1000\": {{\"scalar_secs\": {s1:.6}, \"batched_secs\": {b1:.6}, \"speedup\": {r1:.2}}},\n    \
         \"kde2d_q64_r1000\": {{\"scalar_secs\": {s2:.6}, \"batched_secs\": {b2:.6}, \"speedup\": {r2:.2}}}\n  }},\n  \
         \"incremental_maintenance\": {{\n    \
         \"pushes\": 20000, \"replica_cap\": 100,\n    \
         \"rebuild_always_secs\": {rebuild:.6}, \"epoch_default_secs\": {epoch:.6}, \"speedup\": {hot_path:.2}\n  }},\n  \
         \"mgdd_hot_path_speedup\": {hot_path:.2}\n}}\n",
        r1 = s1 / b1,
        r2 = s2 / b2,
    );
    std::fs::write("BENCH_kde.json", &json).expect("write BENCH_kde.json");
    print!("{json}");
    eprintln!(
        "kde1d batched {:.2}x, kde2d batched {:.2}x, incremental maintenance {hot_path:.2}x",
        s1 / b1,
        s2 / b2,
    );

    // Per-phase attribution via the obs registry: where the work goes
    // between bandwidth selection, scalar kernel integration and the
    // batched sweep fast path. Counters (queries, kernel evaluations)
    // and span histograms (build/sweep latency) per phase.
    let xs = sample_1d(1_000);
    let kde = Kde1d::from_sample(&xs, 0.1, 10_000.0).unwrap();
    let queries: Vec<f64> = (0..64).map(|i| i as f64 / 64.0).collect();
    let ((), bandwidth) = snod_bench::obs_report::phase(|| {
        for _ in 0..200 {
            for &sigma in &[0.05, 0.1, 0.2] {
                black_box(scott_bandwidth(black_box(sigma), xs.len(), 1));
            }
        }
    });
    let ((), kernel_integration) = snod_bench::obs_report::phase(|| {
        for _ in 0..200 {
            for &p in &queries {
                black_box(kde.neighborhood_count(black_box(&[p]), 0.01).unwrap());
            }
        }
    });
    let ((), sweep) = snod_bench::obs_report::phase(|| {
        for _ in 0..200 {
            black_box(kde.neighborhood_counts(black_box(&queries), 0.01).unwrap());
        }
    });
    let phases = vec![
        ("bandwidth".to_string(), bandwidth.clone()),
        ("kernel_integration".to_string(), kernel_integration.clone()),
        ("sweep".to_string(), sweep.clone()),
    ];
    snod_bench::obs_report::write_phases("BENCH_kde_metrics.json", &phases)
        .expect("write BENCH_kde_metrics.json");
    if snod_obs::enabled() {
        eprintln!(
            "phase attribution: bandwidth calls {}, scalar kernels {}, sweep kernels {} \
             (BENCH_kde_metrics.json)",
            bandwidth.counter("density.bandwidth.calls").unwrap_or(0),
            kernel_integration
                .counter("density.scalar.kernels")
                .unwrap_or(0),
            sweep.counter("density.sweep.kernels").unwrap_or(0),
        );
    }
}
