//! Determinism at scale: the arena/slab event queue, the CSR
//! hierarchy and the reusable dispatch-batch buffers must not change
//! a single bit of behaviour at 10,000 leaves — sequential vs
//! parallel engines stay bit-identical, and a checkpoint taken
//! mid-run resumes into the exact state of an uninterrupted run.
//!
//! The detector here is a cheap counting relay (no KDE work), so the
//! suite exercises the *dispatch machinery* — queue ordering, batch
//! grouping, RNG draw order, per-node statistics — at full topology
//! scale while staying fast in debug builds.

use sensor_outliers::persist::{ByteReader, ByteWriter, Persist, PersistError};
use sensor_outliers::simnet::{DetectorEngine, EngineCtx, Hierarchy, Network, NodeId, SimConfig};

/// Counting relay: leaves push every reading up, leaders forward every
/// second message. Enough traffic to keep every tier busy, no model
/// math.
#[derive(Debug, Default, Clone, PartialEq)]
struct Relay {
    readings: u64,
    received: u64,
    forwarded: u64,
}

impl DetectorEngine<Vec<f64>> for Relay {
    fn ingest(&mut self, ctx: &mut EngineCtx<'_, Vec<f64>>, value: &[f64]) {
        self.readings += 1;
        ctx.send_parent(value.to_vec());
    }

    fn on_message(&mut self, ctx: &mut EngineCtx<'_, Vec<f64>>, _from: NodeId, payload: Vec<f64>) {
        self.received += 1;
        if self.received.is_multiple_of(2) && ctx.send_parent(payload) {
            self.forwarded += 1;
        }
    }
}

impl Persist for Relay {
    fn save(&self, w: &mut ByteWriter) {
        self.readings.save(w);
        self.received.save(w);
        self.forwarded.save(w);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            readings: u64::load(r)?,
            received: u64::load(r)?,
            forwarded: u64::load(r)?,
        })
    }
}

const LEAVES: usize = 10_000;
const TIERS: usize = 5;
const READINGS: u64 = 3;

fn build(workers: usize) -> Network<Vec<f64>, Relay> {
    let topo = Hierarchy::deep(LEAVES, TIERS).expect("deep topology");
    // Synchronous readings maximise same-instant batch sizes (the
    // parallel engine's hardest case) and a lossy radio makes the
    // loss-RNG draw order observable in the stats.
    let sim = SimConfig {
        stagger_readings: false,
        ..SimConfig::default()
    }
    .with_drop_probability(0.05)
    .with_worker_threads(workers);
    Network::new(topo, sim, |_, _| Relay::default())
}

fn source(node: NodeId, seq: u64) -> Option<Vec<f64>> {
    Some(vec![node.0 as f64 + seq as f64 * 0.001])
}

#[test]
fn sequential_vs_parallel_bit_identity_at_10k_leaves() {
    let mut seq_net = build(1);
    let mut par_net = build(4);
    let mut src = source;
    seq_net.run(&mut src, READINGS);
    let mut src = source;
    par_net.run(&mut src, READINGS);

    let (a, b) = (seq_net.stats(), par_net.stats());
    assert_eq!(a.messages, b.messages);
    assert_eq!(a.bytes, b.bytes);
    assert_eq!(a.dropped, b.dropped);
    assert_eq!(a.messages_per_level, b.messages_per_level);
    assert_eq!(a.bytes_per_node, b.bytes_per_node);
    // Float accumulation order must match exactly, not just the sums.
    assert_eq!(a.tx_joules.to_bits(), b.tx_joules.to_bits());
    assert_eq!(a.rx_joules.to_bits(), b.rx_joules.to_bits());
    // The checkpoint serialises the full engine state — queue, RNG
    // streams, per-node stats, every app — so byte equality is the
    // strongest bit-identity statement available.
    assert_eq!(seq_net.checkpoint(), par_net.checkpoint());
    // Sanity: the run really happened at scale.
    assert!(a.messages > 0);
    for (_, app) in seq_net.apps().take(LEAVES) {
        assert_eq!(app.readings, READINGS);
    }
}

#[test]
fn checkpoint_round_trip_at_10k_leaves() {
    let period = SimConfig::default().reading_period_ns;

    // Uninterrupted reference run (parallel).
    let mut full = build(4);
    let mut src = source;
    full.run(&mut src, READINGS);

    // Interrupted run: stop after the first reading wave, checkpoint,
    // restore into a freshly built network, finish there.
    let mut first = build(4);
    let mut src = source;
    first.run_until(&mut src, READINGS, period);
    let bytes = first.checkpoint();

    let mut resumed = build(2);
    resumed.restore(&bytes).expect("checkpoint restores");
    let mut src = source;
    resumed.run(&mut src, READINGS);

    assert_eq!(
        full.checkpoint(),
        resumed.checkpoint(),
        "resumed run must be bit-identical to the uninterrupted one"
    );
}
