//! The distribution-shift workload of Figure 6 and its analytic truth.
//!
//! *"We consider Gaussian distributions and vary the underlying
//! distribution after every 4096 measurements (from μ = 0.3, σ = 0.05 to
//! μ = 0.5, σ = 0.05) to measure the latency with which the sensors
//! adjust to the changes in distribution."*
//!
//! [`TrueDistribution`] is the analytic model the estimates are compared
//! against: it implements [`snod_density::DensityModel`], so the same
//! [`snod_density::js_divergence_models`] call measures
//! estimated-vs-true distance (Figure 6's y-axis).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};

use snod_density::{DensityError, DensityModel};

use crate::streams::DataStream;

/// Paper's Figure 6: the distribution alternates every 4096 readings.
pub const DRIFT_PERIOD: u64 = 4_096;
/// First regime: μ = 0.3, σ = 0.05.
pub const REGIME_A: (f64, f64) = (0.3, 0.05);
/// Second regime: μ = 0.5, σ = 0.05.
pub const REGIME_B: (f64, f64) = (0.5, 0.05);

/// Gaussian readings whose mean flips between regimes every
/// [`DRIFT_PERIOD`] measurements.
#[derive(Debug, Clone)]
pub struct DriftingGaussianStream {
    rng: StdRng,
    emitted: u64,
}

impl DriftingGaussianStream {
    /// Deterministic stream with the paper's regimes.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            emitted: 0,
        }
    }

    /// The regime `(μ, σ)` in force for reading number `seq` (0-based).
    pub fn regime_at(seq: u64) -> (f64, f64) {
        if (seq / DRIFT_PERIOD).is_multiple_of(2) {
            REGIME_A
        } else {
            REGIME_B
        }
    }

    /// Readings emitted so far.
    pub fn position(&self) -> u64 {
        self.emitted
    }

    /// The analytic distribution currently generating values.
    pub fn current_truth(&self) -> TrueDistribution {
        let (mean, std) = Self::regime_at(self.emitted);
        TrueDistribution::gaussian_1d(mean, std)
    }
}

impl DataStream for DriftingGaussianStream {
    fn dims(&self) -> usize {
        1
    }

    fn next_reading(&mut self) -> Vec<f64> {
        let (mean, std) = Self::regime_at(self.emitted);
        self.emitted += 1;
        let normal = Normal::new(mean, std).expect("valid normal");
        vec![normal.sample(&mut self.rng).clamp(0.0, 1.0)]
    }
}

/// An analytic mixture-of-Gaussians (optionally with a uniform component)
/// over `[0, 1]^d`, usable wherever an estimator model is — in
/// particular as the "true distribution" side of a JS-distance.
#[derive(Debug, Clone)]
pub struct TrueDistribution {
    dims: usize,
    /// `(weight, means, std)` per Gaussian component (isotropic).
    components: Vec<(f64, Vec<f64>, f64)>,
    /// Optional uniform component `(weight, lo, hi)` applied per axis.
    uniform: Option<(f64, f64, f64)>,
}

impl TrueDistribution {
    /// One-dimensional Gaussian.
    pub fn gaussian_1d(mean: f64, std: f64) -> Self {
        Self {
            dims: 1,
            components: vec![(1.0, vec![mean], std)],
            uniform: None,
        }
    }

    /// A mixture over `[0, 1]^d` with equal-weight isotropic components
    /// at `means` and standard deviation `std`.
    pub fn mixture(dims: usize, means: &[f64], std: f64) -> Self {
        let w = 1.0 / means.len() as f64;
        Self {
            dims,
            components: means.iter().map(|&m| (w, vec![m; dims], std)).collect(),
            uniform: None,
        }
    }

    /// The paper's synthetic workload as an analytic model: three
    /// clusters plus the 0.5% uniform noise component on `[0.5, 1]^d`.
    pub fn paper_synthetic(dims: usize) -> Self {
        let noise = crate::synthetic::NOISE_FRACTION;
        let w = (1.0 - noise) / 3.0;
        Self {
            dims,
            components: crate::synthetic::MIXTURE_MEANS
                .iter()
                .map(|&m| (w, vec![m; dims], crate::synthetic::MIXTURE_STD))
                .collect(),
            uniform: Some((noise, 0.5, 1.0)),
        }
    }

    fn phi(z: f64) -> f64 {
        // Standard normal CDF via erf (Abramowitz–Stegun 7.1.26).
        0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
    }
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

impl DensityModel for TrueDistribution {
    fn dims(&self) -> usize {
        self.dims
    }

    fn window_len(&self) -> f64 {
        1.0
    }

    fn pdf(&self, x: &[f64]) -> Result<f64, DensityError> {
        if x.len() != self.dims {
            return Err(DensityError::DimensionMismatch {
                expected: self.dims,
                got: x.len(),
            });
        }
        let mut total = 0.0;
        for (w, means, std) in &self.components {
            let mut dens = *w;
            for (xi, mi) in x.iter().zip(means.iter()) {
                let z = (xi - mi) / std;
                dens *= (-0.5 * z * z).exp() / (std * (2.0 * std::f64::consts::PI).sqrt());
            }
            total += dens;
        }
        if let Some((w, lo, hi)) = self.uniform {
            if x.iter().all(|&c| (lo..=hi).contains(&c)) {
                total += w / (hi - lo).powi(self.dims as i32);
            }
        }
        Ok(total)
    }

    fn box_prob(&self, lo: &[f64], hi: &[f64]) -> Result<f64, DensityError> {
        if lo.len() != self.dims || hi.len() != self.dims {
            return Err(DensityError::DimensionMismatch {
                expected: self.dims,
                got: lo.len().max(hi.len()),
            });
        }
        let mut total = 0.0;
        for (w, means, std) in &self.components {
            let mut mass = *w;
            for j in 0..self.dims {
                mass *= (Self::phi((hi[j] - means[j]) / std) - Self::phi((lo[j] - means[j]) / std))
                    .max(0.0);
            }
            total += mass;
        }
        if let Some((w, ulo, uhi)) = self.uniform {
            let mut mass = w;
            for j in 0..self.dims {
                let overlap = (hi[j].min(uhi) - lo[j].max(ulo)).max(0.0);
                mass *= overlap / (uhi - ulo);
            }
            total += mass;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snod_density::js_divergence_models;
    use snod_sketch::DatasetStats;

    #[test]
    fn regimes_alternate_every_period() {
        assert_eq!(DriftingGaussianStream::regime_at(0), REGIME_A);
        assert_eq!(DriftingGaussianStream::regime_at(4_095), REGIME_A);
        assert_eq!(DriftingGaussianStream::regime_at(4_096), REGIME_B);
        assert_eq!(DriftingGaussianStream::regime_at(8_191), REGIME_B);
        assert_eq!(DriftingGaussianStream::regime_at(8_192), REGIME_A);
    }

    #[test]
    fn stream_tracks_its_regime() {
        let mut s = DriftingGaussianStream::new(9);
        let first: Vec<f64> = (0..4_096).map(|_| s.next_reading()[0]).collect();
        let second: Vec<f64> = (0..4_096).map(|_| s.next_reading()[0]).collect();
        let sa = DatasetStats::from_slice(&first).unwrap();
        let sb = DatasetStats::from_slice(&second).unwrap();
        assert!((sa.mean - 0.3).abs() < 0.01, "regime A mean {}", sa.mean);
        assert!((sb.mean - 0.5).abs() < 0.01, "regime B mean {}", sb.mean);
    }

    #[test]
    fn true_distribution_pdf_integrates_to_one() {
        let t = TrueDistribution::paper_synthetic(1);
        let steps = 20_000;
        let h = 1.0 / steps as f64;
        let mut integral = 0.0;
        for i in 0..=steps {
            let x = i as f64 * h;
            let w = if i == 0 || i == steps { 0.5 } else { 1.0 };
            integral += w * t.pdf(&[x]).unwrap();
        }
        // Tails outside [0,1] are tiny (clusters are ≥ 6σ inside).
        assert!((integral * h - 1.0).abs() < 0.01, "∫pdf = {}", integral * h);
    }

    #[test]
    fn box_prob_consistent_with_pdf() {
        let t = TrueDistribution::gaussian_1d(0.4, 0.05);
        // P within ±1σ ≈ 0.683
        let p = t.box_prob(&[0.35], &[0.45]).unwrap();
        assert!((p - 0.6827).abs() < 1e-3, "p {p}");
    }

    #[test]
    fn two_dimensional_mixture_mass() {
        let t = TrueDistribution::mixture(2, &[0.3, 0.5], 0.02);
        let all = t.box_prob(&[-1.0, -1.0], &[2.0, 2.0]).unwrap();
        assert!((all - 1.0).abs() < 1e-6);
        let around_03 = t.box_prob(&[0.2, 0.2], &[0.4, 0.4]).unwrap();
        assert!((around_03 - 0.5).abs() < 1e-3);
    }

    #[test]
    fn js_between_regimes_is_large() {
        let a = TrueDistribution::gaussian_1d(REGIME_A.0, REGIME_A.1);
        let b = TrueDistribution::gaussian_1d(REGIME_B.0, REGIME_B.1);
        let d = js_divergence_models(&a, &b, 128).unwrap();
        assert!(d > 0.5, "regime JS distance {d}");
        let self_d = js_divergence_models(&a, &a, 128).unwrap();
        assert!(self_d < 1e-9);
    }

    #[test]
    fn current_truth_follows_the_stream() {
        let mut s = DriftingGaussianStream::new(21);
        for _ in 0..DRIFT_PERIOD {
            s.next_reading();
        }
        let t = s.current_truth();
        // Now in regime B: mass concentrated near 0.5.
        let p = t.box_prob(&[0.45], &[0.55]).unwrap();
        assert!(p > 0.6, "p {p}");
    }
}
