//! The simulation engine.
//!
//! [`Network`] owns one application object per node (the paper's
//! *"continuous query on every node"*) and drives them with two kinds of
//! events: periodic sensor readings at the leaves, and message deliveries
//! between nodes. Applications react through [`SensorApp`] callbacks and
//! talk to the network through [`Ctx`], which restricts them to the
//! hierarchy links (parent/children) — exactly the communication pattern
//! of the paper's algorithms.

use crate::energy::EnergyModel;
use crate::event::{Event, EventQueue};
use crate::message::{Envelope, Wire};
use crate::node::NodeId;
use crate::stats::NetStats;
use crate::topology::Hierarchy;

/// Timing and fault parameters of a simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Interval between consecutive readings of one sensor
    /// (the paper's Figure 11 assumes one reading per second).
    pub reading_period_ns: u64,
    /// One-hop link latency.
    pub link_latency_ns: u64,
    /// Stagger leaf reading phases across the period (avoids artificial
    /// synchronisation of all sensors on the same instant).
    pub stagger_readings: bool,
    /// Probability that any sent message is lost on the air (lossy
    /// radio). Dropped messages are still charged transmit energy and
    /// counted in [`crate::NetStats::dropped`].
    pub drop_probability: f64,
    /// Seed for the loss process (losses are deterministic per seed).
    pub loss_seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            reading_period_ns: 1_000_000_000, // 1 s
            link_latency_ns: 5_000_000,       // 5 ms
            stagger_readings: true,
            drop_probability: 0.0,
            loss_seed: 0x10_55,
        }
    }
}

impl SimConfig {
    /// Returns a copy with the given message-loss probability.
    pub fn with_drop_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability in [0, 1]");
        self.drop_probability = p;
        self
    }
}

/// Supplies the per-sensor data streams. `seq` is the 0-based reading
/// index; returning `None` ends that sensor's stream early.
pub trait StreamSource {
    /// The `seq`-th reading of leaf `node`.
    fn next(&mut self, node: NodeId, seq: u64) -> Option<Vec<f64>>;
}

impl<F: FnMut(NodeId, u64) -> Option<Vec<f64>>> StreamSource for F {
    fn next(&mut self, node: NodeId, seq: u64) -> Option<Vec<f64>> {
        self(node, seq)
    }
}

/// Application callbacks, one instance per node.
pub trait SensorApp<P: Wire> {
    /// A new sensor reading arrived at this (leaf) node.
    fn on_reading(&mut self, ctx: &mut Ctx<'_, P>, value: &[f64]);
    /// A message from `from` was delivered to this node.
    fn on_message(&mut self, ctx: &mut Ctx<'_, P>, from: NodeId, payload: P);
}

/// The application's window onto the network during a callback.
pub struct Ctx<'a, P> {
    /// The node the callback runs on.
    pub node: NodeId,
    /// Current simulated time.
    pub time_ns: u64,
    topo: &'a Hierarchy,
    outbox: Vec<(NodeId, P)>,
}

impl<'a, P> Ctx<'a, P> {
    /// The hierarchy (read-only).
    pub fn topology(&self) -> &Hierarchy {
        self.topo
    }

    /// This node's leader, `None` at the root.
    pub fn parent(&self) -> Option<NodeId> {
        self.topo.parent(self.node)
    }

    /// This node's children.
    pub fn children(&self) -> &[NodeId] {
        self.topo.children(self.node)
    }

    /// This node's tier (1 = leaf).
    pub fn level(&self) -> u8 {
        self.topo.level_of(self.node)
    }

    /// Queues `payload` for delivery to `to`.
    pub fn send(&mut self, to: NodeId, payload: P) {
        self.outbox.push((to, payload));
    }

    /// Queues `payload` for the parent; returns `false` at the root.
    pub fn send_parent(&mut self, payload: P) -> bool {
        match self.parent() {
            Some(p) => {
                self.send(p, payload);
                true
            }
            None => false,
        }
    }

    /// Queues `payload` for every child (cloned per child).
    pub fn send_children(&mut self, payload: P)
    where
        P: Clone,
    {
        for &c in self.topo.children(self.node) {
            self.outbox.push((c, payload.clone()));
        }
    }
}

/// A running simulation: topology + per-node applications + event queue.
pub struct Network<P: Wire, A: SensorApp<P>> {
    topo: Hierarchy,
    apps: Vec<A>,
    cfg: SimConfig,
    energy: EnergyModel,
    queue: EventQueue<P>,
    stats: NetStats,
    clock_ns: u64,
    loss_rng: rand::rngs::StdRng,
    /// Scheduled node failures `(time_ns, node)`, unsorted.
    failures: Vec<(u64, NodeId)>,
    /// Per-node dead flags.
    dead: Vec<bool>,
}

impl<P: Wire, A: SensorApp<P>> Network<P, A> {
    /// Builds a network, constructing one application per node via
    /// `make_app`.
    pub fn new(
        topo: Hierarchy,
        cfg: SimConfig,
        mut make_app: impl FnMut(NodeId, &Hierarchy) -> A,
    ) -> Self {
        let apps: Vec<A> = (0..topo.node_count())
            .map(|i| make_app(NodeId(i as u32), &topo))
            .collect();
        let stats = NetStats::new(topo.node_count(), topo.level_count());
        let dead = vec![false; topo.node_count()];
        Self {
            topo,
            apps,
            cfg,
            energy: EnergyModel::default(),
            queue: EventQueue::new(),
            stats,
            clock_ns: 0,
            loss_rng: rand::SeedableRng::seed_from_u64(cfg.loss_seed),
            failures: Vec::new(),
            dead,
        }
    }

    /// Schedules `node` to fail (permanently stop reading, relaying and
    /// receiving) at simulated time `time_ns`. Must be called before
    /// [`Self::run`].
    pub fn schedule_failure(&mut self, node: NodeId, time_ns: u64) {
        self.failures.push((time_ns, node));
    }

    /// Whether `node` has failed.
    pub fn is_dead(&self, node: NodeId) -> bool {
        self.dead[node.index()]
    }

    /// Replaces the default energy model.
    pub fn with_energy_model(mut self, model: EnergyModel) -> Self {
        self.energy = model;
        self
    }

    /// Runs the simulation: every leaf takes `readings_per_leaf` readings
    /// from `source`, and all resulting message traffic is processed to
    /// quiescence.
    pub fn run<S: StreamSource>(&mut self, source: &mut S, readings_per_leaf: u64) {
        if readings_per_leaf == 0 {
            return;
        }
        let leaves: Vec<NodeId> = self.topo.leaves().to_vec();
        let n = leaves.len().max(1) as u64;
        for (i, &leaf) in leaves.iter().enumerate() {
            let phase = if self.cfg.stagger_readings {
                (i as u64 * self.cfg.reading_period_ns) / n
            } else {
                0
            };
            self.queue
                .schedule(phase, Event::Reading { node: leaf, seq: 0 });
        }
        while let Some((time, event)) = self.queue.pop() {
            self.clock_ns = self.clock_ns.max(time);
            // Apply any failures due by now.
            if !self.failures.is_empty() {
                let due: Vec<NodeId> = self
                    .failures
                    .iter()
                    .filter(|(t, _)| *t <= time)
                    .map(|(_, n)| *n)
                    .collect();
                if !due.is_empty() {
                    self.failures.retain(|(t, _)| *t > time);
                    for n in due {
                        self.dead[n.index()] = true;
                    }
                }
            }
            match event {
                Event::Reading { node, seq } => {
                    if self.dead[node.index()] {
                        continue; // a failed sensor stops reading for good
                    }
                    if let Some(value) = source.next(node, seq) {
                        self.dispatch(time, node, |app, ctx| app.on_reading(ctx, &value));
                        if seq + 1 < readings_per_leaf {
                            self.queue.schedule(
                                time + self.cfg.reading_period_ns,
                                Event::Reading { node, seq: seq + 1 },
                            );
                        }
                    }
                }
                Event::Deliver { from, to, payload } => {
                    if self.dead[to.index()] {
                        continue; // delivered into the void
                    }
                    self.stats.rx_joules += self
                        .energy
                        .rx_joules(payload.size_bytes() + crate::message::HEADER_BYTES);
                    self.dispatch(time, to, |app, ctx| app.on_message(ctx, from, payload));
                }
            }
        }
        self.stats.elapsed_ns = self.clock_ns;
    }

    /// Runs one callback on `node` and flushes its outbox into the queue.
    fn dispatch(&mut self, time: u64, node: NodeId, f: impl FnOnce(&mut A, &mut Ctx<'_, P>)) {
        let mut ctx = Ctx {
            node,
            time_ns: time,
            topo: &self.topo,
            outbox: Vec::new(),
        };
        f(&mut self.apps[node.index()], &mut ctx);
        let outbox = ctx.outbox;
        for (to, payload) in outbox {
            let env = Envelope {
                from: node,
                to,
                payload,
            };
            let bytes = env.wire_bytes();
            let dist = self.topo.location(node).distance(&self.topo.location(to));
            self.stats
                .record_send(node, self.topo.level_of(node), bytes);
            // Transmit energy is spent whether or not the frame survives.
            self.stats.tx_joules += self.energy.tx_joules(bytes, dist);
            if self.cfg.drop_probability > 0.0
                && rand::Rng::gen::<f64>(&mut self.loss_rng) < self.cfg.drop_probability
            {
                self.stats.dropped += 1;
                continue;
            }
            self.queue.schedule(
                time + self.cfg.link_latency_ns,
                Event::Deliver {
                    from: env.from,
                    to: env.to,
                    payload: env.payload,
                },
            );
        }
    }

    /// Traffic and energy statistics of the run so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The topology.
    pub fn topology(&self) -> &Hierarchy {
        &self.topo
    }

    /// The application instance at `node`.
    pub fn app(&self, node: NodeId) -> &A {
        &self.apps[node.index()]
    }

    /// Mutable access to the application at `node` (for post-run
    /// extraction of results).
    pub fn app_mut(&mut self, node: NodeId) -> &mut A {
        &mut self.apps[node.index()]
    }

    /// Iterates over `(node, app)` pairs.
    pub fn apps(&self) -> impl Iterator<Item = (NodeId, &A)> {
        self.apps
            .iter()
            .enumerate()
            .map(|(i, a)| (NodeId(i as u32), a))
    }

    /// Final simulated clock (ns).
    pub fn now_ns(&self) -> u64 {
        self.clock_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Leaves forward every reading to their parent; leaders count what
    /// they hear and forward a fraction upward (every other message).
    struct Relay {
        received: u64,
        forwarded: u64,
        readings: u64,
    }

    impl Relay {
        fn new() -> Self {
            Self {
                received: 0,
                forwarded: 0,
                readings: 0,
            }
        }
    }

    impl SensorApp<Vec<f64>> for Relay {
        fn on_reading(&mut self, ctx: &mut Ctx<'_, Vec<f64>>, value: &[f64]) {
            self.readings += 1;
            ctx.send_parent(value.to_vec());
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, Vec<f64>>, _from: NodeId, payload: Vec<f64>) {
            self.received += 1;
            if self.received % 2 == 0 {
                if ctx.send_parent(payload) {
                    self.forwarded += 1;
                }
            }
        }
    }

    fn run_relay(readings: u64) -> Network<Vec<f64>, Relay> {
        let topo = Hierarchy::balanced(8, &[4, 2]).unwrap();
        let mut net = Network::new(topo, SimConfig::default(), |_, _| Relay::new());
        let mut source = |node: NodeId, seq: u64| Some(vec![node.0 as f64 + seq as f64 * 0.001]);
        net.run(&mut source, readings);
        net
    }

    #[test]
    fn leaves_read_the_requested_number_of_values() {
        let net = run_relay(10);
        for &leaf in net.topology().leaves() {
            assert_eq!(net.app(leaf).readings, 10);
        }
    }

    #[test]
    fn every_leaf_message_reaches_its_parent() {
        let net = run_relay(5);
        // 8 leaves × 5 readings = 40 messages into level-2 leaders.
        let total_level2: u64 = net
            .topology()
            .level(2)
            .iter()
            .map(|&l| net.app(l).received)
            .sum();
        assert_eq!(total_level2, 40);
    }

    #[test]
    fn halving_relay_reaches_root_with_half_traffic() {
        let net = run_relay(8);
        // 64 leaf messages reach the two level-2 leaders, which forward
        // every second one: 32 arrive at the root.
        let root = net.topology().root();
        assert_eq!(net.app(root).received, 32);
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let net = run_relay(5);
        let s = net.stats();
        // 40 leaf sends + 20 level-2 forwards = 60 messages.
        assert_eq!(s.messages, 60);
        assert_eq!(s.messages_per_level[0], 40);
        assert_eq!(s.messages_per_level[1], 20);
        // Each message: 1 value (2 bytes) + 8 header = 10 bytes.
        assert_eq!(s.bytes, 600);
        assert!(s.tx_joules > 0.0 && s.rx_joules > 0.0);
        assert!(s.elapsed_ns > 0);
        assert!(s.messages_per_second() > 0.0);
    }

    #[test]
    fn deterministic_replay() {
        let a = run_relay(7);
        let b = run_relay(7);
        assert_eq!(a.stats().messages, b.stats().messages);
        assert_eq!(a.stats().bytes, b.stats().bytes);
        assert_eq!(a.now_ns(), b.now_ns());
    }

    #[test]
    fn stream_can_end_early() {
        let topo = Hierarchy::balanced(2, &[2]).unwrap();
        let mut net = Network::new(topo, SimConfig::default(), |_, _| Relay::new());
        // Streams dry up after 3 readings even though 100 were requested.
        let mut source = |_node: NodeId, seq: u64| if seq < 3 { Some(vec![0.5]) } else { None };
        net.run(&mut source, 100);
        for &leaf in net.topology().leaves() {
            assert_eq!(net.app(leaf).readings, 3);
        }
    }

    #[test]
    fn lossy_radio_drops_messages_but_charges_energy() {
        let topo = Hierarchy::balanced(4, &[4]).unwrap();
        let cfg = SimConfig::default().with_drop_probability(0.5);
        let mut net = Network::new(topo, cfg, |_, _| Relay::new());
        let mut source = |_: NodeId, _: u64| Some(vec![0.5]);
        net.run(&mut source, 200);
        let s = net.stats();
        // 800 leaf sends; roughly half are dropped.
        assert_eq!(s.messages, 800);
        assert!(
            s.dropped > 250 && s.dropped < 550,
            "dropped {} of 800",
            s.dropped
        );
        let root = net.topology().root();
        assert_eq!(net.app(root).received as u64 + s.dropped, 800);
        // Energy was charged for every transmit attempt.
        assert!(s.tx_joules > 0.0);
    }

    #[test]
    fn failed_leaf_stops_reading() {
        let topo = Hierarchy::balanced(2, &[2]).unwrap();
        let mut net = Network::new(topo, SimConfig::default(), |_, _| Relay::new());
        // Leaf 0 dies after ~50 seconds (readings are 1/s).
        net.schedule_failure(NodeId(0), 50_000_000_000);
        let mut source = |_: NodeId, _: u64| Some(vec![0.5]);
        net.run(&mut source, 200);
        assert!(net.is_dead(NodeId(0)));
        assert!(net.app(NodeId(0)).readings <= 51);
        assert_eq!(net.app(NodeId(1)).readings, 200);
    }

    #[test]
    fn failed_leader_silences_its_subtree_upward() {
        let topo = Hierarchy::balanced(4, &[2, 2]).unwrap();
        let mut net = Network::new(topo.clone(), SimConfig::default(), |_, _| Relay::new());
        // Kill one level-2 leader immediately: its two leaves keep
        // reading, but nothing from them reaches the root.
        let leader = topo.level(2)[0];
        net.schedule_failure(leader, 0);
        let mut source = |_: NodeId, _: u64| Some(vec![0.5]);
        net.run(&mut source, 100);
        let root = net.topology().root();
        // Only the surviving leader's messages arrive (it halves them).
        assert_eq!(net.app(root).received, 100);
        assert_eq!(net.app(leader).received, 0);
    }

    #[test]
    fn zero_readings_is_a_noop() {
        let topo = Hierarchy::balanced(2, &[2]).unwrap();
        let mut net = Network::new(topo, SimConfig::default(), |_, _| Relay::new());
        let mut source = |_: NodeId, _: u64| Some(vec![0.5]);
        net.run(&mut source, 0);
        assert_eq!(net.stats().messages, 0);
    }
}
