//! Observability determinism: instrumentation must never perturb the
//! simulation.
//!
//! The guarantee (DESIGN.md §9) has two halves:
//!
//! * **Compile-time.** A binary built with the `obs` feature produces
//!   bit-identical outlier streams and `NetStats` to one built without
//!   it. CI proves this by running this test file under both feature
//!   settings *and* by diffing the stdout of an obs-on vs obs-off CLI
//!   `simulate` run of the same seeded workload.
//! * **Run-time.** Within an obs-enabled build, toggling collection
//!   (`snod_obs::set_active`), snapshotting and resetting the registry
//!   around runs changes nothing about the traces. That is what the
//!   tests here assert, on the same D3 and MGDD scenarios the fault
//!   golden traces use.
//!
//! In a disabled build the obs calls are no-ops, so the assertions
//! degenerate to plain replay-determinism — the same property, with the
//! instrumentation compiled out.
//!
//! The obs registry is process-global, so every test serialises on one
//! mutex: a `set_active(false)` in one thread must not overlap another
//! test's counter-vs-NetStats accounting.

use std::sync::{Mutex, MutexGuard};

use sensor_outliers::core::{
    run_d3_with_faults, run_mgdd_with_faults, D3Config, D3Node, D3Payload, EstimatorConfig,
    MgddConfig, MgddNode, MgddPayload, UpdateStrategy,
};
use sensor_outliers::outlier::{DistanceOutlierConfig, MdefConfig};
use sensor_outliers::simnet::{FaultPlan, Hierarchy, NetStats, Network, NodeId, SimConfig};

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

const READINGS: u64 = 700;

fn topo() -> Hierarchy {
    Hierarchy::balanced(4, &[2, 2]).unwrap()
}

/// Deterministic per-leaf streams with planted deviations (the golden
/// traces' source).
fn source(node: NodeId, seq: u64) -> Option<Vec<f64>> {
    let h = node.0 as u64 * 1_000_003 + seq * 7_919;
    if seq % 173 == 42 {
        Some(vec![0.91])
    } else {
        Some(vec![0.3 + 0.2 * ((h % 1_000) as f64 / 1_000.0)])
    }
}

fn estimator() -> EstimatorConfig {
    EstimatorConfig::builder()
        .window(300)
        .sample_size(50)
        .seed(21)
        .build()
        .unwrap()
}

fn run_d3() -> Network<D3Payload, D3Node> {
    let cfg = D3Config {
        estimator: estimator(),
        rule: DistanceOutlierConfig::new(8.0, 0.02),
        sample_fraction: 0.5,
    };
    let mut src = source;
    run_d3_with_faults(
        topo(),
        &cfg,
        SimConfig::default(),
        FaultPlan::none(),
        &mut src,
        READINGS,
    )
    .unwrap()
}

fn run_mgdd() -> Network<MgddPayload, MgddNode> {
    let cfg = MgddConfig {
        estimator: estimator(),
        rule: MdefConfig::new(0.08, 0.01, 3.0).unwrap(),
        sample_fraction: 0.75,
        updates: UpdateStrategy::EveryAcceptance,
        staleness_bound_ns: Some(30_000_000_000),
    };
    let mut src = source;
    let t = topo();
    let top = t.level_count() as u8;
    run_mgdd_with_faults(
        t,
        &cfg,
        SimConfig::default(),
        FaultPlan::none(),
        &mut src,
        READINGS,
        &[top],
    )
    .unwrap()
}

/// Bit-exact digest of every node's detection stream.
type Trace = Vec<(u32, Vec<(u64, Vec<u64>, u8)>)>;

fn trace<P, A>(net: &Network<P, A>, dets: impl Fn(&A) -> Trace2) -> Trace
where
    P: sensor_outliers::simnet::Wire,
    A: sensor_outliers::simnet::DetectorEngine<P>,
{
    net.apps()
        .map(|(node, app)| (node.0, dets(app)))
        .collect()
}

type Trace2 = Vec<(u64, Vec<u64>, u8)>;

fn d3_dets(app: &D3Node) -> Trace2 {
    app.detections
        .iter()
        .map(|d| (d.time_ns, d.value.iter().map(|v| v.to_bits()).collect(), d.level))
        .collect()
}

fn mgdd_dets(app: &MgddNode) -> Trace2 {
    app.detections
        .iter()
        .map(|d| (d.time_ns, d.value.iter().map(|v| v.to_bits()).collect(), d.level))
        .collect()
}

fn assert_stats_identical(a: &NetStats, b: &NetStats) {
    assert_eq!(a, b, "network statistics diverged");
    assert_eq!(a.tx_joules.to_bits(), b.tx_joules.to_bits());
    assert_eq!(a.rx_joules.to_bits(), b.rx_joules.to_bits());
}

#[test]
fn d3_trace_is_identical_with_collection_on_and_off() {
    let _guard = serial();
    snod_obs::set_active(true);
    snod_obs::reset();
    let with_obs = run_d3();
    // Poke the registry between runs too: snapshotting and resetting
    // must be invisible to the next simulation.
    let snap = snod_obs::snapshot();
    if snod_obs::enabled() {
        assert!(!snap.is_empty(), "obs-enabled run recorded nothing");
    }
    snod_obs::reset();

    snod_obs::set_active(false);
    let without_obs = run_d3();
    snod_obs::set_active(true);

    assert_stats_identical(with_obs.stats(), without_obs.stats());
    assert_eq!(trace(&with_obs, d3_dets), trace(&without_obs, d3_dets));
}

#[test]
fn mgdd_trace_is_identical_with_collection_on_and_off() {
    let _guard = serial();
    snod_obs::set_active(true);
    snod_obs::reset();
    let with_obs = run_mgdd();
    let snap = snod_obs::snapshot();
    if snod_obs::enabled() {
        assert!(
            snap.counter("outlier.mdef.evals").unwrap_or(0) > 0,
            "MGDD run evaluated no MDEF scores through the instrumented path"
        );
    }
    snod_obs::reset();

    snod_obs::set_active(false);
    let without_obs = run_mgdd();
    snod_obs::set_active(true);

    assert_stats_identical(with_obs.stats(), without_obs.stats());
    assert_eq!(trace(&with_obs, mgdd_dets), trace(&without_obs, mgdd_dets));
}

/// The metrics must be *true*, not just harmless: radio counters agree
/// exactly with the simulator's own `NetStats` ground truth.
#[test]
fn counters_agree_with_netstats() {
    if !snod_obs::enabled() {
        return;
    }
    let _guard = serial();
    snod_obs::set_active(true);
    snod_obs::reset();
    let net = run_d3();
    let snap = snod_obs::snapshot();
    let s = net.stats();
    assert_eq!(snap.counter("simnet.sends"), Some(s.messages));
    assert_eq!(snap.counter("simnet.send_bytes"), Some(s.bytes));
    assert_eq!(snap.counter("simnet.acks").unwrap_or(0), s.acks);
    assert_eq!(snap.counter("simnet.drops").unwrap_or(0), s.dropped);
    assert_eq!(
        snap.counter("simnet.retransmissions").unwrap_or(0),
        s.retransmissions
    );
    // Per-level gauges mirror messages_per_level.
    for (i, &msgs) in s.messages_per_level.iter().enumerate() {
        let name = format!("simnet.level.{}.msgs", i + 1);
        let gauge = snap.gauges.iter().find(|(n, _)| *n == name).map(|&(_, v)| v);
        assert_eq!(gauge, Some(msgs), "gauge {name}");
    }
}
