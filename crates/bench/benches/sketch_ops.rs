//! Per-element cost of the streaming sketches — the maintenance half of
//! **Theorem 1**: the chain sampler must be O(1) expected per element
//! (independent of `|R|` once `|R| ≪ |W|`), and the variance sketch
//! O(log |W|)-ish amortised.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use snod_sketch::{ChainSampler, ExpHistogram, GkSketch, WindowedVariance};

fn bench_chain_sampler(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_sampler_push");
    for &(w, r) in &[(10_000usize, 500usize), (10_000, 2_000), (20_000, 1_000)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("W{w}_R{r}")),
            &(w, r),
            |b, _| {
                let mut s = ChainSampler::new(w, r, 7).unwrap();
                // Warm past the fill phase so steady-state cost is measured.
                for i in 0..(2 * w as u64) {
                    s.push(i);
                }
                let mut i = 2 * w as u64;
                b.iter(|| {
                    i += 1;
                    s.push(black_box(i))
                });
            },
        );
    }
    group.finish();
}

fn bench_variance(c: &mut Criterion) {
    let mut group = c.benchmark_group("windowed_variance_push");
    for &eps in &[0.1f64, 0.2] {
        group.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, _| {
            let mut wv = WindowedVariance::new(10_000, eps).unwrap();
            let mut x = 0.0f64;
            for _ in 0..20_000 {
                x = (x * 997.0 + 0.123).fract();
                wv.push(x);
            }
            b.iter(|| {
                x = (x * 997.0 + 0.123).fract();
                wv.push(black_box(x));
            });
        });
    }
    group.finish();
}

fn bench_exp_histogram(c: &mut Criterion) {
    c.bench_function("exp_histogram_push", |b| {
        let mut eh = ExpHistogram::new(10_000, 0.1).unwrap();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            eh.push(black_box(i.is_multiple_of(3)));
        });
    });
}

fn bench_gk(c: &mut Criterion) {
    c.bench_function("gk_insert", |b| {
        let mut gk = GkSketch::new(0.01).unwrap();
        let mut x = 0.0f64;
        b.iter(|| {
            x = (x * 997.0 + 0.123).fract();
            gk.insert(black_box(x));
        });
    });
}

fn bench_windowed_quantile(c: &mut Criterion) {
    c.bench_function("windowed_quantile_push", |b| {
        let mut wq = snod_sketch::WindowedQuantile::new(10_000, 10, 0.02).unwrap();
        let mut x = 0.0f64;
        b.iter(|| {
            x = (x * 997.0 + 0.123).fract();
            wq.push(black_box(x));
        });
    });
    c.bench_function("windowed_quantile_median", |b| {
        let mut wq = snod_sketch::WindowedQuantile::new(10_000, 10, 0.02).unwrap();
        for i in 0..20_000u64 {
            wq.push(((i * 48_271) % 10_007) as f64);
        }
        b.iter(|| wq.median().unwrap());
    });
}


/// Short measurement windows: these benches check complexity *shape*
/// (linear vs flat), not absolute timings.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_chain_sampler,
    bench_variance,
    bench_exp_histogram,
    bench_gk,
    bench_windowed_quantile
}
criterion_main!(benches);
