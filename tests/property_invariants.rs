//! Property-based invariants across the workspace (proptest).

use proptest::prelude::*;

use sensor_outliers::density::{
    js_divergence, js_divergence_models, DensityModel, EquiDepthHistogram, Kde1d,
};
use sensor_outliers::outlier::brute_force::{distance_outliers, linf_distance};
use sensor_outliers::outlier::DistanceOutlierConfig;
use sensor_outliers::sketch::{ChainSampler, GkSketch, SlidingWindow, WindowedVariance};

fn unit_values(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1.0, 2..n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The chain sample only ever contains values currently in the window.
    #[test]
    fn chain_sample_respects_window(values in unit_values(400), window in 4usize..64) {
        let mut s = ChainSampler::new(window, 8, 42).unwrap();
        let mut recent: std::collections::VecDeque<u64> = Default::default();
        for &v in &values {
            s.push(v.to_bits());
            recent.push_back(v.to_bits());
            if recent.len() > window {
                recent.pop_front();
            }
            for sampled in s.sample() {
                prop_assert!(recent.contains(&sampled));
            }
        }
    }

    /// The windowed variance tracks the exact window variance within a
    /// generous multiple of ε on arbitrary data.
    #[test]
    fn windowed_variance_tracks_truth(values in unit_values(600)) {
        let window = 128usize;
        let mut wv = WindowedVariance::new(window, 0.2).unwrap();
        let mut exact = SlidingWindow::new(window).unwrap();
        for &v in &values {
            wv.push(v);
            exact.push(v);
        }
        let xs: Vec<f64> = exact.iter().copied().collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let truth = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let est = wv.variance();
        prop_assert!(
            (est - truth).abs() <= 0.5 * truth + 1e-6,
            "est {est} truth {truth}"
        );
    }

    /// GK quantiles respect the rank-error guarantee.
    #[test]
    fn gk_quantiles_have_bounded_rank_error(values in unit_values(500)) {
        let eps = 0.05;
        let mut gk = GkSketch::new(eps).unwrap();
        for &v in &values {
            gk.insert(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for phi in [0.25f64, 0.5, 0.75] {
            let q = gk.quantile(phi).unwrap();
            let rank = sorted.iter().filter(|&&x| x <= q).count() as f64;
            let target = phi * sorted.len() as f64;
            prop_assert!(
                (rank - target).abs() <= 2.0 * eps * sorted.len() as f64 + 1.0,
                "phi {phi}: rank {rank}, target {target}"
            );
        }
    }

    /// KDE box probabilities are monotone in the box and live in [0, 1];
    /// the pdf is non-negative.
    #[test]
    fn kde_probability_axioms(sample in unit_values(200), a in 0.0f64..1.0, w in 0.0f64..0.5) {
        let kde = Kde1d::from_sample(&sample, 0.1, 1_000.0).unwrap();
        let small = kde.box_prob(&[a], &[a + w]).unwrap();
        let large = kde.box_prob(&[a - 0.1], &[a + w + 0.1]).unwrap();
        prop_assert!((0.0..=1.0).contains(&small));
        prop_assert!((0.0..=1.0).contains(&large));
        prop_assert!(large >= small - 1e-12);
        prop_assert!(kde.pdf(&[a]).unwrap() >= 0.0);
    }

    /// JS-divergence: symmetric, bounded, zero on identical inputs.
    #[test]
    fn js_divergence_axioms(p in unit_values(64), q in unit_values(64)) {
        let n = p.len().min(q.len());
        let (p, q) = (&p[..n], &q[..n]);
        let d = js_divergence(p, q);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&d), "JS {d}");
        prop_assert!((d - js_divergence(q, p)).abs() < 1e-12);
        prop_assert!(js_divergence(p, p) < 1e-12);
    }

    /// KDE and equi-depth histogram built on the same data are close in
    /// JS-divergence (both approximate the same distribution).
    #[test]
    fn kde_and_histogram_approximate_same_distribution(sample in unit_values(300)) {
        prop_assume!(sample.len() >= 50);
        let kde = Kde1d::from_sample(&sample, 0.15, 1_000.0).unwrap();
        let hist = EquiDepthHistogram::from_window(&sample, 25).unwrap();
        let d = js_divergence_models(&kde, &hist, 32).unwrap();
        prop_assert!(d < 0.35, "same-data models diverge by {d}");
    }

    /// Brute-force distance outliers: a point far (in L∞) from every
    /// other point is always flagged when t ≥ 1, and flags are invariant
    /// under permutation of the dataset.
    #[test]
    fn brute_force_flags_are_permutation_invariant(mut points in unit_values(60)) {
        prop_assume!(points.len() >= 4);
        let pts: Vec<Vec<f64>> = points.iter().map(|&x| vec![x]).collect();
        let rule = DistanceOutlierConfig::new(2.0, 0.05);
        let flags = distance_outliers(&pts, &rule);
        points.reverse();
        let rev: Vec<Vec<f64>> = points.iter().map(|&x| vec![x]).collect();
        let rev_flags = distance_outliers(&rev, &rule);
        for (i, p) in pts.iter().enumerate() {
            let j = rev.iter().position(|q| q == p).unwrap();
            prop_assert_eq!(flags[i], rev_flags[j]);
        }
    }

    /// The L∞ metric is a metric.
    #[test]
    fn linf_is_a_metric(a in unit_values(4), b in unit_values(4), c in unit_values(4)) {
        let n = a.len().min(b.len()).min(c.len());
        let (a, b, c) = (&a[..n], &b[..n], &c[..n]);
        prop_assert_eq!(linf_distance(a, a), 0.0);
        prop_assert!((linf_distance(a, b) - linf_distance(b, a)).abs() < 1e-15);
        prop_assert!(linf_distance(a, c) <= linf_distance(a, b) + linf_distance(b, c) + 1e-15);
    }

    /// Wavelet synopses are valid distributions regardless of input and
    /// budget, and tightening the budget never breaks the axioms.
    #[test]
    fn wavelet_probability_axioms(sample in unit_values(300), budget in 1usize..64) {
        use sensor_outliers::density::WaveletHistogram;
        let w = WaveletHistogram::from_window(&sample, 7, budget).unwrap();
        let total = w.box_prob(&[0.0], &[1.0]).unwrap();
        prop_assert!((total - 1.0).abs() < 1e-9, "total {total}");
        let half = w.box_prob(&[0.0], &[0.5]).unwrap();
        let quarter = w.box_prob(&[0.0], &[0.25]).unwrap();
        prop_assert!(quarter <= half + 1e-12);
        prop_assert!(w.pdf(&[0.3]).unwrap() >= 0.0);
    }

    /// The aLOCI forest's insert/remove are exact inverses, and its
    /// verdicts are deterministic.
    #[test]
    fn aloci_tree_state_roundtrip(points in unit_values(120), probe in 0.0f64..1.0) {
        use sensor_outliers::outlier::{AlociTree, AlociTreeConfig};
        let mut t = AlociTree::new(1, AlociTreeConfig::default()).unwrap();
        for &x in &points {
            t.insert(&[x]);
        }
        let verdict = t.is_outlier(&[probe], false);
        prop_assert_eq!(t.is_outlier(&[probe], false), verdict, "non-deterministic");
        let cells = t.cell_count();
        for &x in &points {
            t.remove(&[x]);
        }
        prop_assert_eq!(t.cell_count(), 0, "cells left after full removal");
        for &x in &points {
            t.insert(&[x]);
        }
        prop_assert_eq!(t.cell_count(), cells);
        prop_assert_eq!(t.is_outlier(&[probe], false), verdict);
    }

    /// Time-sliced range counts over all retained epochs account for
    /// every retained reading (±KDE boundary spill).
    #[test]
    fn timeslice_counts_conserve_mass(values in unit_values(400)) {
        use sensor_outliers::core::{EstimatorConfig, TimeSlicedEstimator};
        prop_assume!(values.len() >= 100);
        let cfg = EstimatorConfig::builder()
            .window(100)
            .sample_size(40)
            .seed(6)
            .build()
            .unwrap();
        let mut ts = TimeSlicedEstimator::new(cfg, 100, 8).unwrap();
        for &x in &values {
            ts.observe(&[x]).unwrap();
        }
        let (from, to) = ts.retained_epochs().unwrap();
        let counted = ts.range_count(&[-1.0], &[2.0], from, to).unwrap();
        let retained = values.len().min(8 * 100 + values.len() % 100);
        prop_assert!(
            (counted - retained as f64).abs() < 1.0,
            "counted {counted}, retained {retained}"
        );
    }
}
