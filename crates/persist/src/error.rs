//! The typed failure surface of checkpoint decoding.

/// Why a checkpoint could not be written or read back.
///
/// Every way a checkpoint file can be malformed — truncation, bit
/// flips, a future format version, an impossible field value — maps to
/// a variant here; decoding never panics on bad bytes. The corruption
/// test suite drives systematically mutated golden files through the
/// decoder and asserts exactly that.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The underlying filesystem operation failed.
    Io(String),
    /// The file does not start with the checkpoint magic bytes.
    BadMagic,
    /// The file's format version is not one this build can read.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build writes and reads.
        supported: u32,
    },
    /// The payload checksum does not match the header.
    BadChecksum {
        /// Checksum recorded in the header.
        expected: u32,
        /// Checksum of the payload actually present.
        found: u32,
    },
    /// The data ended before a read completed (truncated file or a
    /// length field pointing past the end).
    Truncated {
        /// Bytes the read needed.
        needed: usize,
        /// Bytes remaining.
        available: usize,
    },
    /// A field decoded to a value that cannot occur in a real snapshot.
    Corrupt(&'static str),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "checkpoint i/o failed: {e}"),
            PersistError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            PersistError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported checkpoint format version {found} (this build reads {supported})"
            ),
            PersistError::BadChecksum { expected, found } => write!(
                f,
                "checkpoint payload corrupt: checksum {found:#010x}, header says {expected:#010x}"
            ),
            PersistError::Truncated { needed, available } => write!(
                f,
                "checkpoint truncated: needed {needed} more byte(s), {available} available"
            ),
            PersistError::Corrupt(what) => write!(f, "checkpoint field corrupt: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e.to_string())
    }
}
