//! Property tests: epoch-maintained models agree with from-scratch
//! rebuilds.
//!
//! Two guarantees are checked bit-for-bit:
//!
//! * An [`IncrementalReplica`]'s kernel *centres* mirror its FIFO after
//!   every push, rebuild or not; and at every epoch boundary (full
//!   rebuild) the whole model — bandwidth included — equals one built
//!   from scratch over the same data and σ.
//! * A [`snod_core::SensorEstimator`] under `RebuildPolicy::always()`
//!   serves a cached model identical to an uncached build on every
//!   reading.

use proptest::prelude::*;

use snod_core::{EstimatorConfig, IncrementalReplica, RebuildPolicy, SensorModel};
use snod_density::{DensityModel, Kde1d};

fn unit_values(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1.0, 24..n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary pushes with drifting σ: centres track the FIFO at all
    /// times, and each epoch boundary yields exactly the from-scratch
    /// model.
    #[test]
    fn replica_epoch_boundaries_match_scratch_rebuild(
        values in unit_values(160),
        cap in 8usize..40,
        rebuild_every in 2u64..12,
        sigma_step in 0.0f64..0.05,
    ) {
        let policy = RebuildPolicy { rebuild_every, sigma_tolerance: 0.25 };
        let mut replica = IncrementalReplica::new(cap, policy);
        let mut last_epochs = 0;
        for (i, &v) in values.iter().enumerate() {
            let sigma = 0.1 + sigma_step * ((i / 8) % 5) as f64;
            replica.push(vec![v], vec![sigma], 64.0);
            if replica.sample_len() < 4 {
                continue;
            }
            let (centers, bandwidth) = match replica.model().unwrap() {
                SensorModel::One(m) => (m.centers().to_vec(), m.bandwidth()),
                SensorModel::Multi(_) => unreachable!("1-d replica"),
            };
            // Invariant 1: centres mirror the FIFO, rebuild or not.
            let mut want: Vec<f64> = replica.values().map(|p| p[0]).collect();
            want.sort_by(f64::total_cmp);
            prop_assert_eq!(&centers, &want, "centres diverged at push {}", i);
            if replica.epochs() > last_epochs {
                last_epochs = replica.epochs();
                // Invariant 2: a fresh epoch equals from-scratch —
                // bandwidth derived from the *current* σ and |R|.
                let scratch = Kde1d::from_sample(&want, sigma, 64.0).unwrap();
                prop_assert!(bandwidth.to_bits() == scratch.bandwidth().to_bits());
                for q in [0.15, 0.5, 0.85] {
                    let a = replica.model().unwrap().neighborhood_count(&[q], 0.1).unwrap();
                    let b = scratch.neighborhood_count(&[q], 0.1).unwrap();
                    prop_assert!(a.to_bits() == b.to_bits(), "{} != {} at q {}", a, b, q);
                }
            }
            prop_assert!(replica.pushes_since_rebuild() <= rebuild_every);
        }
    }

    /// `RebuildPolicy::always()` degenerates the epoch cache to the
    /// rebuild-on-every-push behaviour: cached and uncached models agree
    /// on every reading, bit for bit.
    #[test]
    fn estimator_always_policy_equals_uncached(values in unit_values(220)) {
        let cfg = EstimatorConfig::builder()
            .window(100)
            .sample_size(32)
            .seed(9)
            .rebuild_policy(RebuildPolicy::always())
            .build()
            .unwrap();
        let mut est = snod_core::SensorEstimator::new(cfg);
        for &v in &values {
            est.observe(&[v]).unwrap();
            let fresh = est.model().unwrap().neighborhood_count(&[0.5], 0.1).unwrap();
            let cached = est.cached_model().unwrap().neighborhood_count(&[0.5], 0.1).unwrap();
            prop_assert!(cached.to_bits() == fresh.to_bits(), "{} != {}", cached, fresh);
            prop_assert_eq!(est.model_staleness(), 0);
        }
    }

    /// Under any policy the served model's staleness never exceeds the
    /// push budget.
    #[test]
    fn estimator_staleness_is_bounded(
        values in unit_values(200),
        rebuild_every in 1u64..16,
    ) {
        let cfg = EstimatorConfig::builder()
            .window(100)
            .sample_size(32)
            .seed(5)
            .rebuild_policy(RebuildPolicy { rebuild_every, sigma_tolerance: 1e9 })
            .build()
            .unwrap();
        let mut est = snod_core::SensorEstimator::new(cfg);
        for &v in &values {
            est.observe(&[v]).unwrap();
            est.cached_model().unwrap();
            prop_assert!(est.model_staleness() < rebuild_every);
        }
    }
}
