//! The binary codec: little-endian, length-prefixed, bounds-checked.

use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::Hash;

use crate::error::PersistError;

/// Serializes a value into an append-only byte buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (portable across word sizes).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` as its IEEE-754 bit pattern — exact, including
    /// NaN payloads and signed zeros, so restored floats are
    /// bit-identical.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends raw bytes (no length prefix).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Deserializes values from a byte slice; every read is bounds-checked
/// and returns [`PersistError::Truncated`] instead of panicking.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Reader over `buf`, starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every byte was consumed — trailing garbage is
    /// corruption, not padding.
    pub fn finish(self) -> Result<(), PersistError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(PersistError::Corrupt("trailing bytes after payload"))
        }
    }

    /// Takes the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, PersistError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, PersistError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `usize` (encoded as `u64`), rejecting values that do not
    /// fit this platform's word.
    pub fn get_usize(&mut self) -> Result<usize, PersistError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| PersistError::Corrupt("usize out of range"))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a collection length and sanity-checks it against the bytes
    /// left: every element of every persisted collection occupies at
    /// least one byte, so a length exceeding `remaining()` is corrupt —
    /// rejecting it here keeps a flipped length byte from provoking an
    /// absurd allocation or a long decode loop.
    pub fn get_len(&mut self) -> Result<usize, PersistError> {
        let n = self.get_usize()?;
        if n > self.remaining() {
            return Err(PersistError::Corrupt("collection length exceeds payload"));
        }
        Ok(n)
    }
}

/// A type that can snapshot itself into bytes and be rebuilt exactly —
/// the workspace's stand-in for `Serialize + DeserializeOwned`.
///
/// The contract backing the bit-identical-resume guarantee: for any
/// value `v`, `load(save(v)) == v` in the strongest sense available —
/// observable behaviour after restore matches the original under every
/// future operation, including RNG draws and float accumulation order.
pub trait Persist: Sized {
    /// Appends this value's encoding to `w`.
    fn save(&self, w: &mut ByteWriter);
    /// Decodes one value, consuming exactly the bytes `save` produced.
    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError>;

    /// Convenience: the value encoded into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.save(&mut w);
        w.into_bytes()
    }

    /// Convenience: decodes a value that must span the whole slice.
    fn from_bytes(bytes: &[u8]) -> Result<Self, PersistError> {
        let mut r = ByteReader::new(bytes);
        let v = Self::load(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

macro_rules! impl_persist_int {
    ($($t:ty => $put:ident / $get:ident),* $(,)?) => {$(
        impl Persist for $t {
            fn save(&self, w: &mut ByteWriter) {
                w.$put(*self);
            }
            fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
                r.$get()
            }
        }
    )*};
}

impl_persist_int!(
    u8 => put_u8 / get_u8,
    u32 => put_u32 / get_u32,
    u64 => put_u64 / get_u64,
    usize => put_usize / get_usize,
    f64 => put_f64 / get_f64,
);

impl Persist for u16 {
    fn save(&self, w: &mut ByteWriter) {
        w.put_u32(u32::from(*self));
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        u16::try_from(r.get_u32()?).map_err(|_| PersistError::Corrupt("u16 out of range"))
    }
}

impl Persist for i64 {
    fn save(&self, w: &mut ByteWriter) {
        w.put_u64(*self as u64);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(r.get_u64()? as i64)
    }
}

impl Persist for bool {
    fn save(&self, w: &mut ByteWriter) {
        w.put_u8(u8::from(*self));
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        match r.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(PersistError::Corrupt("boolean must be 0 or 1")),
        }
    }
}

impl Persist for String {
    fn save(&self, w: &mut ByteWriter) {
        w.put_usize(self.len());
        w.put_bytes(self.as_bytes());
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let n = r.get_len()?;
        let bytes = r.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| PersistError::Corrupt("invalid utf-8"))
    }
}

impl<T: Persist> Persist for Option<T> {
    fn save(&self, w: &mut ByteWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.save(w);
            }
        }
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::load(r)?)),
            _ => Err(PersistError::Corrupt("option tag must be 0 or 1")),
        }
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn save(&self, w: &mut ByteWriter) {
        w.put_usize(self.len());
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let n = r.get_len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::load(r)?);
        }
        Ok(out)
    }
}

impl<T: Persist> Persist for VecDeque<T> {
    fn save(&self, w: &mut ByteWriter) {
        w.put_usize(self.len());
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let n = r.get_len()?;
        let mut out = VecDeque::with_capacity(n);
        for _ in 0..n {
            out.push_back(T::load(r)?);
        }
        Ok(out)
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn save(&self, w: &mut ByteWriter) {
        self.0.save(w);
        self.1.save(w);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok((A::load(r)?, B::load(r)?))
    }
}

impl<A: Persist, B: Persist, C: Persist> Persist for (A, B, C) {
    fn save(&self, w: &mut ByteWriter) {
        self.0.save(w);
        self.1.save(w);
        self.2.save(w);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok((A::load(r)?, B::load(r)?, C::load(r)?))
    }
}

impl<A: Persist, B: Persist, C: Persist, D: Persist> Persist for (A, B, C, D) {
    fn save(&self, w: &mut ByteWriter) {
        self.0.save(w);
        self.1.save(w);
        self.2.save(w);
        self.3.save(w);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok((A::load(r)?, B::load(r)?, C::load(r)?, D::load(r)?))
    }
}

/// Hash maps are written in sorted key order so the encoding of a
/// given state is unique — golden-file tests depend on it.
impl<K: Persist + Ord + Hash + Eq, V: Persist> Persist for HashMap<K, V> {
    fn save(&self, w: &mut ByteWriter) {
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        w.put_usize(entries.len());
        for (k, v) in entries {
            k.save(w);
            v.save(w);
        }
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let n = r.get_len()?;
        let mut out = HashMap::with_capacity(n);
        for _ in 0..n {
            let k = K::load(r)?;
            let v = V::load(r)?;
            if out.insert(k, v).is_some() {
                return Err(PersistError::Corrupt("duplicate map key"));
            }
        }
        Ok(out)
    }
}

/// Hash sets are written in sorted order, like maps.
impl<T: Persist + Ord + Hash + Eq> Persist for HashSet<T> {
    fn save(&self, w: &mut ByteWriter) {
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        w.put_usize(items.len());
        for v in items {
            v.save(w);
        }
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let n = r.get_len()?;
        let mut out = HashSet::with_capacity(n);
        for _ in 0..n {
            if !out.insert(T::load(r)?) {
                return Err(PersistError::Corrupt("duplicate set element"));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Persist + PartialEq + std::fmt::Debug>(v: T) {
        assert_eq!(T::from_bytes(&v.to_bytes()).unwrap(), v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(usize::MAX);
        roundtrip(-17i64);
        roundtrip(true);
        roundtrip(std::f64::consts::PI);
        roundtrip(String::from("snod"));
    }

    #[test]
    fn float_bit_patterns_survive() {
        for v in [f64::NAN, -0.0, f64::INFINITY, f64::MIN_POSITIVE] {
            let back = f64::from_bytes(&v.to_bytes()).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn collections_roundtrip() {
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<f64>::new());
        roundtrip(VecDeque::from([1.5f64, -2.5]));
        roundtrip(Some(7u32));
        roundtrip(Option::<u32>::None);
        roundtrip((1u64, 2.5f64, true));
        roundtrip(HashMap::from([(3u64, 1.0f64), (1, 2.0)]));
        roundtrip(HashSet::from([9u64, 4, 7]));
    }

    #[test]
    fn map_encoding_is_key_sorted() {
        let a = HashMap::from([(1u64, 10u64), (2, 20), (3, 30)]);
        let mut entries: Vec<(u64, u64)> = a.clone().into_iter().collect();
        entries.reverse();
        let b: HashMap<u64, u64> = entries.into_iter().collect();
        assert_eq!(a.to_bytes(), b.to_bytes());
    }

    #[test]
    fn truncation_is_typed() {
        let bytes = 42u64.to_bytes();
        let err = u64::from_bytes(&bytes[..5]).unwrap_err();
        assert!(matches!(err, PersistError::Truncated { .. }));
    }

    #[test]
    fn bad_tags_are_typed() {
        assert_eq!(
            bool::from_bytes(&[2]).unwrap_err(),
            PersistError::Corrupt("boolean must be 0 or 1")
        );
        assert_eq!(
            Option::<u8>::from_bytes(&[7]).unwrap_err(),
            PersistError::Corrupt("option tag must be 0 or 1")
        );
    }

    #[test]
    fn oversized_length_is_rejected_without_allocation() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // claimed length
        let err = Vec::<u64>::from_bytes(&w.into_bytes()).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt(_)));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = 1u64.to_bytes();
        bytes.push(0);
        assert_eq!(
            u64::from_bytes(&bytes).unwrap_err(),
            PersistError::Corrupt("trailing bytes after payload")
        );
    }
}
