//! A first-order radio energy model.
//!
//! Energy is the paper's underlying motivation (*"substantial energy
//! savings for the network"*) even though its evaluation reports message
//! counts. We account both: the statistics track messages and bytes, and
//! this model converts bytes into joules with the standard first-order
//! model used across the sensor-network literature (Heinzelman et al.):
//! a fixed per-bit electronics cost for transmit and receive, plus an
//! amplifier cost growing with distance squared for the transmitter.

/// Per-bit radio costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Electronics energy per bit, transmit or receive (J/bit).
    pub elec_j_per_bit: f64,
    /// Amplifier energy per bit per m² (J/bit/m²).
    pub amp_j_per_bit_m2: f64,
    /// Physical side length of the unit square the topology lives on (m).
    pub field_side_m: f64,
}

impl Default for EnergyModel {
    /// The classic 50 nJ/bit electronics, 100 pJ/bit/m² amplifier
    /// parameters on a 100 m field.
    fn default() -> Self {
        Self {
            elec_j_per_bit: 50e-9,
            amp_j_per_bit_m2: 100e-12,
            field_side_m: 100.0,
        }
    }
}

impl EnergyModel {
    /// Energy the sender spends to push `bytes` over `distance_unit`
    /// (distance in topology units, i.e. fraction of the field side).
    pub fn tx_joules(&self, bytes: usize, distance_unit: f64) -> f64 {
        let bits = bytes as f64 * 8.0;
        let d_m = distance_unit * self.field_side_m;
        bits * (self.elec_j_per_bit + self.amp_j_per_bit_m2 * d_m * d_m)
    }

    /// Energy the receiver spends on `bytes`.
    pub fn rx_joules(&self, bytes: usize) -> f64 {
        bytes as f64 * 8.0 * self.elec_j_per_bit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_grows_with_distance_squared() {
        let m = EnergyModel::default();
        let near = m.tx_joules(100, 0.1);
        let far = m.tx_joules(100, 0.2);
        let amp_near = near - m.rx_joules(100);
        let amp_far = far - m.rx_joules(100);
        assert!((amp_far / amp_near - 4.0).abs() < 1e-9);
    }

    #[test]
    fn rx_is_linear_in_bytes() {
        let m = EnergyModel::default();
        assert!((m.rx_joules(200) / m.rx_joules(100) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_bytes_cost_nothing() {
        let m = EnergyModel::default();
        assert_eq!(m.tx_joules(0, 0.5), 0.0);
        assert_eq!(m.rx_joules(0), 0.0);
    }
}
