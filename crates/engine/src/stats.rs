//! Network statistics — the quantities behind Figure 11 and §10.3.

use snod_persist::{ByteReader, ByteWriter, Persist, PersistError};

use crate::node::NodeId;

/// Aggregated traffic and energy accounting for one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetStats {
    /// Total messages sent.
    pub messages: u64,
    /// Total bytes on the air (payload + headers).
    pub bytes: u64,
    /// Messages sent by nodes at each tier (index 0 = leaf tier).
    pub messages_per_level: Vec<u64>,
    /// Bytes sent per node.
    pub bytes_per_node: Vec<u64>,
    /// Messages sent per node.
    pub messages_per_node: Vec<u64>,
    /// Messages lost on the air (lossy-radio simulation, including loss
    /// bursts from a fault plan; retransmissions and acks can be
    /// dropped too).
    pub dropped: u64,
    /// Frames that arrived at a crashed (or failed) node and
    /// evaporated.
    pub lost_to_crash: u64,
    /// Extra deliveries created by link-fault duplication (best-effort
    /// and reliable frames and acks alike). Radio artifacts: charged
    /// receive energy, but no extra transmit cost.
    pub duplicates: u64,
    /// Duplicate reliable deliveries the receiver suppressed by message
    /// id (the application never saw them; the engine still re-acked).
    pub duplicates_suppressed: u64,
    /// Retransmissions aired by the ack/retry protocol (also counted in
    /// [`NetStats::messages`] — they are real frames).
    pub retransmissions: u64,
    /// Acknowledgement frames sent (protocol overhead, accounted
    /// separately from application messages).
    pub acks: u64,
    /// Bytes spent on acknowledgement frames.
    pub ack_bytes: u64,
    /// Reliable messages abandoned after exhausting every retry.
    pub retry_exhausted: u64,
    /// Times a node scored against a stale last-known model instead of
    /// a fresh one (graceful degradation, see
    /// [`crate::EngineCtx::note_degraded_score`]).
    pub degraded_scores: u64,
    /// Times a node fell back to local-only detection because its
    /// upstream went silent (see
    /// [`crate::EngineCtx::note_local_fallback`]).
    pub local_fallbacks: u64,
    /// Recovering nodes revived from their last periodic checkpoint
    /// (see [`crate::fault::RestartPolicy::Warm`]).
    pub warm_restarts: u64,
    /// Recovering nodes revived from their pristine (start-of-run)
    /// state (see [`crate::fault::RestartPolicy::Cold`]).
    pub cold_restarts: u64,
    /// Total transmit energy across the network (J).
    pub tx_joules: f64,
    /// Total receive energy across the network (J).
    pub rx_joules: f64,
    /// Simulated time covered by the run (ns).
    pub elapsed_ns: u64,
}

impl NetStats {
    /// Accounting sized for `node_count` nodes and `levels` tiers.
    pub fn new(node_count: usize, levels: usize) -> Self {
        Self {
            messages_per_level: vec![0; levels],
            bytes_per_node: vec![0; node_count],
            messages_per_node: vec![0; node_count],
            ..Self::default()
        }
    }

    /// Records one sent message.
    pub fn record_send(&mut self, from: NodeId, level: u8, bytes: usize) {
        self.messages += 1;
        self.bytes += bytes as u64;
        if let Some(slot) = self.messages_per_level.get_mut((level - 1) as usize) {
            *slot += 1;
        }
        self.bytes_per_node[from.index()] += bytes as u64;
        self.messages_per_node[from.index()] += 1;
    }

    /// Messages per simulated second; 0 when no time elapsed.
    pub fn messages_per_second(&self) -> f64 {
        if self.elapsed_ns == 0 {
            0.0
        } else {
            self.messages as f64 * 1e9 / self.elapsed_ns as f64
        }
    }

    /// Bytes per simulated second.
    pub fn bytes_per_second(&self) -> f64 {
        if self.elapsed_ns == 0 {
            0.0
        } else {
            self.bytes as f64 * 1e9 / self.elapsed_ns as f64
        }
    }

    /// Total radio energy (J).
    pub fn total_joules(&self) -> f64 {
        self.tx_joules + self.rx_joules
    }
}

impl Persist for NetStats {
    fn save(&self, w: &mut ByteWriter) {
        self.messages.save(w);
        self.bytes.save(w);
        self.messages_per_level.save(w);
        self.bytes_per_node.save(w);
        self.messages_per_node.save(w);
        self.dropped.save(w);
        self.lost_to_crash.save(w);
        self.duplicates.save(w);
        self.duplicates_suppressed.save(w);
        self.retransmissions.save(w);
        self.acks.save(w);
        self.ack_bytes.save(w);
        self.retry_exhausted.save(w);
        self.degraded_scores.save(w);
        self.local_fallbacks.save(w);
        self.warm_restarts.save(w);
        self.cold_restarts.save(w);
        self.tx_joules.save(w);
        self.rx_joules.save(w);
        self.elapsed_ns.save(w);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            messages: u64::load(r)?,
            bytes: u64::load(r)?,
            messages_per_level: Vec::load(r)?,
            bytes_per_node: Vec::load(r)?,
            messages_per_node: Vec::load(r)?,
            dropped: u64::load(r)?,
            lost_to_crash: u64::load(r)?,
            duplicates: u64::load(r)?,
            duplicates_suppressed: u64::load(r)?,
            retransmissions: u64::load(r)?,
            acks: u64::load(r)?,
            ack_bytes: u64::load(r)?,
            retry_exhausted: u64::load(r)?,
            degraded_scores: u64::load(r)?,
            local_fallbacks: u64::load(r)?,
            warm_restarts: u64::load(r)?,
            cold_restarts: u64::load(r)?,
            tx_joules: f64::load(r)?,
            rx_joules: f64::load(r)?,
            elapsed_ns: u64::load(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_send_accumulates() {
        let mut s = NetStats::new(4, 2);
        s.record_send(NodeId(1), 1, 10);
        s.record_send(NodeId(1), 1, 20);
        s.record_send(NodeId(3), 2, 5);
        assert_eq!(s.messages, 3);
        assert_eq!(s.bytes, 35);
        assert_eq!(s.messages_per_level, vec![2, 1]);
        assert_eq!(s.bytes_per_node[1], 30);
        assert_eq!(s.messages_per_node[3], 1);
    }

    #[test]
    fn rates_handle_zero_elapsed() {
        let s = NetStats::new(1, 1);
        assert_eq!(s.messages_per_second(), 0.0);
        assert_eq!(s.bytes_per_second(), 0.0);
    }

    #[test]
    fn rates_scale_with_time() {
        let mut s = NetStats::new(1, 1);
        s.record_send(NodeId(0), 1, 100);
        s.elapsed_ns = 2_000_000_000; // 2 s
        assert!((s.messages_per_second() - 0.5).abs() < 1e-12);
        assert!((s.bytes_per_second() - 50.0).abs() < 1e-12);
    }
}
