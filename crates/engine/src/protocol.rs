//! The shared driver core: pre/post phase of event processing.
//!
//! Both drivers — the deterministic simulator (`snod-simnet`'s
//! `Network`) and the [`crate::LiveRuntime`] — process events in two
//! phases run by this module's [`Engine`]:
//!
//! * the **pre phase** ([`Engine::classify`]) decides what (if any)
//!   callback to run and what engine work follows; only receive-energy
//!   accumulation, integer counters, stream fetches and dedup-table
//!   updates happen here — never queue scheduling or RNG draws;
//! * the **post phase** ([`Engine::finish`]) replays every side effect
//!   that schedules, draws randomness or touches the pending table, in
//!   exact event order.
//!
//! Because the two drivers run this identical code in the identical
//! per-event order, they cannot drift apart: statistics, RNG draw
//! order, floating-point accumulation order and queue sequence numbers
//! are bit-for-bit the same. That sharing is the sim-vs-live
//! equivalence argument, and the differential conformance suite in
//! `snod-bench` pins it.
//!
//! ## Per-node RNG streams and the bit-exactness argument
//!
//! Every stochastic engine process draws from its own *per-node* seeded
//! stream, decorrelated by a splitmix64 finalizer over
//! `(base seed, node)`:
//!
//! * **loss draws** — base [`SimConfig::loss_seed`];
//! * **fault draws** (delay jitter, duplication) — base
//!   [`FaultPlan::seed`];
//! * **retry-timer jitter** — base `loss_seed`, distinct salt.
//!
//! A stream is consulted *only* when the corresponding effect has
//! non-zero probability at that instant (e.g. no loss draw when the
//! effective drop probability is `0`). Three properties follow:
//!
//! 1. With [`FaultPlan::none`] and [`SimConfig::reliability`] `= None`,
//!    no fault or retry stream is ever touched and loss draws are
//!    exactly those of the fault-free engine: the fault layer is
//!    observationally absent, bit for bit.
//! 2. Adding a fault on one link or node never perturbs the draws made
//!    for any other node, because streams never interleave — the
//!    faultless part of a run keeps its exact behaviour.
//! 3. A parallel driver replays every draw in the post phase in batch
//!    order, which *per stream* equals the sequential order, so
//!    sequential and parallel executions stay bit-identical with
//!    faults enabled.

use std::collections::{HashMap, HashSet};

use snod_persist::{ByteReader, ByteWriter, Persist, PersistError, SeededRng};

use crate::config::{SimConfig, StreamSource};
use crate::detector::CtxOut;
use crate::energy::EnergyModel;
use crate::event::{Event, EventQueue};
use crate::fault::{FaultPlan, RetryPolicy};
use crate::message::{Wire, ACK_BYTES, HEADER_BYTES, MSG_ID_BYTES};
use crate::node::NodeId;
use crate::stats::NetStats;
use crate::topology::Hierarchy;

#[cfg(feature = "fault-trace")]
macro_rules! ftrace {
    ($trace:expr, $($arg:tt)*) => {
        $trace.push(format!($($arg)*))
    };
}
#[cfg(not(feature = "fault-trace"))]
macro_rules! ftrace {
    ($($arg:tt)*) => {{}};
}

/// The fault-decision log. Only populated with the `fault-trace`
/// feature; always present so the engine plumbing is feature-free.
pub type FaultTrace = Vec<String>;

/// splitmix64 finalizer over `(base, salt)` — decorrelates the per-node
/// stream seeds.
pub fn mix(base: u64, salt: u64) -> u64 {
    let mut z = base ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Salt separating the loss streams from the retry streams (both are
/// derived from [`SimConfig::loss_seed`]).
const LOSS_SALT: u64 = 0x4C4F_5353; // "LOSS"
const RETRY_SALT: u64 = 0x5254_5259; // "RTRY"
const FAULT_SALT: u64 = 0xFA17_FA17;

/// A structural fingerprint of the run parameters a checkpoint does
/// *not* carry but bit-identical resume depends on: topology shape and
/// every [`SimConfig`] field except `worker_threads` (the drivers are
/// bit-identical across worker counts), plus the fault-plan seed.
/// Drivers mix their own extras (the simulator adds its restart
/// policy; the live runtime mixes the Persistent tag for parity).
pub fn config_fingerprint(topo: &Hierarchy, cfg: &SimConfig, plan_seed: u64) -> u64 {
    let mut h = mix(0x534E_4F44, topo.node_count() as u64); // "SNOD"
    h = mix(h, topo.level_count() as u64);
    h = mix(h, cfg.reading_period_ns);
    h = mix(h, cfg.link_latency_ns);
    h = mix(h, u64::from(cfg.stagger_readings));
    h = mix(h, cfg.drop_probability.to_bits());
    h = mix(h, cfg.loss_seed);
    match cfg.reliability {
        None => h = mix(h, 0),
        Some(p) => {
            h = mix(h, 1);
            h = mix(h, p.timeout_ns);
            h = mix(h, u64::from(p.max_retries));
            h = mix(h, p.backoff.to_bits());
            h = mix(h, p.jitter_ns);
        }
    }
    mix(h, plan_seed)
}

/// One callback a node must run during a batch.
pub enum Task<P> {
    /// [`crate::DetectorEngine::ingest`] with this value.
    Read(Vec<f64>),
    /// [`crate::DetectorEngine::on_message`] from this sender with this
    /// payload.
    Msg(NodeId, P),
    /// [`crate::DetectorEngine::on_timer`] with this timer id.
    Timer(u64),
}

/// Engine work owed *after* an event's callback (the post phase). All
/// queue scheduling, RNG draws, transmit accounting and pending-table
/// mutation live here, so every driver replays them in identical order.
pub enum Post {
    /// Flush the callback's outbox, maybe ack a reliable delivery,
    /// maybe schedule the node's next reading.
    Callback {
        /// The node the callback ran on (sender of its outbox).
        node: NodeId,
        /// `Some((node, seq))`: schedule reading `seq` one period later.
        next_reading: Option<(NodeId, u64)>,
        /// `Some((receiver, original_sender, msg_id))`: transmit an ack.
        ack: Option<(NodeId, NodeId, u64)>,
    },
    /// An ack arrived: retire the pending entry.
    AckDone {
        /// Acknowledged message id.
        msg_id: u64,
    },
    /// A retransmission timer fired.
    RetryTimer {
        /// The message the timer guards.
        msg_id: u64,
    },
}

/// The pre-phase verdict on one event.
pub enum Pre<P> {
    /// Nothing to do (dead target, ended stream, permanent crash).
    Skip,
    /// Engine-only work, no application callback.
    Engine(Post),
    /// Run a callback on `node`, then do `post`.
    Run {
        /// The node the callback runs on.
        node: NodeId,
        /// The callback to run.
        task: Task<P>,
        /// The post-phase work owed after the callback.
        post: Post,
    },
}

/// A message awaiting acknowledgement.
pub struct Pending<P> {
    from: NodeId,
    to: NodeId,
    payload: P,
    attempts: u32,
}

impl<P: Persist> Persist for Pending<P> {
    fn save(&self, w: &mut ByteWriter) {
        self.from.save(w);
        self.to.save(w);
        self.payload.save(w);
        self.attempts.save(w);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            from: NodeId::load(r)?,
            to: NodeId::load(r)?,
            payload: P::load(r)?,
            attempts: u32::load(r)?,
        })
    }
}

/// The complete mutable protocol state shared by every driver: the
/// event queue (doubling as the timer wheel), traffic statistics, the
/// per-node RNG stream families, the reliability protocol's pending and
/// dedup tables, scheduled failures, dead flags and the clock.
///
/// Drivers own one of these, borrow an [`Engine`] over it per run, and
/// persist it as one unit — the [`Persist`] impl writes the fields in
/// the exact order the historic simulator checkpoint format uses, so
/// the bytes are stable across the extraction *and* identical between
/// drivers.
pub struct EngineState<P: Wire> {
    /// Pending events / timers, ordered by `(time, scheduling seq)`.
    pub queue: EventQueue<P>,
    /// Traffic and energy accounting.
    pub stats: NetStats,
    /// The driver clock: the latest event time processed (ns).
    pub clock_ns: u64,
    /// Per-node loss-draw streams.
    pub loss_rngs: Vec<SeededRng>,
    /// Per-node fault-effect streams (jitter, duplication).
    pub fault_rngs: Vec<SeededRng>,
    /// Per-node retry-jitter streams.
    pub retry_rngs: Vec<SeededRng>,
    /// Reliable messages awaiting acknowledgement, by message id.
    pub pending: HashMap<u64, Pending<P>>,
    /// Per-node sets of reliable message ids already delivered (dedup).
    pub seen: Vec<HashSet<u64>>,
    /// The next reliable message id to assign.
    pub next_msg_id: u64,
    /// Scheduled permanent node failures `(time_ns, node)`, unsorted.
    pub failures: Vec<(u64, NodeId)>,
    /// Per-node dead flags.
    pub dead: Vec<bool>,
    /// True once the initial readings have been seeded.
    pub started: bool,
    /// The fault-decision log (`fault-trace` feature only).
    pub trace: FaultTrace,
}

impl<P: Wire> EngineState<P> {
    /// Fresh state for `n` nodes under `cfg` and `plan` (seeds the
    /// three per-node stream families).
    pub fn new(n: usize, levels: usize, cfg: &SimConfig, plan: &FaultPlan) -> Self {
        Self {
            queue: EventQueue::new(),
            stats: NetStats::new(n, levels),
            clock_ns: 0,
            loss_rngs: Self::streams(n, cfg.loss_seed ^ LOSS_SALT),
            fault_rngs: Self::streams(n, plan.seed ^ FAULT_SALT),
            retry_rngs: Self::streams(n, cfg.loss_seed ^ RETRY_SALT),
            pending: HashMap::new(),
            seen: vec![HashSet::new(); n],
            next_msg_id: 0,
            failures: Vec::new(),
            dead: vec![false; n],
            started: false,
            trace: FaultTrace::new(),
        }
    }

    /// One per-node RNG stream family, decorrelated per node.
    fn streams(n: usize, base: u64) -> Vec<SeededRng> {
        (0..n)
            .map(|i| SeededRng::seed_from_u64(mix(base, i as u64)))
            .collect()
    }

    /// Reseeds the fault streams from a (new) plan seed — drivers call
    /// this when a fault plan is installed after construction.
    pub fn reseed_fault_streams(&mut self, plan_seed: u64) {
        self.fault_rngs = Self::streams(self.fault_rngs.len(), plan_seed ^ FAULT_SALT);
    }

    /// Schedules every leaf's first reading (staggered or synchronous).
    /// Both drivers seed through this one function so their phase
    /// layout — and hence every downstream event time — is identical.
    pub fn seed_initial_readings(&mut self, topo: &Hierarchy, cfg: &SimConfig) {
        let leaves = topo.leaves();
        let n = leaves.len().max(1) as u64;
        for (i, &leaf) in leaves.iter().enumerate() {
            let phase = if cfg.stagger_readings {
                (i as u64 * cfg.reading_period_ns) / n
            } else {
                0
            };
            self.queue
                .schedule(phase, Event::Reading { node: leaf, seq: 0 });
        }
    }

    /// Borrows the processing engine over this state. The driver holds
    /// the returned [`Engine`] for the duration of one run loop.
    pub fn engine<'a>(
        &'a mut self,
        topo: &'a Hierarchy,
        cfg: SimConfig,
        energy: &'a EnergyModel,
        plan: &'a FaultPlan,
    ) -> Engine<'a, P> {
        Engine {
            topo,
            cfg,
            energy,
            plan,
            queue: &mut self.queue,
            stats: &mut self.stats,
            loss_rngs: &mut self.loss_rngs,
            fault_rngs: &mut self.fault_rngs,
            retry_rngs: &mut self.retry_rngs,
            pending: &mut self.pending,
            seen: &mut self.seen,
            next_msg_id: &mut self.next_msg_id,
            failures: &mut self.failures,
            dead: &mut self.dead,
            trace: &mut self.trace,
        }
    }
}

/// The state is saved field by field in the exact order of the historic
/// simulator checkpoint payload (`started, clock, queue, stats, the
/// three RNG families, pending, seen, next id, failures, dead`), so
/// pre-extraction golden checkpoints remain bit-identical. The trace is
/// diagnostic and not persisted.
impl<P: Wire + Persist> Persist for EngineState<P> {
    fn save(&self, w: &mut ByteWriter) {
        self.started.save(w);
        self.clock_ns.save(w);
        self.queue.save(w);
        self.stats.save(w);
        self.loss_rngs.save(w);
        self.fault_rngs.save(w);
        self.retry_rngs.save(w);
        self.pending.save(w);
        self.seen.save(w);
        self.next_msg_id.save(w);
        self.failures.save(w);
        self.dead.save(w);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            started: bool::load(r)?,
            clock_ns: u64::load(r)?,
            queue: EventQueue::load(r)?,
            stats: NetStats::load(r)?,
            loss_rngs: Vec::load(r)?,
            fault_rngs: Vec::load(r)?,
            retry_rngs: Vec::load(r)?,
            pending: HashMap::load(r)?,
            seen: Vec::load(r)?,
            next_msg_id: u64::load(r)?,
            failures: Vec::load(r)?,
            dead: Vec::load(r)?,
            trace: FaultTrace::new(),
        })
    }
}

impl<P: Wire> EngineState<P> {
    /// Shape-validates a freshly loaded state against the driver's
    /// topology: every per-node vector must have `n` entries and the
    /// per-level statistics must match `levels`. Drivers call this
    /// before committing a restore.
    pub fn shape_matches(&self, n: usize, levels: usize) -> bool {
        [
            self.loss_rngs.len(),
            self.fault_rngs.len(),
            self.retry_rngs.len(),
            self.seen.len(),
            self.dead.len(),
            self.stats.bytes_per_node.len(),
            self.stats.messages_per_node.len(),
        ]
        .iter()
        .all(|&len| len == n)
            && self.stats.messages_per_level.len() == levels
    }
}

/// The event-processing engine, borrowing an [`EngineState`] plus the
/// run's immutable parameters. Sequential and parallel drivers share
/// this one implementation of the *pre* phase (classification, stream
/// fetches, receive accounting, dedup) and the *post* phase (outbox
/// flushing, acks, retries, scheduling). The determinism argument leans
/// on this sharing: drivers cannot drift apart because they run the
/// same code in the same per-event order.
pub struct Engine<'a, P: Wire> {
    /// The hierarchy (for routing, distances and levels).
    pub topo: &'a Hierarchy,
    cfg: SimConfig,
    energy: &'a EnergyModel,
    plan: &'a FaultPlan,
    /// The event queue (exposed so the driver loop can peek/pop).
    pub queue: &'a mut EventQueue<P>,
    /// Traffic statistics (exposed so drivers can count restarts).
    pub stats: &'a mut NetStats,
    loss_rngs: &'a mut [SeededRng],
    fault_rngs: &'a mut [SeededRng],
    retry_rngs: &'a mut [SeededRng],
    pending: &'a mut HashMap<u64, Pending<P>>,
    seen: &'a mut [HashSet<u64>],
    next_msg_id: &'a mut u64,
    failures: &'a mut Vec<(u64, NodeId)>,
    dead: &'a mut [bool],
    #[allow(dead_code)] // written only under the fault-trace feature
    trace: &'a mut FaultTrace,
}

impl<P: Wire> Engine<'_, P> {
    /// Marks every scheduled failure due at `time` as dead.
    pub fn apply_failures(&mut self, time: u64) {
        if self.failures.is_empty() {
            return;
        }
        let mut i = 0;
        while i < self.failures.len() {
            if self.failures[i].0 <= time {
                let (_, n) = self.failures.swap_remove(i);
                self.dead[n.index()] = true;
                ftrace!(self.trace, "{time}: {n:?} failed permanently");
            } else {
                i += 1;
            }
        }
    }

    /// The *pre* phase of one event: decides what (if any) callback to
    /// run and what engine work follows. Only receive-energy
    /// accumulation, integer counters, stream fetches and dedup-table
    /// updates happen here — never queue scheduling or RNG draws, which
    /// belong to the post phase (see the determinism argument).
    pub fn classify<S: StreamSource>(
        &mut self,
        time: u64,
        event: Event<P>,
        source: &mut S,
        readings_per_leaf: u64,
    ) -> Pre<P> {
        snod_obs::counter!("simnet.events").incr();
        match event {
            Event::Reading { node, seq } => {
                if self.dead[node.index()] {
                    return Pre::Skip; // a failed sensor stops reading for good
                }
                let down = self.plan.is_down(node, time);
                if down && !self.plan.recovers(node, time) {
                    return Pre::Skip; // permanent crash: like a failure
                }
                let next_reading = (seq + 1 < readings_per_leaf).then_some((node, seq + 1));
                let post = Post::Callback {
                    node,
                    next_reading,
                    ack: None,
                };
                if down || self.plan.is_sensor_down(node, time) {
                    // The reading is missed (never fetched from the
                    // stream) but the schedule marches on.
                    snod_obs::counter!("simnet.fault.missed_readings").incr();
                    ftrace!(self.trace, "{time}: {node:?} missed reading {seq}");
                    return Pre::Engine(post);
                }
                match source.next(node, seq) {
                    Some(value) => Pre::Run {
                        node,
                        task: Task::Read(value),
                        post,
                    },
                    None => Pre::Skip, // stream ended early
                }
            }
            Event::Deliver { from, to, payload } => {
                if self.dead[to.index()] || self.plan.is_down(to, time) {
                    self.stats.lost_to_crash += 1;
                    snod_obs::counter!("simnet.lost_to_crash").incr();
                    return Pre::Skip; // delivered into the void
                }
                self.stats.rx_joules += self
                    .energy
                    .rx_joules(payload.size_bytes() + HEADER_BYTES);
                Pre::Run {
                    node: to,
                    task: Task::Msg(from, payload),
                    post: Post::Callback {
                        node: to,
                        next_reading: None,
                        ack: None,
                    },
                }
            }
            Event::DeliverReliable {
                from,
                to,
                msg_id,
                payload,
            } => {
                if self.dead[to.index()] || self.plan.is_down(to, time) {
                    // No ack: the sender's timer will retransmit.
                    self.stats.lost_to_crash += 1;
                    snod_obs::counter!("simnet.lost_to_crash").incr();
                    return Pre::Skip;
                }
                self.stats.rx_joules += self
                    .energy
                    .rx_joules(payload.size_bytes() + HEADER_BYTES + MSG_ID_BYTES);
                let post = Post::Callback {
                    node: to,
                    next_reading: None,
                    // Re-ack even duplicates, so a sender whose ack was
                    // lost eventually stops retransmitting.
                    ack: Some((to, from, msg_id)),
                };
                if self.seen[to.index()].insert(msg_id) {
                    Pre::Run {
                        node: to,
                        task: Task::Msg(from, payload),
                        post,
                    }
                } else {
                    self.stats.duplicates_suppressed += 1;
                    snod_obs::counter!("simnet.duplicates_suppressed").incr();
                    Pre::Engine(post)
                }
            }
            Event::Ack { to, msg_id, .. } => {
                if self.dead[to.index()] || self.plan.is_down(to, time) {
                    return Pre::Skip; // ack lost: the sender keeps retrying
                }
                self.stats.rx_joules += self.energy.rx_joules(ACK_BYTES);
                Pre::Engine(Post::AckDone { msg_id })
            }
            Event::Retry { msg_id } => Pre::Engine(Post::RetryTimer { msg_id }),
            Event::AppTimer { node, id } => {
                if self.dead[node.index()] || self.plan.is_down(node, time) {
                    return Pre::Skip; // a crashed node's timers are lost
                }
                Pre::Run {
                    node,
                    task: Task::Timer(id),
                    post: Post::Callback {
                        node,
                        next_reading: None,
                        ack: None,
                    },
                }
            }
        }
    }

    /// The *post* phase of one event: every side effect that schedules,
    /// draws randomness or touches the pending table, replayed by every
    /// driver in exact batch order.
    pub fn finish(&mut self, time: u64, out: CtxOut<P>, post: Post) {
        self.stats.degraded_scores += out.degraded_scores;
        self.stats.local_fallbacks += out.local_fallbacks;
        match post {
            Post::Callback {
                node,
                next_reading,
                ack,
            } => {
                self.flush(out.outbox, node, time);
                for (delay, id) in out.timers {
                    self.queue
                        .schedule(time + delay, Event::AppTimer { node, id });
                }
                if let Some((receiver, sender, msg_id)) = ack {
                    self.transmit_ack(receiver, sender, msg_id, time);
                }
                if let Some((n, seq)) = next_reading {
                    self.queue.schedule(
                        time + self.cfg.reading_period_ns,
                        Event::Reading { node: n, seq },
                    );
                }
            }
            Post::AckDone { msg_id } => {
                self.pending.remove(&msg_id);
            }
            Post::RetryTimer { msg_id } => self.handle_retry(msg_id, time),
        }
    }

    /// Turns one callback's outbox into scheduled deliveries: per-send
    /// statistics, transmit energy, the loss process and fault effects,
    /// plus — for reliable sends — message-id assignment, the pending
    /// table and the first retry timer. This is the single definition of
    /// send semantics, shared by every driver.
    fn flush(&mut self, outbox: Vec<(NodeId, P, bool)>, node: NodeId, time: u64) {
        for (to, payload, reliable) in outbox {
            match (reliable, self.cfg.reliability) {
                (true, Some(policy)) => {
                    let msg_id = *self.next_msg_id;
                    *self.next_msg_id += 1;
                    self.pending.insert(
                        msg_id,
                        Pending {
                            from: node,
                            to,
                            payload: payload.clone(),
                            attempts: 0,
                        },
                    );
                    self.transmit(node, to, time, Some(msg_id), payload);
                    let wait = policy.backoff_ns(0) + self.retry_jitter(node, policy);
                    self.queue.schedule(time + wait, Event::Retry { msg_id });
                }
                // Without a reliability policy, a reliable send *is* a
                // plain send — bit for bit.
                _ => self.transmit(node, to, time, None, payload),
            }
        }
    }

    /// Puts one application frame on the air: statistics, transmit
    /// energy, then the radio (loss + fault effects) decides delivery.
    fn transmit(&mut self, from: NodeId, to: NodeId, time: u64, msg_id: Option<u64>, payload: P) {
        let bytes = payload.size_bytes()
            + HEADER_BYTES
            + if msg_id.is_some() { MSG_ID_BYTES } else { 0 };
        let dist = self.topo.location(from).distance(&self.topo.location(to));
        self.stats.record_send(from, self.topo.level_of(from), bytes);
        snod_obs::counter!("simnet.sends").incr();
        snod_obs::counter!("simnet.send_bytes").add(bytes as u64);
        // Transmit energy is spent whether or not the frame survives.
        self.stats.tx_joules += self.energy.tx_joules(bytes, dist);
        let Some((delay, dup_delay)) = self.radio(from, to, time) else {
            return; // lost on the air (counted in `dropped`)
        };
        let make = |payload: P| match msg_id {
            Some(id) => Event::DeliverReliable {
                from,
                to,
                msg_id: id,
                payload,
            },
            None => Event::Deliver { from, to, payload },
        };
        match dup_delay {
            Some(d2) => {
                self.stats.duplicates += 1;
                snod_obs::counter!("simnet.duplicates").incr();
                self.queue.schedule(time + delay, make(payload.clone()));
                self.queue.schedule(time + d2, make(payload));
            }
            None => self.queue.schedule(time + delay, make(payload)),
        }
    }

    /// Puts one engine-level ack on the air, from the receiver of a
    /// reliable message back to its sender. Acks ride the same radio —
    /// they can be lost, delayed and duplicated like any frame — and are
    /// charged energy, but are accounted separately from application
    /// traffic ([`NetStats::acks`]/[`NetStats::ack_bytes`]).
    fn transmit_ack(&mut self, from: NodeId, to: NodeId, msg_id: u64, time: u64) {
        let dist = self.topo.location(from).distance(&self.topo.location(to));
        self.stats.acks += 1;
        snod_obs::counter!("simnet.acks").incr();
        self.stats.ack_bytes += ACK_BYTES as u64;
        self.stats.tx_joules += self.energy.tx_joules(ACK_BYTES, dist);
        let Some((delay, dup_delay)) = self.radio(from, to, time) else {
            return;
        };
        self.queue
            .schedule(time + delay, Event::Ack { from, to, msg_id });
        if let Some(d2) = dup_delay {
            self.stats.duplicates += 1;
            snod_obs::counter!("simnet.duplicates").incr();
            self.queue
                .schedule(time + d2, Event::Ack { from, to, msg_id });
        }
    }

    /// The radio's verdict on one frame from `from` to `to` at `time`:
    /// `None` = lost (counted), otherwise the delivery delay plus an
    /// optional duplicate-copy delay. Draw order is fixed — loss, then
    /// jitter, then duplication, then the copy's jitter — and every draw
    /// is gated on its effect having non-zero probability, so runs
    /// without that effect never consult the stream.
    fn radio(&mut self, from: NodeId, to: NodeId, time: u64) -> Option<(u64, Option<u64>)> {
        let p = self.plan.loss_probability(self.cfg.drop_probability, time);
        if p > 0.0 && rand::Rng::gen::<f64>(&mut self.loss_rngs[from.index()]) < p {
            self.stats.dropped += 1;
            snod_obs::counter!("simnet.drops").incr();
            ftrace!(self.trace, "{time}: frame {from:?}->{to:?} lost (p={p})");
            return None;
        }
        let mut delay = self.cfg.link_latency_ns;
        let mut dup = None;
        if let Some(lf) = self.plan.link_fault(from, to) {
            snod_obs::counter!("simnet.fault.link_hits").incr();
            delay += lf.extra_delay_ns;
            if lf.jitter_ns > 0 {
                delay += rand::Rng::gen_range(&mut self.fault_rngs[from.index()], 0..=lf.jitter_ns);
            }
            if lf.duplicate_probability > 0.0
                && rand::Rng::gen::<f64>(&mut self.fault_rngs[from.index()])
                    < lf.duplicate_probability
            {
                let mut d2 = self.cfg.link_latency_ns + lf.extra_delay_ns;
                if lf.jitter_ns > 0 {
                    d2 += rand::Rng::gen_range(
                        &mut self.fault_rngs[from.index()],
                        0..=lf.jitter_ns,
                    );
                }
                dup = Some(d2);
            }
        }
        Some((delay, dup))
    }

    /// Jitter for the next retry timer of `node` (0 without jitter — the
    /// retry stream is then never consulted).
    fn retry_jitter(&mut self, node: NodeId, policy: RetryPolicy) -> u64 {
        if policy.jitter_ns == 0 {
            0
        } else {
            rand::Rng::gen_range(&mut self.retry_rngs[node.index()], 0..=policy.jitter_ns)
        }
    }

    /// A retransmission timer fired: if the message is still unacked,
    /// retransmit (unless the sender is crashed — a down sender burns
    /// the attempt without airing a frame) and re-arm the timer with
    /// exponential backoff; give up after `max_retries`.
    fn handle_retry(&mut self, msg_id: u64, time: u64) {
        let Some(policy) = self.cfg.reliability else {
            return;
        };
        let Some(p) = self.pending.get(&msg_id) else {
            return; // acked in the meantime
        };
        let (from, to, attempts) = (p.from, p.to, p.attempts);
        if self.dead[from.index()] || !self.plan.recovers(from, time) {
            // The sender is gone for good: nobody will ever retransmit.
            self.pending.remove(&msg_id);
            self.stats.retry_exhausted += 1;
            snod_obs::counter!("simnet.retry_exhausted").incr();
            return;
        }
        if attempts >= policy.max_retries {
            self.pending.remove(&msg_id);
            self.stats.retry_exhausted += 1;
            snod_obs::counter!("simnet.retry_exhausted").incr();
            ftrace!(self.trace, "{time}: msg {msg_id} abandoned after {attempts} retries");
            return;
        }
        if self.plan.is_down(from, time) {
            // Crashed (but recovering) sender: the attempt is spent, the
            // timer keeps running, no frame is aired.
            self.pending
                .get_mut(&msg_id)
                .expect("pending entry present")
                .attempts += 1;
        } else {
            let payload = {
                let p = self.pending.get_mut(&msg_id).expect("pending entry present");
                p.attempts += 1;
                p.payload.clone()
            };
            self.stats.retransmissions += 1;
            snod_obs::counter!("simnet.retransmissions").incr();
            self.transmit(from, to, time, Some(msg_id), payload);
        }
        let wait = policy.backoff_ns(attempts + 1) + self.retry_jitter(from, policy);
        self.queue.schedule(time + wait, Event::Retry { msg_id });
    }
}
