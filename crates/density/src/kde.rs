//! The d-dimensional product-kernel density estimator (paper Section 4).
//!
//! Given a sample `R` of the window and per-dimension bandwidths `Bᵢ`,
//! the estimated density is Equation 1:
//!
//! ```text
//! f(x) = 1/|R| · Σ_{t ∈ R} k(x₁ − t₁, …, x_d − t_d)
//! ```
//!
//! with the product Epanechnikov kernel of Equation 2. Because each
//! one-dimensional factor has a closed-form CDF, the probability of an
//! axis-aligned box — and hence the neighborhood count `N(p, r)` — is an
//! exact `O(d·|R|)` sum (Theorem 2), no numerical integration involved.
//!
//! # Layout and weighting
//!
//! Centres are stored structure-of-arrays — one contiguous column per
//! dimension, all sorted by the first coordinate — and each centre
//! carries a weight. Freshly sampled centres weigh `1.0`; the online
//! compressor ([`Kde::compress_to_budget`]) merges near-duplicate
//! centres into a single weighted representative, so a model can answer
//! the same queries with far fewer kernels. All probabilities are
//! normalised by the total weight, which generalises the `1/|R|` of
//! Equation 1 (and reduces to it exactly when every weight is `1.0`).
//! The evaluation itself lives in [`crate::eval`].

use snod_persist::{ByteReader, ByteWriter, Persist, PersistError};

use crate::eval;
use crate::kernel::{EpanechnikovKernel, Kernel1d};
use crate::model::{check_dims, DensityModel};
use crate::{scott_bandwidths, DensityError};

/// Merge radius (in bandwidth units) used when a budget must be met but
/// the caller supplied no tolerance to start from.
const SEED_TOLERANCE: f64 = 1e-3;

/// Outcome of a [`Kde::compress_to_budget`] / `Kde1d::compress_to_budget`
/// call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionStats {
    /// Kernel count before merging.
    pub before: usize,
    /// Kernel count after merging (`≤ max(budget, 1)` on return).
    pub after: usize,
    /// Merge passes run; `0` means the model was already within budget
    /// and no tolerance-driven merge was requested.
    pub passes: u32,
    /// The merge radius of the *last* pass, in bandwidth units: every
    /// surviving centre is a weighted mean of original centres that all
    /// lay within `effective_tolerance · Bⱼ` of the group representative
    /// in every dimension `j`. This bounds the per-query error — the
    /// Epanechnikov CDF has slope ≤ 0.75, so a centre shift of `τ·Bⱼ`
    /// moves any one-dimensional box mass by ≤ `1.5·τ`, and a
    /// `d`-dimensional product by ≤ `1.5·d·τ` per unit of mass.
    pub effective_tolerance: f64,
}

/// Kernel density estimator over `d`-dimensional points in `[0, 1]^d`.
///
/// ```
/// use snod_density::{Kde, DensityModel};
/// // 200 sample points clustered near 0.5
/// let pts: Vec<Vec<f64>> = (0..200).map(|i| vec![0.5 + 0.001 * (i % 20) as f64]).collect();
/// let kde = Kde::from_sample(&pts, &[0.05], 1_000.0).unwrap();
/// // the cluster is dense, the far tail is not
/// assert!(kde.neighborhood_count(&[0.5], 0.05).unwrap() > 500.0);
/// assert!(kde.neighborhood_count(&[0.95], 0.05).unwrap() < 10.0);
/// ```
#[derive(Debug, Clone)]
pub struct Kde<K: Kernel1d = EpanechnikovKernel> {
    dims: usize,
    /// Per-dimension coordinate columns: `cols[j][i]` is coordinate `j`
    /// of centre `i`. Centres are sorted by `cols[0]` so finite-support
    /// queries can prune on dimension 0.
    cols: Vec<Vec<f64>>,
    /// Per-centre kernel weights (`1.0` until compression merges
    /// centres).
    weights: Vec<f64>,
    /// Cached `Σ weights`; the normaliser generalising `1/|R|`.
    total_weight: f64,
    bandwidths: Vec<f64>,
    /// Cached `1/Bⱼ` so the hot loop multiplies instead of divides.
    inv_bandwidths: Vec<f64>,
    window_len: f64,
    kernel: K,
}

impl Kde<EpanechnikovKernel> {
    /// Builds an Epanechnikov estimator from a sample of points, applying
    /// the paper's bandwidth rule `Bᵢ = √5·σᵢ·|R|^(−1/(d+4))` to the given
    /// per-dimension standard deviations.
    pub fn from_sample(
        sample: &[Vec<f64>],
        sigmas: &[f64],
        window_len: f64,
    ) -> Result<Self, DensityError> {
        let dims = sigmas.len();
        if dims == 0 {
            return Err(DensityError::NonPositiveParameter("dimensionality"));
        }
        let mut centers = Vec::with_capacity(sample.len() * dims);
        for p in sample {
            check_dims(dims, p)?;
            centers.extend_from_slice(p);
        }
        let bandwidths = scott_bandwidths(sigmas, sample.len());
        Self::new(dims, centers, bandwidths, window_len, EpanechnikovKernel)
    }

    /// Like [`Kde::from_sample`] but consumes borrowed coordinate slices,
    /// so callers holding a `VecDeque<Vec<f64>>` window can build a model
    /// without first cloning it into a `Vec<Vec<f64>>`.
    pub fn from_sample_iter<'a, I>(
        rows: I,
        sigmas: &[f64],
        window_len: f64,
    ) -> Result<Self, DensityError>
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        let dims = sigmas.len();
        if dims == 0 {
            return Err(DensityError::NonPositiveParameter("dimensionality"));
        }
        let mut centers = Vec::new();
        let mut n = 0usize;
        for p in rows {
            check_dims(dims, p)?;
            centers.extend_from_slice(p);
            n += 1;
        }
        let bandwidths = scott_bandwidths(sigmas, n);
        Self::new(dims, centers, bandwidths, window_len, EpanechnikovKernel)
    }
}

impl<K: Kernel1d> Kde<K> {
    /// Builds an estimator from a flattened row-major sample with explicit
    /// bandwidths and kernel. Sample points are re-ordered (sorted by
    /// their first coordinate) into per-dimension columns to enable query
    /// pruning and vectorised evaluation; every point starts with weight
    /// `1.0`.
    pub fn new(
        dims: usize,
        centers: Vec<f64>,
        bandwidths: Vec<f64>,
        window_len: f64,
        kernel: K,
    ) -> Result<Self, DensityError> {
        if dims == 0 {
            return Err(DensityError::NonPositiveParameter("dimensionality"));
        }
        if centers.is_empty() {
            return Err(DensityError::EmptySample);
        }
        if !centers.len().is_multiple_of(dims) {
            return Err(DensityError::RaggedSample);
        }
        if bandwidths.len() != dims {
            return Err(DensityError::DimensionMismatch {
                expected: dims,
                got: bandwidths.len(),
            });
        }
        if bandwidths.iter().any(|&b| !(b > 0.0)) {
            return Err(DensityError::NonPositiveParameter("bandwidth"));
        }
        if !(window_len > 0.0) {
            return Err(DensityError::NonPositiveParameter("window length"));
        }
        // Sort points by first coordinate (sample order carries no
        // meaning); NaNs are rejected implicitly by partial_cmp ordering
        // of generator-produced data.
        let _build = snod_obs::span!("density.kde.build");
        let n = centers.len() / dims;
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by(|&a, &b| {
            centers[a as usize * dims]
                .partial_cmp(&centers[b as usize * dims])
                .expect("non-NaN sample")
        });
        let mut cols: Vec<Vec<f64>> = (0..dims).map(|_| Vec::with_capacity(n)).collect();
        for &i in &order {
            for (j, col) in cols.iter_mut().enumerate() {
                col.push(centers[i as usize * dims + j]);
            }
        }
        let inv_bandwidths = bandwidths.iter().map(|b| 1.0 / b).collect();
        Ok(Self {
            dims,
            cols,
            weights: vec![1.0; n],
            total_weight: n as f64,
            bandwidths,
            inv_bandwidths,
            window_len,
            kernel,
        })
    }

    /// Index range of points whose dimension-0 kernel support intersects
    /// `[lo0, hi0]` — the pruning window for finite-support kernels.
    fn dim0_range(&self, lo0: f64, hi0: f64) -> (usize, usize) {
        let reach = self.kernel.support();
        if reach.is_infinite() {
            return (0, self.weights.len());
        }
        let span = reach * self.bandwidths[0];
        let start = self.cols[0].partition_point(|&c| c < lo0 - span);
        let end = self.cols[0].partition_point(|&c| c <= hi0 + span);
        (start, end)
    }

    /// Number of kernels `|R|` (after compression this is the number of
    /// weighted representatives, not the number of sampled points — see
    /// [`Kde::total_weight`] for the latter).
    pub fn sample_size(&self) -> usize {
        self.weights.len()
    }

    /// Per-dimension bandwidths `Bᵢ`.
    pub fn bandwidths(&self) -> &[f64] {
        &self.bandwidths
    }

    /// The kernel centres, materialised row-major (`i*dims + j` is
    /// coordinate `j` of centre `i`), sorted by first coordinate.
    pub fn centers(&self) -> Vec<f64> {
        let n = self.weights.len();
        let mut out = Vec::with_capacity(n * self.dims);
        for i in 0..n {
            for col in &self.cols {
                out.push(col[i]);
            }
        }
        out
    }

    /// The contiguous coordinate column for dimension `j`.
    pub fn column(&self, j: usize) -> &[f64] {
        &self.cols[j]
    }

    /// Per-centre kernel weights, parallel to the columns.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Total kernel weight `Σ wᵢ` — equal to the number of sampled points
    /// regardless of compression.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Merges a new weight-1 sample point into the sorted columns in
    /// `O(d·(log|R| + shift))`. Bandwidths are deliberately **not**
    /// recomputed — see the epoch-based rebuild policy in `snod-core`.
    pub fn insert_point(&mut self, p: &[f64]) -> Result<(), DensityError> {
        check_dims(self.dims, p)?;
        if p.iter().any(|c| c.is_nan()) {
            return Err(DensityError::NonFiniteValue("sample point"));
        }
        let i = self.cols[0].partition_point(|&c| c < p[0]);
        for (col, &c) in self.cols.iter_mut().zip(p) {
            col.insert(i, c);
        }
        self.weights.insert(i, 1.0);
        self.total_weight += 1.0;
        Ok(())
    }

    /// Removes one unit of weight from a centre equal to `p`; returns
    /// whether one was found. A centre holding merged weight is
    /// decremented in place; a weight-1 centre is removed outright.
    /// Removing the last remaining point is refused (returns `Ok(false)`)
    /// so the estimator never becomes empty.
    pub fn remove_point(&mut self, p: &[f64]) -> Result<bool, DensityError> {
        check_dims(self.dims, p)?;
        let mut i = self.cols[0].partition_point(|&c| c < p[0]);
        while i < self.weights.len() && self.cols[0][i] == p[0] {
            if (0..self.dims).all(|j| self.cols[j][i] == p[j]) {
                if self.weights[i] > 1.0 {
                    self.weights[i] -= 1.0;
                    self.total_weight -= 1.0;
                    return Ok(true);
                }
                if self.weights.len() == 1 {
                    return Ok(false);
                }
                for col in &mut self.cols {
                    col.remove(i);
                }
                self.total_weight -= self.weights.remove(i);
                return Ok(true);
            }
            i += 1;
        }
        Ok(false)
    }

    /// Replaces the per-dimension bandwidths (an epoch-boundary rebuild in
    /// place when the centres are already current).
    pub fn set_bandwidths(&mut self, bandwidths: &[f64]) -> Result<(), DensityError> {
        if bandwidths.len() != self.dims {
            return Err(DensityError::DimensionMismatch {
                expected: self.dims,
                got: bandwidths.len(),
            });
        }
        if bandwidths.iter().any(|&b| !(b > 0.0)) {
            return Err(DensityError::NonPositiveParameter("bandwidth"));
        }
        self.bandwidths.clear();
        self.bandwidths.extend_from_slice(bandwidths);
        self.inv_bandwidths.clear();
        self.inv_bandwidths.extend(bandwidths.iter().map(|b| 1.0 / b));
        Ok(())
    }

    /// Replaces the window length `|W|` that scales probabilities into
    /// counts.
    pub fn set_window_len(&mut self, window_len: f64) -> Result<(), DensityError> {
        if !(window_len > 0.0) {
            return Err(DensityError::NonPositiveParameter("window length"));
        }
        self.window_len = window_len;
        Ok(())
    }

    /// Compresses the kernel set to at most `max(budget, 1)` weighted
    /// centres by merging near-duplicates, xokde++-style.
    ///
    /// One pass walks the dimension-0-sorted centres and greedily groups
    /// consecutive runs in which every centre lies within
    /// `tolerance · Bⱼ` of the run's first member in *every* dimension
    /// `j`; each run is replaced by its weighted mean carrying the run's
    /// total weight. Because the dimension-0 column is globally sorted,
    /// consecutive-run means stay sorted, so the pruning index survives
    /// compression untouched. If one pass at the requested tolerance
    /// still exceeds `budget`, the tolerance doubles and the pass reruns
    /// until the budget is met (escalating to a single centre in the
    /// degenerate limit). Total weight — and therefore every query's
    /// normaliser — is preserved exactly.
    pub fn compress_to_budget(&mut self, budget: usize, tolerance: f64) -> CompressionStats {
        let _span = snod_obs::span!("density.kde.compress");
        let before = self.weights.len();
        let budget = budget.max(1);
        let mut tol = if tolerance > 0.0 { tolerance } else { 0.0 };
        let mut passes = 0u32;
        let mut effective = 0.0;
        if tol > 0.0 && self.weights.len() > 1 {
            self.merge_within(tol);
            passes += 1;
            effective = tol;
        }
        while self.weights.len() > budget {
            tol = if !(tol > 0.0) {
                SEED_TOLERANCE
            } else if passes >= 60 {
                // Doubling from any sane starting point meets any budget
                // long before this; an infinite radius is the guaranteed
                // terminal state (one centre).
                f64::INFINITY
            } else {
                tol * 2.0
            };
            self.merge_within(tol);
            passes += 1;
            effective = tol;
        }
        let after = self.weights.len();
        snod_obs::counter!("density.compress.merged").add((before - after) as u64);
        snod_obs::counter!("density.compress.passes").add(passes as u64);
        CompressionStats {
            before,
            after,
            passes,
            effective_tolerance: effective,
        }
    }

    /// One greedy merge pass at radius `tol` (in bandwidth units). See
    /// [`Kde::compress_to_budget`] for the invariants.
    fn merge_within(&mut self, tol: f64) {
        let n = self.weights.len();
        if n <= 1 {
            return;
        }
        let thresh: Vec<f64> = self.bandwidths.iter().map(|b| tol * b).collect();
        let mut out_cols: Vec<Vec<f64>> = (0..self.dims).map(|_| Vec::new()).collect();
        let mut out_w: Vec<f64> = Vec::new();
        let mut i = 0usize;
        while i < n {
            let mut j = i + 1;
            while j < n
                && (0..self.dims).all(|d| (self.cols[d][j] - self.cols[d][i]).abs() <= thresh[d])
            {
                j += 1;
            }
            if j == i + 1 {
                for (d, col) in out_cols.iter_mut().enumerate() {
                    col.push(self.cols[d][i]);
                }
                out_w.push(self.weights[i]);
            } else {
                let wsum: f64 = self.weights[i..j].iter().sum();
                for (d, col) in out_cols.iter_mut().enumerate() {
                    let num: f64 = (i..j).map(|k| self.weights[k] * self.cols[d][k]).sum();
                    // Clamp the weighted mean into the group's hull so
                    // float rounding can never push it outside — which
                    // for dimension 0 is exactly the sortedness invariant
                    // the pruning index depends on.
                    let (mut mn, mut mx) = (f64::INFINITY, f64::NEG_INFINITY);
                    for k in i..j {
                        mn = mn.min(self.cols[d][k]);
                        mx = mx.max(self.cols[d][k]);
                    }
                    col.push((num / wsum).max(mn).min(mx));
                }
                out_w.push(wsum);
            }
            i = j;
        }
        debug_assert!(out_cols[0].windows(2).all(|w| w[0] <= w[1]));
        self.cols = out_cols;
        self.total_weight = out_w.iter().sum();
        self.weights = out_w;
    }

    /// Un-normalised weighted box mass over the pre-pruned centre range
    /// `[s, e)`. Dispatches to the vectorised Epanechnikov engine when
    /// the kernel allows it, else the generic per-kernel loop. Every
    /// query path — scalar, swept, per-query batched — lands here, which
    /// is what makes them bit-identical to each other.
    fn box_mass_in_range(&self, lo: &[f64], hi: &[f64], s: usize, e: usize) -> f64 {
        if self.kernel.is_epanechnikov() {
            // Degenerate boxes have zero mass (the generic path gets this
            // from `Kernel1d::mass`; the clamped-CDF engine must not see
            // them).
            if lo.iter().zip(hi).any(|(&a, &b)| b <= a) {
                return 0.0;
            }
            eval::epan_box_weighted(&self.cols, &self.weights, s, e, lo, hi, &self.inv_bandwidths)
        } else {
            eval::generic_box_weighted(
                &self.kernel,
                &self.cols,
                &self.weights,
                s,
                e,
                lo,
                hi,
                &self.bandwidths,
            )
        }
    }
}

impl<K: Kernel1d> DensityModel for Kde<K> {
    fn dims(&self) -> usize {
        self.dims
    }

    fn window_len(&self) -> f64 {
        self.window_len
    }

    fn pdf(&self, x: &[f64]) -> Result<f64, DensityError> {
        check_dims(self.dims, x)?;
        let norm: f64 = self.bandwidths.iter().product();
        let (s, e) = self.dim0_range(x[0], x[0]);
        let mut sum = 0.0;
        'points: for i in s..e {
            let mut prod = self.weights[i];
            for (j, col) in self.cols.iter().enumerate() {
                let u = (x[j] - col[i]) / self.bandwidths[j];
                let k = self.kernel.density(u);
                if k == 0.0 {
                    continue 'points;
                }
                prod *= k;
            }
            sum += prod;
        }
        Ok(sum / (self.total_weight * norm))
    }

    fn box_prob(&self, lo: &[f64], hi: &[f64]) -> Result<f64, DensityError> {
        check_dims(self.dims, lo)?;
        check_dims(self.dims, hi)?;
        let (s, e) = self.dim0_range(lo[0], hi[0]);
        snod_obs::counter!("density.scalar.queries").incr();
        snod_obs::counter!("density.scalar.kernels").add((e - s) as u64);
        Ok(self.box_mass_in_range(lo, hi, s, e) / self.total_weight)
    }

    fn compress(&mut self, budget: usize, tolerance: f64) -> usize {
        let stats = self.compress_to_budget(budget, tolerance);
        stats.before - stats.after
    }

    /// Batched neighborhood counts. For large batches, queries sorted by
    /// their dimension-0 lower edge share one monotonically advancing
    /// pruning frontier over the sorted columns; for small batches
    /// against large models the per-query binary search is cheaper and
    /// is used instead ([`eval::sweep_beats_per_query`]). Both paths
    /// derive identical centre ranges and share one evaluator, so the
    /// choice never changes a single output bit.
    fn neighborhood_counts(&self, points: &[f64], r: f64) -> Result<Vec<f64>, DensityError> {
        let d = self.dims;
        if !points.len().is_multiple_of(d) {
            return Err(DensityError::RaggedSample);
        }
        let n = points.len() / d;
        let mut out = vec![0.0; n];
        let mut lo = vec![0.0; d];
        let mut hi = vec![0.0; d];
        let _sweep = snod_obs::span!("density.kde.sweep");
        let reach = self.kernel.support();
        let len = self.weights.len();
        if reach.is_infinite() {
            // No pruning possible; every query touches every kernel.
            for (o, q) in out.iter_mut().zip(points.chunks_exact(d)) {
                for j in 0..d {
                    lo[j] = q[j] - r;
                    hi[j] = q[j] + r;
                }
                *o = self.box_mass_in_range(&lo, &hi, 0, len) / self.total_weight
                    * self.window_len;
            }
            return Ok(out);
        }
        if eval::sweep_beats_per_query(n, len) {
            snod_obs::counter!("density.sweep.queries").add(n as u64);
            let mut order: Vec<u32> = (0..n as u32).collect();
            order.sort_unstable_by(|&a, &b| {
                points[a as usize * d].total_cmp(&points[b as usize * d])
            });
            let span = reach * self.bandwidths[0];
            let kernels = snod_obs::counter!("density.sweep.kernels");
            let (mut s, mut e) = (0usize, 0usize);
            for &qi in &order {
                let q = &points[qi as usize * d..(qi as usize + 1) * d];
                let (lo0, hi0) = (q[0] - r, q[0] + r);
                while s < len && self.cols[0][s] < lo0 - span {
                    s += 1;
                }
                while e < len && self.cols[0][e] <= hi0 + span {
                    e += 1;
                }
                kernels.add((e - s) as u64);
                for j in 0..d {
                    lo[j] = q[j] - r;
                    hi[j] = q[j] + r;
                }
                out[qi as usize] = self.box_mass_in_range(&lo, &hi, s, e) / self.total_weight
                    * self.window_len;
            }
        } else {
            snod_obs::counter!("density.batch.per_query").add(n as u64);
            let kernels = snod_obs::counter!("density.batch.kernels");
            for (o, q) in out.iter_mut().zip(points.chunks_exact(d)) {
                let (s, e) = self.dim0_range(q[0] - r, q[0] + r);
                kernels.add((e - s) as u64);
                for j in 0..d {
                    lo[j] = q[j] - r;
                    hi[j] = q[j] + r;
                }
                *o = self.box_mass_in_range(&lo, &hi, s, e) / self.total_weight
                    * self.window_len;
            }
        }
        Ok(out)
    }
}

impl<K: Kernel1d + Default> Persist for Kde<K> {
    fn save(&self, w: &mut ByteWriter) {
        self.dims.save(w);
        self.cols.save(w);
        self.weights.save(w);
        self.bandwidths.save(w);
        self.window_len.save(w);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let dims = usize::load(r)?;
        let cols = Vec::<Vec<f64>>::load(r)?;
        let weights = Vec::<f64>::load(r)?;
        let bandwidths = Vec::<f64>::load(r)?;
        let window_len = f64::load(r)?;
        let corrupt = || PersistError::Corrupt("invalid kde parameters");
        // The saved layout is trusted structurally but verified
        // semantically: loading bypasses the sorting constructor (weights
        // must stay aligned with their centres), so sortedness and
        // positivity are checked here instead.
        if dims == 0 || cols.len() != dims {
            return Err(corrupt());
        }
        let n = cols[0].len();
        if n == 0 || cols.iter().any(|c| c.len() != n) {
            return Err(corrupt());
        }
        if weights.len() != n || weights.iter().any(|&w| !w.is_finite() || !(w > 0.0)) {
            return Err(corrupt());
        }
        if cols[0].windows(2).any(|p| !(p[0] <= p[1])) {
            return Err(corrupt());
        }
        if bandwidths.len() != dims || bandwidths.iter().any(|&b| !(b > 0.0)) {
            return Err(corrupt());
        }
        if !(window_len > 0.0) {
            return Err(corrupt());
        }
        let total_weight = weights.iter().sum();
        let inv_bandwidths = bandwidths.iter().map(|b| 1.0 / b).collect();
        Ok(Self {
            dims,
            cols,
            weights,
            total_weight,
            bandwidths,
            inv_bandwidths,
            window_len,
            kernel: K::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::GaussianKernel;

    fn uniform_sample(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![(i as f64 + 0.5) / n as f64]).collect()
    }

    #[test]
    fn construction_validates_input() {
        assert!(matches!(
            Kde::from_sample(&[], &[0.1], 100.0),
            Err(DensityError::EmptySample)
        ));
        assert!(Kde::from_sample(&[vec![0.5, 0.5]], &[0.1], 100.0).is_err());
        assert!(Kde::new(1, vec![0.5], vec![0.0], 100.0, EpanechnikovKernel).is_err());
        assert!(Kde::new(1, vec![0.5], vec![0.1], 0.0, EpanechnikovKernel).is_err());
        assert!(Kde::new(
            2,
            vec![0.5, 0.5, 0.5],
            vec![0.1, 0.1],
            100.0,
            EpanechnikovKernel
        )
        .is_err());
    }

    #[test]
    fn pdf_is_nonnegative_and_integrates_to_one() {
        let kde = Kde::from_sample(&uniform_sample(50), &[0.29], 1_000.0).unwrap();
        let steps = 4_000;
        let (lo, hi) = (-0.5, 1.5);
        let h = (hi - lo) / steps as f64;
        let mut integral = 0.0;
        for i in 0..=steps {
            let x = lo + i as f64 * h;
            let p = kde.pdf(&[x]).unwrap();
            assert!(p >= 0.0);
            let w = if i == 0 || i == steps { 0.5 } else { 1.0 };
            integral += w * p;
        }
        assert!(
            (integral * h - 1.0).abs() < 1e-3,
            "integral {}",
            integral * h
        );
    }

    #[test]
    fn box_prob_matches_numeric_integral_of_pdf() {
        let kde = Kde::from_sample(&uniform_sample(30), &[0.29], 1_000.0).unwrap();
        let (a, b) = (0.2, 0.6);
        let steps = 20_000;
        let h = (b - a) / steps as f64;
        let mut numeric = 0.0;
        for i in 0..=steps {
            let x = a + i as f64 * h;
            let w = if i == 0 || i == steps { 0.5 } else { 1.0 };
            numeric += w * kde.pdf(&[x]).unwrap();
        }
        numeric *= h;
        let exact = kde.box_prob(&[a], &[b]).unwrap();
        assert!(
            (numeric - exact).abs() < 1e-4,
            "numeric {numeric} exact {exact}"
        );
    }

    #[test]
    fn neighborhood_count_scales_with_window() {
        let pts = uniform_sample(100);
        let small = Kde::from_sample(&pts, &[0.29], 100.0).unwrap();
        let large = Kde::from_sample(&pts, &[0.29], 10_000.0).unwrap();
        let ns = small.neighborhood_count(&[0.5], 0.1).unwrap();
        let nl = large.neighborhood_count(&[0.5], 0.1).unwrap();
        assert!((nl / ns - 100.0).abs() < 1e-9);
    }

    #[test]
    fn two_dimensional_box_prob_is_product_for_factorised_sample() {
        // A single kernel at (0.5, 0.5): the box mass factorises exactly.
        let kde = Kde::new(2, vec![0.5, 0.5], vec![0.1, 0.2], 100.0, EpanechnikovKernel).unwrap();
        let p = kde.box_prob(&[0.45, 0.4], &[0.55, 0.6]).unwrap();
        let k = EpanechnikovKernel;
        let px = k.mass(-0.5, 0.5);
        let py = k.mass(-0.5, 0.5);
        assert!((p - px * py).abs() < 1e-12);
    }

    #[test]
    fn whole_domain_has_probability_one() {
        let kde = Kde::from_sample(&uniform_sample(64), &[0.2], 500.0).unwrap();
        let p = kde.box_prob(&[-10.0], &[10.0]).unwrap();
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let kde = Kde::from_sample(&uniform_sample(10), &[0.2], 100.0).unwrap();
        assert!(matches!(
            kde.pdf(&[0.5, 0.5]),
            Err(DensityError::DimensionMismatch {
                expected: 1,
                got: 2
            })
        ));
    }

    #[test]
    fn gaussian_kernel_also_integrates() {
        let kde = Kde::new(1, vec![0.3, 0.5, 0.7], vec![0.1], 100.0, GaussianKernel).unwrap();
        let p = kde.box_prob(&[-5.0], &[5.0]).unwrap();
        assert!((p - 1.0).abs() < 1e-6);
    }

    #[test]
    fn dim0_pruning_preserves_exact_results() {
        // Shuffled 2-d sample: pruned queries must equal a naive
        // all-points evaluation.
        let pts: Vec<Vec<f64>> = (0..300)
            .map(|i| {
                vec![
                    ((i * 83) % 301) as f64 / 301.0,
                    ((i * 131) % 307) as f64 / 307.0,
                ]
            })
            .collect();
        let kde = Kde::from_sample(&pts, &[0.08, 0.12], 5_000.0).unwrap();
        let naive_box = |lo: &[f64], hi: &[f64]| -> f64 {
            let k = EpanechnikovKernel;
            let b = kde.bandwidths();
            let sum: f64 = pts
                .iter()
                .map(|t| {
                    (0..2)
                        .map(|j| k.mass((lo[j] - t[j]) / b[j], (hi[j] - t[j]) / b[j]))
                        .product::<f64>()
                })
                .sum();
            sum / pts.len() as f64
        };
        for (lo, hi) in [
            ([0.4, 0.4], [0.6, 0.6]),
            ([0.0, 0.0], [0.1, 1.0]),
            ([0.9, 0.2], [1.0, 0.3]),
        ] {
            let fast = kde.box_prob(&lo, &hi).unwrap();
            let slow = naive_box(&lo, &hi);
            assert!(
                (fast - slow).abs() < 1e-12,
                "{lo:?}..{hi:?}: {fast} vs {slow}"
            );
        }
    }

    #[test]
    fn batched_counts_match_scalar_exactly_in_2d() {
        let pts: Vec<Vec<f64>> = (0..300)
            .map(|i| {
                vec![
                    ((i * 83) % 301) as f64 / 301.0,
                    ((i * 131) % 307) as f64 / 307.0,
                ]
            })
            .collect();
        let kde = Kde::from_sample(&pts, &[0.08, 0.12], 5_000.0).unwrap();
        let queries: Vec<f64> = vec![
            0.9, 0.2, // unsorted on dim 0 on purpose
            0.1, 0.8, //
            0.1, 0.8, // duplicate
            0.5, 0.5, //
            -0.3, 0.4, // out of support
        ];
        for r in [0.02, 0.1, 0.4] {
            let batch = kde.neighborhood_counts(&queries, r).unwrap();
            for (i, q) in queries.chunks_exact(2).enumerate() {
                let scalar = kde.neighborhood_count(q, r).unwrap();
                assert_eq!(batch[i], scalar, "q={q:?} r={r}");
            }
        }
        assert!(matches!(
            kde.neighborhood_counts(&queries[..3], 0.1),
            Err(DensityError::RaggedSample)
        ));
    }

    #[test]
    fn batched_counts_match_scalar_for_gaussian_kernel() {
        let kde = Kde::new(
            2,
            vec![0.3, 0.4, 0.6, 0.7, 0.5, 0.5],
            vec![0.1, 0.1],
            500.0,
            GaussianKernel,
        )
        .unwrap();
        let queries = [0.7, 0.2, 0.4, 0.6];
        let batch = kde.neighborhood_counts(&queries, 0.15).unwrap();
        for (i, q) in queries.chunks_exact(2).enumerate() {
            assert_eq!(batch[i], kde.neighborhood_count(q, 0.15).unwrap());
        }
    }

    #[test]
    fn both_batch_strategies_agree_bit_for_bit() {
        // Straddle the sweep/per-query crossover by varying the batch
        // size against one model: every answer must equal the scalar
        // path no matter which strategy the heuristic picks.
        let pts: Vec<Vec<f64>> = (0..500)
            .map(|i| vec![((i * 197) % 503) as f64 / 503.0])
            .collect();
        let kde = Kde::from_sample(&pts, &[0.1], 2_000.0).unwrap();
        for batch_len in [1usize, 4, 16, 64, 400] {
            let queries: Vec<f64> = (0..batch_len)
                .map(|i| ((i * 29) % (batch_len + 1)) as f64 / (batch_len + 1) as f64)
                .collect();
            let batch = kde.neighborhood_counts(&queries, 0.07).unwrap();
            for (i, &q) in queries.iter().enumerate() {
                assert_eq!(
                    batch[i],
                    kde.neighborhood_count(&[q], 0.07).unwrap(),
                    "batch_len={batch_len} q={q}"
                );
            }
        }
    }

    #[test]
    fn insert_and_remove_points_preserve_query_results() {
        let pts: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![((i * 37) % 61) as f64 / 61.0, ((i * 13) % 59) as f64 / 59.0])
            .collect();
        let mut inc = Kde::from_sample(&pts[..40], &[0.2, 0.2], 1_000.0).unwrap();
        for p in &pts[40..] {
            inc.insert_point(p).unwrap();
        }
        for p in &pts[..10] {
            assert!(inc.remove_point(p).unwrap());
        }
        assert!(!inc.remove_point(&[0.123, 0.456]).unwrap());
        let flat: Vec<f64> = pts[10..].iter().flatten().copied().collect();
        let scratch = Kde::new(
            2,
            flat,
            inc.bandwidths().to_vec(),
            1_000.0,
            EpanechnikovKernel,
        )
        .unwrap();
        assert_eq!(inc.sample_size(), scratch.sample_size());
        for (q, r) in [([0.5, 0.5], 0.1), ([0.2, 0.8], 0.3), ([0.9, 0.1], 0.05)] {
            assert_eq!(
                inc.neighborhood_count(&q, r).unwrap(),
                scratch.neighborhood_count(&q, r).unwrap()
            );
        }
        assert!(inc.insert_point(&[f64::NAN, 0.5]).is_err());
        assert!(inc.insert_point(&[0.5]).is_err());
    }

    #[test]
    fn from_sample_iter_matches_from_sample() {
        let pts: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![((i * 7) % 50) as f64 / 50.0, ((i * 11) % 50) as f64 / 50.0])
            .collect();
        let a = Kde::from_sample(&pts, &[0.15, 0.25], 800.0).unwrap();
        let b = Kde::from_sample_iter(pts.iter().map(Vec::as_slice), &[0.15, 0.25], 800.0).unwrap();
        assert_eq!(a.bandwidths(), b.bandwidths());
        assert_eq!(a.centers(), b.centers());
    }

    #[test]
    fn dense_region_counts_higher_than_sparse() {
        // 90 points near 0.3, 10 near 0.8.
        let mut pts: Vec<Vec<f64>> = (0..90).map(|i| vec![0.3 + 0.0005 * i as f64]).collect();
        pts.extend((0..10).map(|i| vec![0.8 + 0.0005 * i as f64]));
        let kde = Kde::from_sample(&pts, &[0.2], 1_000.0).unwrap();
        let dense = kde.neighborhood_count(&[0.32], 0.05).unwrap();
        let sparse = kde.neighborhood_count(&[0.8], 0.05).unwrap();
        assert!(dense > 5.0 * sparse, "dense {dense} sparse {sparse}");
    }

    #[test]
    fn compression_caps_centres_and_preserves_total_weight() {
        // Two tight clusters of 200 points each: a small tolerance
        // collapses them to two weighted centres.
        let pts: Vec<Vec<f64>> = (0..400)
            .map(|i| {
                let c = if i % 2 == 0 { 0.3 } else { 0.7 };
                vec![c + ((i * 37) % 100) as f64 * 1e-5, c + ((i * 53) % 100) as f64 * 1e-5]
            })
            .collect();
        let mut kde = Kde::from_sample(&pts, &[0.1, 0.1], 1_000.0).unwrap();
        let reference = kde.clone();
        let stats = kde.compress_to_budget(50, 0.05);
        assert!(kde.sample_size() <= 50, "|R| = {}", kde.sample_size());
        assert_eq!(stats.after, kde.sample_size());
        assert_eq!(stats.before, 400);
        assert_eq!(kde.total_weight(), 400.0);
        assert!(kde.column(0).windows(2).all(|w| w[0] <= w[1]));
        // Error bound: each centre moved at most τ·Bⱼ per dimension, so
        // counts move at most ~1.5·d·τ·|W| per unit mass; 2·d·τ·|W| is a
        // strictly looser ceiling.
        let eps = 2.0 * 2.0 * stats.effective_tolerance * 1_000.0;
        for q in [[0.3, 0.3], [0.7, 0.7], [0.5, 0.5], [0.31, 0.69]] {
            let a = reference.neighborhood_count(&q, 0.1).unwrap();
            let b = kde.neighborhood_count(&q, 0.1).unwrap();
            assert!((a - b).abs() <= eps, "q={q:?}: {a} vs {b} (eps {eps})");
        }
    }

    #[test]
    fn tolerance_escalates_until_budget_met() {
        let pts: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![((i * 89) % 211) as f64 / 211.0])
            .collect();
        let mut kde = Kde::from_sample(&pts, &[0.1], 500.0).unwrap();
        let stats = kde.compress_to_budget(10, 1e-6);
        assert!(kde.sample_size() <= 10, "|R| = {}", kde.sample_size());
        assert!(stats.passes >= 2, "passes = {}", stats.passes);
        assert!(stats.effective_tolerance > 1e-6);
        assert_eq!(kde.total_weight(), 200.0);
        // Probability axioms survive compression.
        let p = kde.box_prob(&[-10.0], &[10.0]).unwrap();
        assert!((p - 1.0).abs() < 1e-12, "whole-domain prob {p}");
    }

    #[test]
    fn compressed_model_batch_matches_scalar_bit_for_bit() {
        let pts: Vec<Vec<f64>> = (0..300)
            .map(|i| vec![((i * 83) % 301) as f64 / 301.0, ((i * 131) % 307) as f64 / 307.0])
            .collect();
        let mut kde = Kde::from_sample(&pts, &[0.08, 0.12], 5_000.0).unwrap();
        kde.compress_to_budget(60, 0.1);
        assert!(kde.weights().iter().any(|&w| w > 1.0), "merging happened");
        let queries = [0.9, 0.2, 0.1, 0.8, 0.5, 0.5, 0.3, 0.3];
        for r in [0.05, 0.2] {
            let batch = kde.neighborhood_counts(&queries, r).unwrap();
            for (i, q) in queries.chunks_exact(2).enumerate() {
                assert_eq!(batch[i], kde.neighborhood_count(q, r).unwrap());
            }
        }
    }

    #[test]
    fn removing_from_merged_centre_decrements_weight() {
        // Four exact duplicates merge into one centre of weight 4.
        let mut kde = Kde::new(
            1,
            vec![0.5, 0.5, 0.5, 0.5, 0.9],
            vec![0.1],
            100.0,
            EpanechnikovKernel,
        )
        .unwrap();
        kde.compress_to_budget(usize::MAX, 1e-9);
        assert_eq!(kde.sample_size(), 2);
        assert_eq!(kde.total_weight(), 5.0);
        assert!(kde.remove_point(&[0.5]).unwrap());
        assert_eq!(kde.sample_size(), 2, "weight decremented, centre kept");
        assert_eq!(kde.total_weight(), 4.0);
        assert_eq!(kde.weights()[0], 3.0);
        // Draining the merged centre eventually removes it.
        for _ in 0..3 {
            assert!(kde.remove_point(&[0.5]).unwrap());
        }
        assert_eq!(kde.sample_size(), 1);
        // The final centre is protected.
        assert!(!kde.remove_point(&[0.9]).unwrap());
    }

    #[test]
    fn trait_level_compress_reports_merged_count() {
        let pts = uniform_sample(100);
        let mut kde = Kde::from_sample(&pts, &[0.2], 500.0).unwrap();
        let merged = DensityModel::compress(&mut kde, 20, 0.01);
        assert_eq!(merged, 100 - kde.sample_size());
        assert!(kde.sample_size() <= 20);
    }
}
