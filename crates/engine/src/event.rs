//! The discrete-event queue driving the simulation.
//!
//! Events are ordered by simulated time with a monotone sequence number
//! as tie-breaker, so executions are fully deterministic: two events at
//! the same instant fire in the order they were scheduled.
//!
//! Payloads live in a slab (`slots`) indexed by the heap, so heap
//! sift-up/down moves 24-byte `(time, seq, slot)` keys instead of whole
//! `Event<P>` payloads — at tens of thousands of nodes the payloads
//! (model deltas, escalation vectors) dominate, and keeping them out of
//! the comparison path makes push/pop cache-friendly. Freed slots are
//! recycled, so steady-state memory is bounded by the high-water mark
//! of concurrently pending events, not by total events scheduled.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use snod_persist::{ByteReader, ByteWriter, Persist, PersistError};

use crate::node::NodeId;

/// Something scheduled to happen at a simulated instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event<P> {
    /// A leaf sensor takes its next reading (the `seq`-th of its stream).
    Reading {
        /// The sampling sensor.
        node: NodeId,
        /// 0-based index of the reading in that sensor's stream.
        seq: u64,
    },
    /// A message finishes propagating and is handed to the receiver.
    Deliver {
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Application payload.
        payload: P,
    },
    /// A message sent under the ack/retry protocol arrives: the receiver
    /// deduplicates by `msg_id` and acknowledges.
    DeliverReliable {
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Engine-assigned message id (dedup + ack matching).
        msg_id: u64,
        /// Application payload.
        payload: P,
    },
    /// An acknowledgement frame arrives back at the original sender.
    Ack {
        /// The acknowledging node (receiver of the original message).
        from: NodeId,
        /// The original sender, whose pending entry this retires.
        to: NodeId,
        /// The acknowledged message id.
        msg_id: u64,
    },
    /// A retransmission timer fires at the sender of `msg_id`.
    Retry {
        /// The guarded message id.
        msg_id: u64,
    },
    /// An application timer armed via
    /// [`crate::EngineCtx::set_timer`] fires on `node`.
    AppTimer {
        /// The node whose engine armed (and receives) the timer.
        node: NodeId,
        /// The engine-chosen timer id, passed back verbatim.
        id: u64,
    },
}

/// Heap key: `(time_ns, seq, slot)`. Ordering ignores the slot — two
/// keys never tie because `seq` is unique — but keeping it in the tuple
/// lets the heap find the payload without a side lookup.
type Key = (u64, u64, u32);

/// A min-heap of timed events with slab-stored payloads.
#[derive(Debug)]
pub struct EventQueue<P> {
    /// Payload slab; `None` marks a free slot.
    slots: Vec<Option<Event<P>>>,
    /// Recycled slot indices.
    free: Vec<u32>,
    heap: BinaryHeap<Reverse<Key>>,
    next_seq: u64,
}

impl<P> Default for EventQueue<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> EventQueue<P> {
    /// Empty queue.
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    fn store(&mut self, event: Event<P>) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(event);
                slot
            }
            None => {
                let slot = self.slots.len() as u32;
                self.slots.push(Some(event));
                slot
            }
        }
    }

    /// Schedules `event` at absolute simulated time `time_ns`.
    pub fn schedule(&mut self, time_ns: u64, event: Event<P>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = self.store(event);
        self.heap.push(Reverse((time_ns, seq, slot)));
    }

    /// Removes and returns the earliest event with its firing time.
    pub fn pop(&mut self) -> Option<(u64, Event<P>)> {
        self.heap.pop().map(|Reverse((time_ns, _, slot))| {
            let event = self.slots[slot as usize]
                .take()
                .expect("heap key points at a live slot");
            self.free.push(slot);
            (time_ns, event)
        })
    }

    /// Firing time of the earliest pending event, without removing it.
    /// Lets the engine drain a whole same-instant batch.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<P: Persist> Persist for Event<P> {
    fn save(&self, w: &mut ByteWriter) {
        match self {
            Event::Reading { node, seq } => {
                w.put_u8(0);
                node.save(w);
                seq.save(w);
            }
            Event::Deliver { from, to, payload } => {
                w.put_u8(1);
                from.save(w);
                to.save(w);
                payload.save(w);
            }
            Event::DeliverReliable {
                from,
                to,
                msg_id,
                payload,
            } => {
                w.put_u8(2);
                from.save(w);
                to.save(w);
                msg_id.save(w);
                payload.save(w);
            }
            Event::Ack { from, to, msg_id } => {
                w.put_u8(3);
                from.save(w);
                to.save(w);
                msg_id.save(w);
            }
            Event::Retry { msg_id } => {
                w.put_u8(4);
                msg_id.save(w);
            }
            Event::AppTimer { node, id } => {
                w.put_u8(5);
                node.save(w);
                id.save(w);
            }
        }
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(match r.get_u8()? {
            0 => Event::Reading {
                node: NodeId::load(r)?,
                seq: u64::load(r)?,
            },
            1 => Event::Deliver {
                from: NodeId::load(r)?,
                to: NodeId::load(r)?,
                payload: P::load(r)?,
            },
            2 => Event::DeliverReliable {
                from: NodeId::load(r)?,
                to: NodeId::load(r)?,
                msg_id: u64::load(r)?,
                payload: P::load(r)?,
            },
            3 => Event::Ack {
                from: NodeId::load(r)?,
                to: NodeId::load(r)?,
                msg_id: u64::load(r)?,
            },
            4 => Event::Retry {
                msg_id: u64::load(r)?,
            },
            5 => Event::AppTimer {
                node: NodeId::load(r)?,
                id: u64::load(r)?,
            },
            _ => return Err(PersistError::Corrupt("unknown event tag")),
        })
    }
}

/// The queue is saved as its *live* entries — `(time_ns, seq, event)`
/// triples in firing order — plus the scheduling counter. Keeping the
/// original tie-break sequence numbers is essential to bit-identical
/// resume: re-scheduling the events on load would renumber them and
/// could reorder same-instant batches relative to the uninterrupted
/// run.
impl<P: Persist> Persist for EventQueue<P> {
    fn save(&self, w: &mut ByteWriter) {
        let mut keys: Vec<Key> = self.heap.iter().map(|Reverse(k)| *k).collect();
        keys.sort_unstable();
        w.put_usize(keys.len());
        for (time_ns, seq, slot) in keys {
            time_ns.save(w);
            seq.save(w);
            self.slots[slot as usize]
                .as_ref()
                .expect("heap key points at a live slot")
                .save(w);
        }
        self.next_seq.save(w);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let n = r.get_len()?;
        let mut slots = Vec::with_capacity(n);
        let mut heap = BinaryHeap::with_capacity(n);
        for slot in 0..n {
            let time_ns = u64::load(r)?;
            let seq = u64::load(r)?;
            slots.push(Some(Event::load(r)?));
            heap.push(Reverse((time_ns, seq, slot as u32)));
        }
        let next_seq = u64::load(r)?;
        Ok(Self {
            slots,
            free: Vec::new(),
            heap,
            next_seq,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule(
            30,
            Event::Reading {
                node: NodeId(3),
                seq: 0,
            },
        );
        q.schedule(
            10,
            Event::Reading {
                node: NodeId(1),
                seq: 0,
            },
        );
        q.schedule(
            20,
            Event::Reading {
                node: NodeId(2),
                seq: 0,
            },
        );
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_scheduling_order() {
        let mut q: EventQueue<u32> = EventQueue::new();
        for i in 0..5u32 {
            q.schedule(
                100,
                Event::Deliver {
                    from: NodeId(i),
                    to: NodeId(0),
                    payload: i,
                },
            );
        }
        let order: Vec<u32> = std::iter::from_fn(|| {
            q.pop().map(|(_, e)| match e {
                Event::Deliver { payload, .. } => payload,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn slots_are_recycled_across_batches() {
        let mut q: EventQueue<u32> = EventQueue::new();
        for round in 0..100u64 {
            for i in 0..8u32 {
                q.schedule(
                    round,
                    Event::Deliver {
                        from: NodeId(i),
                        to: NodeId(0),
                        payload: i,
                    },
                );
            }
            while q.pop().is_some() {}
        }
        // Memory is bounded by the high-water mark of pending events,
        // not by the 800 events scheduled over the queue's lifetime.
        assert!(q.slots.len() <= 8, "slab grew to {}", q.slots.len());
        assert_eq!(q.next_seq, 800);
    }

    #[test]
    fn len_tracks_pending_events() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(
            1,
            Event::Reading {
                node: NodeId(0),
                seq: 0,
            },
        );
        q.schedule(
            2,
            Event::Reading {
                node: NodeId(0),
                seq: 1,
            },
        );
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
