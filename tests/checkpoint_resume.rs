//! The checkpoint/restore headline guarantee: snapshot at step `k`,
//! restore in a *fresh* network, run to step `n` — and every outlier
//! trace, message counter and energy sum is bit-identical to the run
//! that never stopped. Exercised for D3 and MGDD on the golden seeded
//! workload, with and without faults, across sequential and parallel
//! engines, through in-memory bytes and through the atomic file path.
//!
//! The stream source here is a pure function of `(node, seq)`, so the
//! resumed process re-derives exactly the readings the original would
//! have seen — the same contract `snod simulate --resume-from` meets by
//! fast-forwarding its generators.

use sensor_outliers::core::{
    build_d3_network, build_mgdd_network, D3Config, D3Node, D3Payload, EstimatorConfig, MgddConfig,
    MgddNode, MgddPayload, UpdateStrategy,
};
use sensor_outliers::outlier::{DistanceOutlierConfig, MdefConfig};
use sensor_outliers::persist::PersistError;
use sensor_outliers::simnet::{
    FaultPlan, Hierarchy, NetStats, Network, NodeId, RestartPolicy, RetryPolicy, SimConfig,
};

const READINGS: u64 = 600;
/// One reading per second (the default period) bounds the sim horizon.
const HORIZON_NS: u64 = READINGS * 1_000_000_000;
/// The snapshot instant: a third of the way through the run.
const CUT_NS: u64 = HORIZON_NS / 3;

fn topo() -> Hierarchy {
    Hierarchy::balanced(4, &[2, 2]).unwrap()
}

/// Deterministic per-leaf streams with planted deviations — pure in
/// `(node, seq)`, hence trivially resumable.
fn source(node: NodeId, seq: u64) -> Option<Vec<f64>> {
    let h = node.0 as u64 * 1_000_003 + seq * 7_919;
    if seq % 173 == 42 {
        Some(vec![0.91])
    } else {
        Some(vec![0.3 + 0.2 * ((h % 1_000) as f64 / 1_000.0)])
    }
}

fn estimator() -> EstimatorConfig {
    EstimatorConfig::builder()
        .window(300)
        .sample_size(50)
        .seed(21)
        .build()
        .unwrap()
}

fn d3_config() -> D3Config {
    D3Config {
        estimator: estimator(),
        rule: DistanceOutlierConfig::new(8.0, 0.02),
        sample_fraction: 0.5,
    }
}

fn mgdd_config() -> MgddConfig {
    MgddConfig {
        estimator: estimator(),
        rule: MdefConfig::new(0.08, 0.01, 3.0).unwrap(),
        sample_fraction: 0.75,
        updates: UpdateStrategy::EveryAcceptance,
        staleness_bound_ns: Some(30_000_000_000),
    }
}

/// A fault plan with *probabilistic* loss and a mid-run crash, plus a
/// jittered retry policy: the run burns through every per-node RNG
/// stream (loss, fault, retry), so a checkpoint that failed to persist
/// stream positions could not pass these tests.
fn random_faults(topo: &Hierarchy) -> (FaultPlan, SimConfig) {
    let plan = FaultPlan::none()
        .with_seed(424_242)
        .burst(HORIZON_NS / 5, HORIZON_NS / 2, 0.2)
        .crash(topo.leaves()[0], HORIZON_NS / 3, Some(2 * HORIZON_NS / 3));
    let sim = SimConfig::default()
        .with_drop_probability(0.05)
        .with_reliability(RetryPolicy {
            jitter_ns: 2_000_000,
            ..RetryPolicy::default()
        });
    (plan, sim)
}

fn d3_net(sim: SimConfig, plan: FaultPlan) -> Network<D3Payload, D3Node> {
    build_d3_network(topo(), &d3_config(), sim, plan).unwrap()
}

fn mgdd_net(sim: SimConfig, plan: FaultPlan) -> Network<MgddPayload, MgddNode> {
    let t = topo();
    let top = t.level_count() as u8;
    build_mgdd_network(t, &mgdd_config(), sim, plan, &[top]).unwrap()
}

/// Per node: `(node id, [(time, value bits, level)])`.
type DetectionTrace = Vec<(u32, Vec<(u64, Vec<u64>, u8)>)>;

fn d3_detections(net: &Network<D3Payload, D3Node>) -> DetectionTrace {
    net.apps()
        .map(|(node, app)| {
            (
                node.0,
                app.detections
                    .iter()
                    .map(|d| {
                        (
                            d.time_ns,
                            d.value.iter().map(|v| v.to_bits()).collect(),
                            d.level,
                        )
                    })
                    .collect(),
            )
        })
        .collect()
}

fn mgdd_detections(net: &Network<MgddPayload, MgddNode>) -> DetectionTrace {
    net.apps()
        .map(|(node, app)| {
            (
                node.0,
                app.detections
                    .iter()
                    .map(|d| {
                        (
                            d.time_ns,
                            d.value.iter().map(|v| v.to_bits()).collect(),
                            d.level,
                        )
                    })
                    .collect(),
            )
        })
        .collect()
}

fn assert_stats_identical(a: &NetStats, b: &NetStats) {
    assert_eq!(a, b, "network statistics diverged");
    assert_eq!(a.tx_joules.to_bits(), b.tx_joules.to_bits());
    assert_eq!(a.rx_joules.to_bits(), b.rx_joules.to_bits());
}

// ---------------------------------------------------------------- D3 --

#[test]
fn d3_faultless_resume_is_bit_identical() {
    let sim = SimConfig::default();
    let mut uninterrupted = d3_net(sim, FaultPlan::none());
    uninterrupted.run(&mut source, READINGS);

    let mut first = d3_net(sim, FaultPlan::none());
    first.run_until(&mut source, READINGS, CUT_NS);
    let snapshot = first.checkpoint();

    // A fresh process: build the same network, restore, run to the end.
    let mut resumed = d3_net(sim, FaultPlan::none());
    resumed.restore(&snapshot).unwrap();
    resumed.run_until(&mut source, READINGS, u64::MAX);

    assert_stats_identical(uninterrupted.stats(), resumed.stats());
    assert_eq!(d3_detections(&uninterrupted), d3_detections(&resumed));
}

#[test]
fn d3_resume_under_random_faults_is_bit_identical() {
    let (plan, sim) = random_faults(&topo());
    let mut uninterrupted = d3_net(sim, plan.clone());
    uninterrupted.run(&mut source, READINGS);
    assert!(
        uninterrupted.stats().dropped > 0 && uninterrupted.stats().retransmissions > 0,
        "the fault plan never bit — this test would prove nothing"
    );

    let mut first = d3_net(sim, plan.clone());
    first.run_until(&mut source, READINGS, CUT_NS);
    let snapshot = first.checkpoint();

    let mut resumed = d3_net(sim, plan);
    resumed.restore(&snapshot).unwrap();
    resumed.run_until(&mut source, READINGS, u64::MAX);

    assert_stats_identical(uninterrupted.stats(), resumed.stats());
    assert_eq!(d3_detections(&uninterrupted), d3_detections(&resumed));
}

#[test]
fn d3_checkpoint_is_deterministic_and_restartable_midway() {
    // checkpoint(k) → resume → checkpoint(k') must equal the bytes an
    // uninterrupted run writes at k': the snapshot itself is part of
    // the reproducible trace.
    let (plan, sim) = random_faults(&topo());
    let cut2 = 2 * HORIZON_NS / 3;

    let mut straight = d3_net(sim, plan.clone());
    straight.run_until(&mut source, READINGS, cut2);
    let golden = straight.checkpoint();

    let mut first = d3_net(sim, plan.clone());
    first.run_until(&mut source, READINGS, CUT_NS);
    let early = first.checkpoint();

    let mut resumed = d3_net(sim, plan);
    resumed.restore(&early).unwrap();
    resumed.run_until(&mut source, READINGS, cut2);
    assert_eq!(
        golden,
        resumed.checkpoint(),
        "a resumed run checkpoints differently from an uninterrupted one"
    );
}

#[test]
fn d3_checkpoint_restores_across_engine_parallelism() {
    // worker_threads is deliberately outside the compatibility
    // fingerprint: the engines are bit-identical, so a snapshot from a
    // sequential run must resume on the parallel engine (and agree).
    let mut first = d3_net(SimConfig::default(), FaultPlan::none());
    first.run_until(&mut source, READINGS, CUT_NS);
    let snapshot = first.checkpoint();

    let mut uninterrupted = d3_net(SimConfig::default(), FaultPlan::none());
    uninterrupted.run(&mut source, READINGS);

    let parallel_sim = SimConfig {
        worker_threads: 4,
        ..SimConfig::default()
    };
    let mut resumed = d3_net(parallel_sim, FaultPlan::none());
    resumed.restore(&snapshot).unwrap();
    resumed.run_until(&mut source, READINGS, u64::MAX);

    assert_stats_identical(uninterrupted.stats(), resumed.stats());
    assert_eq!(d3_detections(&uninterrupted), d3_detections(&resumed));
}

#[test]
fn d3_file_round_trip_is_atomic_and_bit_identical() {
    let dir = std::env::temp_dir().join("snod_ckpt_resume_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("d3.snodckpt");

    let mut uninterrupted = d3_net(SimConfig::default(), FaultPlan::none());
    uninterrupted.run(&mut source, READINGS);

    let mut first = d3_net(SimConfig::default(), FaultPlan::none());
    first.run_until(&mut source, READINGS, CUT_NS);
    first.checkpoint_to_file(&path).unwrap();

    // Atomic write: the finished file exists, its temp sibling does not.
    assert!(path.exists());
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
        .collect();
    assert!(leftovers.is_empty(), "temp file leaked: {leftovers:?}");

    let mut resumed = d3_net(SimConfig::default(), FaultPlan::none());
    resumed.restore_from_file(&path).unwrap();
    resumed.run_until(&mut source, READINGS, u64::MAX);

    assert_stats_identical(uninterrupted.stats(), resumed.stats());
    assert_eq!(d3_detections(&uninterrupted), d3_detections(&resumed));
    std::fs::remove_file(&path).ok();
}

// -------------------------------------------------------------- MGDD --

#[test]
fn mgdd_faultless_resume_is_bit_identical() {
    let sim = SimConfig::default();
    let mut uninterrupted = mgdd_net(sim, FaultPlan::none());
    uninterrupted.run(&mut source, READINGS);

    let mut first = mgdd_net(sim, FaultPlan::none());
    first.run_until(&mut source, READINGS, CUT_NS);
    let snapshot = first.checkpoint();

    let mut resumed = mgdd_net(sim, FaultPlan::none());
    resumed.restore(&snapshot).unwrap();
    resumed.run_until(&mut source, READINGS, u64::MAX);

    assert_stats_identical(uninterrupted.stats(), resumed.stats());
    assert_eq!(mgdd_detections(&uninterrupted), mgdd_detections(&resumed));
}

#[test]
fn mgdd_resume_under_random_faults_is_bit_identical() {
    let (plan, sim) = random_faults(&topo());
    let mut uninterrupted = mgdd_net(sim, plan.clone());
    uninterrupted.run(&mut source, READINGS);
    assert!(
        uninterrupted.stats().dropped > 0,
        "the fault plan never bit — this test would prove nothing"
    );

    let mut first = mgdd_net(sim, plan.clone());
    first.run_until(&mut source, READINGS, CUT_NS);
    let snapshot = first.checkpoint();

    let mut resumed = mgdd_net(sim, plan);
    resumed.restore(&snapshot).unwrap();
    resumed.run_until(&mut source, READINGS, u64::MAX);

    assert_stats_identical(uninterrupted.stats(), resumed.stats());
    assert_eq!(mgdd_detections(&uninterrupted), mgdd_detections(&resumed));
}

#[test]
fn mgdd_resume_with_warm_restart_policy_is_bit_identical() {
    // The warm-restart machinery (per-node app snapshots, recovery
    // deadlines) is itself part of the checkpoint; crossing a crash
    // window with a mid-run snapshot exercises all of it.
    let t = topo();
    let plan = FaultPlan::none().crash(t.root(), HORIZON_NS / 4, Some(HORIZON_NS / 2));
    let sim = SimConfig::default();
    let policy = RestartPolicy::Warm {
        checkpoint_every_ns: 20_000_000_000,
    };

    let mut uninterrupted = mgdd_net(sim, plan.clone()).with_restart_policy(policy);
    uninterrupted.run(&mut source, READINGS);
    assert!(
        uninterrupted.stats().warm_restarts > 0,
        "the crash never triggered a warm restart"
    );

    let mut first = mgdd_net(sim, plan.clone()).with_restart_policy(policy);
    first.run_until(&mut source, READINGS, CUT_NS);
    let snapshot = first.checkpoint();

    let mut resumed = mgdd_net(sim, plan).with_restart_policy(policy);
    resumed.restore(&snapshot).unwrap();
    resumed.run_until(&mut source, READINGS, u64::MAX);

    assert_stats_identical(uninterrupted.stats(), resumed.stats());
    assert_eq!(mgdd_detections(&uninterrupted), mgdd_detections(&resumed));
}

// ----------------------------------------------------- compatibility --

#[test]
fn restore_rejects_a_checkpoint_from_a_different_world() {
    let mut first = d3_net(SimConfig::default(), FaultPlan::none());
    first.run_until(&mut source, READINGS, CUT_NS);
    let snapshot = first.checkpoint();

    // Different topology.
    let other_topo = Hierarchy::balanced(8, &[2, 2, 2]).unwrap();
    let mut other =
        build_d3_network(other_topo, &d3_config(), SimConfig::default(), FaultPlan::none())
            .unwrap();
    assert!(matches!(
        other.restore(&snapshot),
        Err(PersistError::Corrupt(_))
    ));

    // Different fault plan.
    let (plan, _) = random_faults(&topo());
    let mut other = d3_net(SimConfig::default(), plan);
    assert!(matches!(
        other.restore(&snapshot),
        Err(PersistError::Corrupt(_))
    ));

    // Different sim config (loss probability participates in the trace).
    let mut other = d3_net(
        SimConfig::default().with_drop_probability(0.5),
        FaultPlan::none(),
    );
    assert!(matches!(
        other.restore(&snapshot),
        Err(PersistError::Corrupt(_))
    ));

    // A failed restore leaves the target untouched and runnable.
    let mut pristine = d3_net(SimConfig::default(), FaultPlan::none());
    let mut reference = d3_net(SimConfig::default(), FaultPlan::none());
    let other_topo = Hierarchy::balanced(8, &[2, 2, 2]).unwrap();
    let mut alien =
        build_d3_network(other_topo, &d3_config(), SimConfig::default(), FaultPlan::none())
            .unwrap();
    alien.run_until(&mut source, READINGS, CUT_NS);
    assert!(pristine.restore(&alien.checkpoint()).is_err());
    pristine.run(&mut source, READINGS);
    reference.run(&mut source, READINGS);
    assert_stats_identical(reference.stats(), pristine.stats());
}
