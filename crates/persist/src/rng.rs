//! Replayable randomness: an RNG whose state is `(seed, words drawn)`.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::codec::{ByteReader, ByteWriter, Persist};
use crate::error::PersistError;

/// A seeded word-stream RNG that counts its draws so it can be
/// checkpointed and restored exactly.
///
/// `StdRng` is a deterministic 32-bit word stream: every `RngCore`
/// method reduces to a sequence of word draws (`next_u64` is two,
/// `fill_bytes` one per 4-byte chunk), so the generator's state after
/// any history is a pure function of `(seed, words drawn)`. This
/// wrapper records exactly that pair; [`SeededRng::restore`] reseeds
/// and fast-forwards the stream, after which the restored generator
/// produces bit-for-bit the tail the original would have.
///
/// The wrapper delegates every draw to the inner generator, so swapping
/// `StdRng` for `SeededRng` changes no behaviour — only adds a counter.
#[derive(Debug, Clone)]
pub struct SeededRng {
    seed: u64,
    words: u64,
    inner: StdRng,
}

impl SeededRng {
    /// A fresh stream from `seed`, zero words drawn.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self {
            seed,
            words: 0,
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Rebuilds the stream state after `words` draws from `seed`, by
    /// reseeding and fast-forwarding. Each skipped word is one
    /// splitmix64 step, so even multi-million-draw histories replay in
    /// milliseconds.
    pub fn restore(seed: u64, words: u64) -> Self {
        let mut rng = Self::seed_from_u64(seed);
        for _ in 0..words {
            rng.inner.next_u32();
        }
        rng.words = words;
        rng
    }

    /// The stream's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// 32-bit words drawn so far.
    pub fn words_drawn(&self) -> u64 {
        self.words
    }
}

impl PartialEq for SeededRng {
    /// Two streams are equal when they will produce the same future
    /// draws — i.e. same seed, same position.
    fn eq(&self, other: &Self) -> bool {
        self.seed == other.seed && self.words == other.words
    }
}
impl Eq for SeededRng {}

impl RngCore for SeededRng {
    fn next_u32(&mut self) -> u32 {
        self.words += 1;
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.words += 2;
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.words += dest.len().div_ceil(4) as u64;
        self.inner.fill_bytes(dest);
    }
}

impl Persist for SeededRng {
    fn save(&self, w: &mut ByteWriter) {
        w.put_u64(self.seed);
        w.put_u64(self.words);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let seed = r.get_u64()?;
        let words = r.get_u64()?;
        Ok(Self::restore(seed, words))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn wrapper_matches_raw_stdrng() {
        let mut raw = StdRng::seed_from_u64(42);
        let mut wrapped = SeededRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(raw.next_u32(), wrapped.next_u32());
            assert_eq!(raw.next_u64(), wrapped.next_u64());
            assert_eq!(raw.gen::<f64>(), wrapped.gen::<f64>());
            assert_eq!(raw.gen_range(0..17u64), wrapped.gen_range(0..17u64));
        }
        let mut a = [0u8; 7];
        let mut b = [0u8; 7];
        raw.fill_bytes(&mut a);
        wrapped.fill_bytes(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn restore_continues_the_exact_stream() {
        let mut original = SeededRng::seed_from_u64(7);
        for _ in 0..123 {
            original.gen::<f64>();
        }
        original.next_u32(); // odd word count: mid-u64 position
        let mut resumed = SeededRng::restore(original.seed(), original.words_drawn());
        for _ in 0..50 {
            assert_eq!(original.next_u64(), resumed.next_u64());
            assert_eq!(original.gen_range(0..1000u64), resumed.gen_range(0..1000u64));
        }
    }

    #[test]
    fn persist_roundtrip_preserves_position() {
        let mut rng = SeededRng::seed_from_u64(99);
        let mut bytes = [0u8; 13];
        rng.fill_bytes(&mut bytes); // 4 words (partial chunk counts)
        assert_eq!(rng.words_drawn(), 4);
        let mut copy = SeededRng::from_bytes(&rng.to_bytes()).unwrap();
        assert_eq!(copy, rng);
        assert_eq!(rng.next_u64(), copy.next_u64());
    }
}
