//! Plain-text result tables for the figure binaries.
//!
//! Every experiment binary prints the same rows/series the paper's
//! figures plot, as aligned text tables — easy to diff against
//! `EXPERIMENTS.md` and to paste into plotting tools.

/// A simple aligned table builder.
#[derive(Debug, Default, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (j, cell) in row.iter().enumerate().take(cols) {
                widths[j] = widths[j].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats a float with the given number of decimals.
pub fn num(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["long-name", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].ends_with("22"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.9415), "94.2%");
        assert_eq!(num(1.23456, 2), "1.23");
    }
}
