//! Minimal scrape endpoint: `/metrics` (the `snod-obs` snapshot),
//! `/healthz` (daemon health counters) and `/escalations` (recent
//! escalation ring). Hand-rolled HTTP/1.1, connection-per-request,
//! no external dependencies — the same spirit as the rest of the
//! workspace.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use crate::daemon::Inner;

pub(crate) fn metrics_loop(inner: Arc<Inner>, listener: TcpListener) {
    loop {
        if inner.shutdown.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => serve_request(&inner, stream),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(100)),
        }
    }
}

fn serve_request(inner: &Arc<Inner>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    // Read until the end of the request head; body-less GETs only.
    while buf.len() < 4096 && !buf.windows(4).any(|w| w == b"\r\n\r\n") {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let path = head
        .lines()
        .next()
        .and_then(|line| {
            let mut parts = line.split_whitespace();
            match (parts.next(), parts.next()) {
                (Some("GET"), Some(p)) => Some(p.to_string()),
                _ => None,
            }
        })
        .unwrap_or_default();
    let (status, body) = match path.as_str() {
        "/metrics" => ("200 OK", snod_obs::snapshot().to_json()),
        "/healthz" => ("200 OK", healthz_json(inner)),
        "/escalations" => ("200 OK", escalations_json(inner)),
        "" => ("400 Bad Request", "{\"error\":\"bad request\"}".to_string()),
        _ => ("404 Not Found", "{\"error\":\"not found\"}".to_string()),
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

fn healthz_json(inner: &Arc<Inner>) -> String {
    let s = inner.snapshot();
    format!(
        concat!(
            "{{\"status\":\"ok\",\"tenants\":{},\"queued\":{},\"shed\":{},",
            "\"duplicates\":{},\"reconnects\":{},\"worker_restarts\":{},",
            "\"wire_errors\":{},\"frames\":{},\"connections\":{},",
            "\"slow_loris_drops\":{},\"checkpoints\":{},\"escalations\":{}}}"
        ),
        s.tenants,
        s.queued,
        s.shed,
        s.duplicates,
        s.reconnects,
        s.worker_restarts,
        s.wire_errors,
        s.frames,
        s.connections,
        s.slow_loris_drops,
        s.checkpoints,
        s.escalations,
    )
}

fn escalations_json(inner: &Arc<Inner>) -> String {
    let recs = inner.esc_log.recent();
    let mut out = String::from("[");
    for (i, r) in recs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"tenant\":\"{}\",\"node\":{},\"time_ns\":{},\"level\":{}}}",
            r.tenant, r.node, r.time_ns, r.level
        ));
    }
    out.push(']');
    out
}
