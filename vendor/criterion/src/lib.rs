//! Offline API-compatible subset of `criterion` 0.5.
//!
//! Keeps this workspace's `[[bench]]` targets compiling and runnable
//! without the crates.io dependency tree. Statistical machinery
//! (bootstrap, outlier classification, HTML reports) is replaced by a
//! best-of-N wall-clock measurement printed per benchmark — enough for
//! smoke runs; authoritative numbers come from `bench_kde_snapshot`
//! and friends. See `vendor/README.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(400),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration before measurement.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the target measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the number of samples taken per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, id, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Records the work per iteration (accepted and ignored here).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(self.criterion, &full, &mut f);
        self
    }

    /// Runs a parameterised benchmark inside the group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(self.criterion, &full, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (upstream finalises reports; nothing to do here).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion of `BenchmarkId` or plain strings into an id string.
pub trait IntoBenchmarkId {
    /// The rendered identifier.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Units of work per iteration (reporting hint; unused by this shim).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    best: Duration,
}

impl Bencher {
    /// Times `routine`, keeping the best (lowest-noise) sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up call, then `samples` timed calls keeping
        // the minimum — the same best-of-N estimator the snapshot
        // binaries use, scaled down for smoke runs.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed();
            if elapsed < self.best {
                self.best = elapsed;
            }
        }
    }
}

fn run_one(c: &Criterion, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    // warm_up_time / measurement_time shape upstream's adaptive
    // schedule; here they only bound the sample count so quick configs
    // stay quick.
    let samples = c.sample_size.clamp(2, 16);
    let mut b = Bencher {
        samples,
        best: Duration::MAX,
    };
    f(&mut b);
    println!("bench: {id:<50} {:>12.1?}/iter (best of {samples})", b.best);
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grouped");
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("param", 3), &3usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.bench_function(BenchmarkId::from_parameter(9), |b| b.iter(|| 9));
        group.finish();
    }

    criterion_group! {
        name = smoke;
        config = Criterion::default().sample_size(2);
        targets = target
    }

    #[test]
    fn group_macro_and_harness_run() {
        smoke();
    }
}
