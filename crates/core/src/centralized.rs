//! The centralized baseline (paper Sections 8.1 and 10.3, Figure 11).
//!
//! *"a centralized method, where all the observations from all the
//! sensors are communicated to the leader at the highest level, where the
//! … outliers are detected."*  Every reading is relayed hop-by-hop up the
//! hierarchy; the root maintains an exact union window
//! ([`snod_outlier::ExactWindowDetector`]) and flags `(D, r)`-outliers
//! with the density-scaled threshold. This is the accuracy gold standard
//! and the communication worst case.

use snod_outlier::{DistanceOutlierConfig, ExactWindowDetector};
use snod_simnet::{
    Ctx, DetectorEngine, FaultPlan, Hierarchy, Network, NodeId, SimConfig, StreamSource, Wire,
};

use crate::config::CoreError;
use crate::d3::Detection;

/// Centralized wire message: one raw reading.
#[derive(Debug, Clone)]
pub struct CentralizedPayload(pub Vec<f64>);

impl Wire for CentralizedPayload {
    fn size_bytes(&self) -> usize {
        self.0.len() * 2
    }
}

/// Per-node state: leaves/relays just forward; the root detects.
pub struct CentralizedNode {
    role: Role,
    /// Outliers flagged at the root.
    pub detections: Vec<Detection>,
}

enum Role {
    Relay,
    Root {
        window: ExactWindowDetector,
        rule: DistanceOutlierConfig,
        level: u8,
        warmup: usize,
        /// Per-leaf window `|W|`: the threshold scales with
        /// `|W_union|/|W|` so the density bar matches the per-sensor rule.
        window_per_leaf: usize,
    },
}

impl CentralizedNode {
    /// Builds the node: the hierarchy root becomes the detector with an
    /// exact union window of `window_per_leaf · leaf_count` readings.
    pub fn new(
        node: NodeId,
        topo: &Hierarchy,
        rule: DistanceOutlierConfig,
        window_per_leaf: usize,
    ) -> Self {
        let role = if node == topo.root() && topo.node_count() > 1 {
            let leaves = topo.leaves().len();
            Role::Root {
                window: ExactWindowDetector::new(rule.radius, window_per_leaf * leaves),
                rule,
                level: topo.level_of(node),
                warmup: (window_per_leaf * leaves) / 2,
                window_per_leaf,
            }
        } else {
            Role::Relay
        };
        Self {
            role,
            detections: Vec::new(),
        }
    }

    /// The root's exact window (None at relays) — for tests.
    pub fn window_len(&self) -> Option<usize> {
        match &self.role {
            Role::Root { window, .. } => Some(window.len()),
            Role::Relay => None,
        }
    }

    fn consume(&mut self, time_ns: u64, value: &[f64]) {
        if let Role::Root {
            window,
            rule,
            level,
            warmup,
            window_per_leaf,
        } = &mut self.role
        {
            window.push(value.to_vec());
            if window.len() >= *warmup {
                // Density-scaled threshold over the union window; the
                // value itself was just pushed and is discounted.
                let scaled = DistanceOutlierConfig {
                    radius: rule.radius,
                    min_neighbors: rule.min_neighbors * window.len() as f64
                        / *window_per_leaf as f64,
                };
                if window.is_outlier_indexed(value, &scaled) {
                    self.detections.push(Detection {
                        time_ns,
                        value: value.to_vec(),
                        level: *level,
                    });
                }
            }
        }
    }
}

impl DetectorEngine<CentralizedPayload> for CentralizedNode {
    fn ingest(&mut self, ctx: &mut Ctx<'_, CentralizedPayload>, value: &[f64]) {
        // A leaf that is also the root (single-node network) detects
        // directly; otherwise every reading goes upward.
        if !ctx.send_parent(CentralizedPayload(value.to_vec())) {
            self.consume(ctx.time_ns, value);
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, CentralizedPayload>,
        _from: NodeId,
        payload: CentralizedPayload,
    ) {
        if !ctx.send_parent(CentralizedPayload(payload.0.clone())) {
            self.consume(ctx.time_ns, &payload.0);
        }
    }
}

/// Runs the centralized baseline.
pub fn run_centralized<S: StreamSource>(
    topo: Hierarchy,
    rule: DistanceOutlierConfig,
    window_per_leaf: usize,
    sim: SimConfig,
    source: &mut S,
    readings_per_leaf: u64,
) -> Result<Network<CentralizedPayload, CentralizedNode>, CoreError> {
    run_centralized_with_faults(
        topo,
        rule,
        window_per_leaf,
        sim,
        FaultPlan::none(),
        source,
        readings_per_leaf,
    )
}

/// Runs the centralized baseline under a fault schedule (raw readings
/// stay on the best-effort channel: the baseline has no retry budget to
/// spend on each of its per-hop relays). With [`FaultPlan::none()`]
/// this is bit-identical to [`run_centralized`].
pub fn run_centralized_with_faults<S: StreamSource>(
    topo: Hierarchy,
    rule: DistanceOutlierConfig,
    window_per_leaf: usize,
    sim: SimConfig,
    plan: FaultPlan,
    source: &mut S,
    readings_per_leaf: u64,
) -> Result<Network<CentralizedPayload, CentralizedNode>, CoreError> {
    if window_per_leaf == 0 {
        return Err(CoreError::Config("window per leaf must be positive"));
    }
    let mut net = Network::new(topo, sim, |node, topo| {
        CentralizedNode::new(node, topo, rule, window_per_leaf)
    })
    .with_fault_plan(plan);
    net.run(source, readings_per_leaf);
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_sees_every_reading() {
        let topo = Hierarchy::balanced(4, &[2, 2]).unwrap();
        let rule = DistanceOutlierConfig::new(5.0, 0.02);
        let mut source = |_: NodeId, seq: u64| Some(vec![0.5 + 0.001 * (seq % 10) as f64]);
        let net = run_centralized(topo, rule, 100, SimConfig::default(), &mut source, 50).unwrap();
        let root = net.topology().root();
        assert_eq!(net.app(root).window_len(), Some(200)); // 4 leaves × 50
    }

    #[test]
    fn detects_rare_values_exactly() {
        let topo = Hierarchy::balanced(4, &[4]).unwrap();
        let rule = DistanceOutlierConfig::new(5.0, 0.02);
        let mut source = |node: NodeId, seq: u64| {
            if node.0 == 2 && seq == 180 {
                Some(vec![0.95])
            } else {
                Some(vec![0.5 + 0.002 * ((seq % 8) as f64)])
            }
        };
        let net = run_centralized(topo, rule, 100, SimConfig::default(), &mut source, 200).unwrap();
        let root = net.topology().root();
        let dets = &net.app(root).detections;
        assert_eq!(dets.len(), 1, "detections: {dets:?}");
        assert!((dets[0].value[0] - 0.95).abs() < 1e-9);
    }

    #[test]
    fn message_cost_is_one_per_reading_per_hop() {
        let topo = Hierarchy::balanced(8, &[4, 2]).unwrap(); // 3 levels
        let rule = DistanceOutlierConfig::new(5.0, 0.02);
        let mut source = |_: NodeId, _: u64| Some(vec![0.5]);
        let net = run_centralized(topo, rule, 50, SimConfig::default(), &mut source, 100).unwrap();
        // 8 leaves × 100 readings × 2 hops (leaf→L2→root) = 1600 msgs.
        assert_eq!(net.stats().messages, 1_600);
    }

    #[test]
    fn zero_window_is_rejected() {
        let topo = Hierarchy::balanced(2, &[2]).unwrap();
        let rule = DistanceOutlierConfig::new(5.0, 0.02);
        let mut source = |_: NodeId, _: u64| Some(vec![0.5]);
        assert!(run_centralized(topo, rule, 0, SimConfig::default(), &mut source, 10).is_err());
    }
}
