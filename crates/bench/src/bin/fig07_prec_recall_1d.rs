//! **Figure 7**: precision and recall on the 1-d synthetic workload for
//! D3 and MGDD, Kernel vs Histogram estimators, hierarchy levels 1–4,
//! while varying the representation memory `|R|` (or `|B|`) over
//! `{0.0125, 0.025, 0.05}·|W|`.
//!
//! Paper setup (§10.2): 32 leaf streams under 3 leader tiers,
//! `|W| = 10,000`, `f = 0.5`, `(45, 0.01)`-outliers for D3, MDEF with
//! `r = 0.08`, `αr = 0.01`, `k_σ = 3`, 12-run averages.
//!
//! Environment knobs (for quicker smoke runs):
//! `FIG_RUNS` (default 3), `FIG_WINDOW` (default 10000),
//! `FIG_EVAL` (default 1000), `FIG_LEAVES` (default 32).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use snod_bench::accuracy::{run_accuracy, AccuracyConfig, AlgorithmKind, EstimatorKind};
use snod_bench::report::{pct, Table};
use snod_data::GaussianMixtureStream;

/// Per-sensor stream: the paper selects each sensor's cluster means "at
/// random from (0.3, 0.35, 0.45)" and stresses that "each sensor sees a
/// different set of data" — modelled as per-sensor random mixture
/// weights over the three shared means.
pub fn sensor_stream(dims: usize, run: u64, sensor: usize) -> GaussianMixtureStream {
    let seed = 0xF1607 + run * 10_007 + sensor as u64;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    let weights = [
        rng.gen_range(0.55..1.45),
        rng.gen_range(0.55..1.45),
        rng.gen_range(0.55..1.45),
    ];
    GaussianMixtureStream::new(dims, seed).with_weights(weights)
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let runs = env_u64("FIG_RUNS", 3);
    let window = env_u64("FIG_WINDOW", 10_000) as usize;
    let eval = env_u64("FIG_EVAL", 1_000);
    let leaves = env_u64("FIG_LEAVES", 32) as usize;

    let fractions = [0.0125f64, 0.025, 0.05];
    println!(
        "Figure 7 — 1-d synthetic, |W|={window}, f=0.5, {leaves} leaves, {runs} runs, eval {eval}/leaf"
    );

    let mut d3_prec = Table::new(["|R|/|W|", "estimator", "L1", "L2", "L3", "L4"]);
    let mut d3_rec = Table::new(["|R|/|W|", "estimator", "L1", "L2", "L3", "L4"]);
    let mut mgdd_prec = Table::new(["|R|/|W|", "estimator", "L2", "L3", "L4"]);
    let mut mgdd_rec = Table::new(["|R|/|W|", "estimator", "L2", "L3", "L4"]);

    for &frac in &fractions {
        let mut cfg = AccuracyConfig::paper_defaults_1d();
        cfg.leaves = leaves;
        cfg.window = window;
        cfg.sample_size = ((window as f64) * frac).round() as usize;
        cfg.eval = eval;
        cfg.warmup = window as u64;
        cfg.runs = runs;
        cfg.with_histograms = true;
        let results = run_accuracy(&cfg, |run, sensor| sensor_stream(1, run, sensor));

        for est in [EstimatorKind::Kernel, EstimatorKind::Histogram] {
            let name = match est {
                EstimatorKind::Kernel => "kernel",
                EstimatorKind::Histogram => "histogram",
            };
            let cell = |alg: AlgorithmKind, level: u8, precision: bool| -> String {
                results
                    .series
                    .get(&(alg, est, level))
                    .map(|pr| {
                        pct(if precision {
                            pr.precision()
                        } else {
                            pr.recall()
                        })
                    })
                    .unwrap_or_else(|| "-".into())
            };
            d3_prec.row([
                format!("{frac}"),
                name.into(),
                cell(AlgorithmKind::D3, 1, true),
                cell(AlgorithmKind::D3, 2, true),
                cell(AlgorithmKind::D3, 3, true),
                cell(AlgorithmKind::D3, 4, true),
            ]);
            d3_rec.row([
                format!("{frac}"),
                name.into(),
                cell(AlgorithmKind::D3, 1, false),
                cell(AlgorithmKind::D3, 2, false),
                cell(AlgorithmKind::D3, 3, false),
                cell(AlgorithmKind::D3, 4, false),
            ]);
            mgdd_prec.row([
                format!("{frac}"),
                name.into(),
                cell(AlgorithmKind::Mgdd, 2, true),
                cell(AlgorithmKind::Mgdd, 3, true),
                cell(AlgorithmKind::Mgdd, 4, true),
            ]);
            mgdd_rec.row([
                format!("{frac}"),
                name.into(),
                cell(AlgorithmKind::Mgdd, 2, false),
                cell(AlgorithmKind::Mgdd, 3, false),
                cell(AlgorithmKind::Mgdd, 4, false),
            ]);
        }
        println!(
            "  |R|={}  scored={}  true-D/level={:?}  true-M/level={:?}",
            cfg.sample_size, results.scored, results.true_dist, results.true_mdef
        );
    }

    println!("\n(a) D3 precision\n{}", d3_prec.render());
    println!("(b) D3 recall\n{}", d3_rec.render());
    println!("(c) MGDD precision\n{}", mgdd_prec.render());
    println!("(d) MGDD recall\n{}", mgdd_rec.render());
}
