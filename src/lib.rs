//! # sensor-outliers
//!
//! Rust reproduction of *"Online Outlier Detection in Sensor Data Using
//! Non-Parametric Models"* (Subramaniam, Palpanas, Papadopoulos,
//! Kalogeraki, Gunopulos — VLDB 2006).
//!
//! The workspace implements the paper's full stack and this façade crate
//! re-exports the pieces a downstream user needs:
//!
//! * [`sketch`] — streaming summaries per sensor: chain sampling over
//!   sliding windows, ε-approximate windowed variance, exponential
//!   histograms, GK quantiles.
//! * [`density`] — the non-parametric distribution-approximation
//!   framework: Epanechnikov kernel density estimators, range queries
//!   `N(p, r)`, histograms, Jensen–Shannon divergence.
//! * [`outlier`] — outlier definitions and detectors: distance-based
//!   `(D, r)`-outliers, MDEF/aLOCI local-metric outliers, exact
//!   brute-force baselines, precision/recall scoring.
//! * [`simnet`] — a discrete-event sensor-network simulator with the
//!   paper's tiered virtual-grid hierarchy and message/energy accounting.
//! * [`robust`] — robust/non-parametric detector substrates beyond the
//!   paper: the streaming Q_n scale estimator and MMDEW, MMD-based
//!   change detection over exponential windows.
//! * [`core`] — the paper's algorithms D3 (distributed distance-based
//!   deviation detection) and MGDD (multi-granular MDEF detection), the
//!   centralized baseline and §9 applications, plus the pluggable
//!   [`core::DetectorBackend`] recipes (D3, MGDD, FQN, MMDEW).
//! * [`data`] — the evaluation workloads: the synthetic Gaussian-mixture
//!   streams and calibrated stand-ins for the paper's proprietary engine
//!   and Pacific-Northwest environmental datasets.
//!
//! Beyond the paper's letter the workspace also provides the substrates
//! and extensions it points at: TAG-style in-network aggregation
//! ([`simnet::TagNode`]), leader election and rotation
//! ([`simnet::Electorate`]), radio loss and node-failure injection
//! ([`simnet::SimConfig`]), the full multi-granularity aLOCI
//! ([`outlier::AlociTree`]), a Haar-wavelet synopsis baseline
//! ([`density::WaveletHistogram`]), sliding-window quantiles
//! ([`sketch::WindowedQuantile`]), spatio-temporal range queries
//! ([`core::TimeSlicedEstimator`]), the distributed faulty-sensor
//! monitor ([`core::run_monitor`]), and an exact grid-indexed window
//! detector ([`outlier::ExactWindowDetector`]).
//!
//! ## Quickstart
//!
//! Detect `(D, r)`-outliers on a single sensor stream:
//!
//! ```
//! use sensor_outliers::core::{SensorEstimator, EstimatorConfig};
//! use sensor_outliers::outlier::DistanceOutlierConfig;
//!
//! let cfg = EstimatorConfig::builder()
//!     .window(1_000)
//!     .sample_size(100)
//!     .dimensions(1)
//!     .seed(7)
//!     .build()
//!     .unwrap();
//! let mut est = SensorEstimator::new(cfg);
//! let rule = DistanceOutlierConfig { radius: 0.05, min_neighbors: 20.0 };
//!
//! // A tight cluster around 0.5 …
//! for i in 0..1_000 {
//!     est.observe(&[0.5 + 0.01 * ((i % 7) as f64 - 3.0)]).unwrap();
//! }
//! // … makes a far-away reading an outlier, and a nearby one not.
//! assert!(est.is_distance_outlier(&[0.95], &rule).unwrap());
//! assert!(!est.is_distance_outlier(&[0.5], &rule).unwrap());
//! ```

pub use snod_core as core;
pub use snod_data as data;
pub use snod_density as density;
pub use snod_outlier as outlier;
pub use snod_persist as persist;
pub use snod_robust as robust;
pub use snod_simnet as simnet;
pub use snod_sketch as sketch;
