//! Integration tests for the network services around the outlier
//! pipelines: TAG aggregation, the distributed faulty-sensor monitor,
//! and their behaviour under radio loss.

use sensor_outliers::core::{run_monitor, EstimatorConfig, MonitorConfig};
use sensor_outliers::data::{EnvironmentStream, SensorStreams};
use sensor_outliers::simnet::{Aggregate, Hierarchy, Network, NodeId, SimConfig, TagNode};

#[test]
fn tag_aggregation_tracks_environmental_averages() {
    let topo = Hierarchy::balanced(8, &[4, 2]).unwrap();
    let mut net = Network::new(topo, SimConfig::default(), |n, t| {
        TagNode::new(n, t, 50, 0) // aggregate the pressure coordinate
    });
    let mut streams = SensorStreams::generate(8, |i| EnvironmentStream::new(200 + i as u64));
    let topo2 = net.topology().clone();
    let mut source = move |node: NodeId, _seq: u64| {
        let leaf = topo2.leaves().iter().position(|&l| l == node)?;
        Some(streams.next_for(leaf))
    };
    net.run(&mut source, 500);
    let root = net.topology().root();
    let results = &net.app(root).results;
    assert_eq!(results.len(), 10, "10 epochs of 50 readings");
    for (epoch, state) in results {
        assert_eq!(state.count, 400.0, "epoch {epoch}");
        let avg = state.eval(Aggregate::Avg).unwrap();
        // Environmental pressure lives around 0.68.
        assert!((avg - 0.68).abs() < 0.1, "epoch {epoch}: avg {avg}");
        assert!(state.eval(Aggregate::Min).unwrap() <= avg);
        assert!(state.eval(Aggregate::Max).unwrap() >= avg);
    }
}

#[test]
fn monitor_blames_the_stuck_sensor_over_the_network() {
    let topo = Hierarchy::balanced(4, &[4]).unwrap();
    let cfg = MonitorConfig {
        estimator: EstimatorConfig::builder()
            .window(600)
            .sample_size(80)
            .dimensions(2)
            .seed(9)
            .build()
            .unwrap(),
        report_every: 150,
        threshold: 0.3,
        grid_k: 16,
        staleness_bound_ns: None,
    };
    // Sibling sensors observe the same regional weather, differing only
    // by instrument noise — healthy models agree, so the stuck one
    // stands out.
    let mut streams =
        SensorStreams::generate(4, |i| EnvironmentStream::for_region(300, 400 + i as u64));
    let topo2 = topo.clone();
    let mut source = move |node: NodeId, seq: u64| {
        let leaf = topo2.leaves().iter().position(|&l| l == node)?;
        let mut v = streams.next_for(leaf);
        if leaf == 1 && seq > 1_200 {
            v[1] = 0.282; // dew-point element stuck at its ceiling
        }
        Some(v)
    };
    let net = run_monitor(topo, &cfg, SimConfig::default(), &mut source, 3_000).unwrap();
    let root = net.topology().root();
    let alarms = &net.app(root).alarms;
    assert!(!alarms.is_empty(), "stuck sensor never flagged");
    assert!(
        alarms.iter().all(|a| a.child == NodeId(1)),
        "wrong sensor blamed: {alarms:?}"
    );
}

#[test]
fn tag_under_loss_never_overcounts() {
    let topo = Hierarchy::balanced(8, &[4, 2]).unwrap();
    let sim = SimConfig::default().with_drop_probability(0.2);
    let mut net = Network::new(topo, sim, |n, t| TagNode::new(n, t, 25, 0));
    let mut source = |_: NodeId, _: u64| Some(vec![0.5]);
    net.run(&mut source, 250);
    let root = net.topology().root();
    let results = &net.app(root).results;
    assert!(!results.is_empty(), "loss silenced aggregation entirely");
    for (_, state) in results {
        assert!(state.count <= 200.0, "overcount: {}", state.count);
        if let Some(avg) = state.eval(Aggregate::Avg) {
            assert!((avg - 0.5).abs() < 1e-9);
        }
    }
    assert!(net.stats().dropped > 0);
}
