//! Scaling snapshot for the simulator at 1k/10k/50k leaves, written to
//! `BENCH_scale.json` in the working directory.
//!
//! Each row drives a [`Hierarchy::deep`] 4–5-tier topology with the
//! parallel engine and a cheap counting-relay detector, so the numbers
//! measure the *dispatch machinery* — the slab event queue, CSR
//! topology walks, batch grouping and the reusable batch buffers — not
//! KDE math (BENCH_kde.json owns that). Reported per shape:
//!
//! * `readings_per_sec` — leaf readings processed per wall second,
//!   including all relayed traffic up the tree.
//! * `bytes_per_node` — network payload bytes transmitted per node.
//! * `checkpoint_bytes` / `checkpoint_ms` / `restore_ms` — full-network
//!   snapshot cost at scale (queue, RNG streams, stats, every app).
//!
//! `SNOD_BENCH_SMOKE=1` keeps the same three shapes but one reading
//! per leaf — a CI-speed structural check emitting the same schema.

use std::time::Instant;

use snod_persist::{ByteReader, ByteWriter, Persist, PersistError};
use snod_simnet::{DetectorEngine, EngineCtx, Hierarchy, Network, NodeId, SimConfig};

/// Counting relay: leaves push readings up, leaders forward every
/// second message — every tier stays busy, no model math.
#[derive(Debug, Default, Clone)]
struct Relay {
    readings: u64,
    received: u64,
    forwarded: u64,
}

impl DetectorEngine<Vec<f64>> for Relay {
    fn ingest(&mut self, ctx: &mut EngineCtx<'_, Vec<f64>>, value: &[f64]) {
        self.readings += 1;
        ctx.send_parent(value.to_vec());
    }

    fn on_message(&mut self, ctx: &mut EngineCtx<'_, Vec<f64>>, _from: NodeId, payload: Vec<f64>) {
        self.received += 1;
        if self.received.is_multiple_of(2) && ctx.send_parent(payload) {
            self.forwarded += 1;
        }
    }
}

impl Persist for Relay {
    fn save(&self, w: &mut ByteWriter) {
        self.readings.save(w);
        self.received.save(w);
        self.forwarded.save(w);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            readings: u64::load(r)?,
            received: u64::load(r)?,
            forwarded: u64::load(r)?,
        })
    }
}

struct Row {
    leaves: usize,
    tiers: usize,
    nodes: usize,
    readings_per_leaf: u64,
    readings_per_sec: f64,
    bytes_per_node: f64,
    checkpoint_bytes: usize,
    checkpoint_ms: f64,
    restore_ms: f64,
}

fn source(node: NodeId, seq: u64) -> Option<Vec<f64>> {
    Some(vec![node.0 as f64 + seq as f64 * 0.001])
}

fn measure(leaves: usize, tiers: usize, readings: u64) -> Row {
    let topo = Hierarchy::deep(leaves, tiers).expect("deep topology");
    let nodes = topo.node_count();
    let sim = SimConfig {
        stagger_readings: false,
        ..SimConfig::default()
    }
    .with_drop_probability(0.05)
    .with_worker_threads(4);
    let mut net = Network::new(topo, sim, |_, _| Relay::default());

    let mut src = source;
    let t0 = Instant::now();
    net.run(&mut src, readings);
    let run_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let bytes = net.checkpoint();
    let checkpoint_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    net.restore(&bytes).expect("own checkpoint restores");
    let restore_ms = t0.elapsed().as_secs_f64() * 1e3;

    Row {
        leaves,
        tiers,
        nodes,
        readings_per_leaf: readings,
        readings_per_sec: leaves as f64 * readings as f64 / run_s,
        bytes_per_node: net.stats().bytes as f64 / nodes as f64,
        checkpoint_bytes: bytes.len(),
        checkpoint_ms,
        restore_ms,
    }
}

fn main() {
    let smoke = std::env::var("SNOD_BENCH_SMOKE").is_ok();
    let readings: u64 = if smoke { 1 } else { 20 };
    let shapes = [(1_000usize, 4usize), (10_000, 5), (50_000, 5)];

    let rows: Vec<Row> = shapes
        .iter()
        .map(|&(leaves, tiers)| {
            let row = measure(leaves, tiers, readings);
            eprintln!(
                "{leaves} leaves / {tiers} tiers ({} nodes): {:.0} readings/s, \
                 {:.1} bytes/node, checkpoint {} B in {:.1} ms, restore {:.1} ms",
                row.nodes,
                row.readings_per_sec,
                row.bytes_per_node,
                row.checkpoint_bytes,
                row.checkpoint_ms,
                row.restore_ms,
            );
            row
        })
        .collect();

    let mut json = format!("{{\n  \"smoke\": {smoke},\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"leaves\": {}, \"tiers\": {}, \"nodes\": {}, \
             \"readings_per_leaf\": {}, \"readings_per_sec\": {:.1}, \
             \"bytes_per_node\": {:.1}, \"checkpoint_bytes\": {}, \
             \"checkpoint_ms\": {:.2}, \"restore_ms\": {:.2}}}{}\n",
            r.leaves,
            r.tiers,
            r.nodes,
            r.readings_per_leaf,
            r.readings_per_sec,
            r.bytes_per_node,
            r.checkpoint_bytes,
            r.checkpoint_ms,
            r.restore_ms,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_scale.json", &json).expect("write BENCH_scale.json");
    print!("{json}");
}
