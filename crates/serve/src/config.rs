//! Daemon and per-tenant configuration.

use std::path::PathBuf;
use std::time::Duration;

use snod_core::{
    build_backend_live, build_d3_live, BackendKind, D3Backend, D3Config, D3Node, D3Payload,
    DetectorBackend, EstimatorConfig, FqnBackend, FqnConfig, MmdewBackend, MmdewNodeConfig,
};
use snod_engine::{FaultPlan, Hierarchy, LiveRuntime, SimConfig};
use snod_outlier::DistanceOutlierConfig;

use crate::error::ServeError;

/// Detector parameters stamped onto every tenant the daemon creates.
///
/// Each tenant runs its own detector hierarchy (default: a single node
/// — one sensor stream scored against its own model; multi-leaf tenants
/// get the full leaf/leader escalation protocol). The `detector` field
/// picks the backend: D3's kernel-density distance rule (the default),
/// FQN's robust `median ± k·Q_n` rule, or MMDEW distribution-shift
/// alarms.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Leaf sensors per tenant.
    pub leaves: usize,
    /// Hierarchy fan-outs above the leaves (empty = leaves report to
    /// nobody: a single node when `leaves == 1`).
    pub fanouts: Vec<usize>,
    /// Sliding window size `|W|`.
    pub window: usize,
    /// Chain-sample size `|R|`.
    pub sample_size: usize,
    /// Distance-outlier radius `r`.
    pub radius: f64,
    /// Distance-outlier neighbor threshold `t`.
    pub min_neighbors: f64,
    /// Sample-forwarding fraction `f`.
    pub sample_fraction: f64,
    /// Base RNG seed (decorrelated per node, as everywhere else).
    pub seed: u64,
    /// Stream period: reading `seq` of a leaf carries stream time
    /// `phase + seq·period`.
    pub reading_period_ns: u64,
    /// Which detector backend every tenant runs. The daemon supports
    /// `D3`, `Fqn` and `Mmdew` (MGDD needs MDEF parameters the spec
    /// does not carry).
    pub detector: BackendKind,
    /// FQN threshold scale: flag when `|x − median| > k·Q_n`.
    pub k_scale: f64,
    /// MMDEW threshold scale `c` in `τ = c·√(1/n + 1/m)`.
    pub threshold_scale: f64,
}

impl Default for TenantSpec {
    fn default() -> Self {
        Self {
            leaves: 1,
            fanouts: Vec::new(),
            window: 256,
            sample_size: 32,
            radius: 0.02,
            min_neighbors: 10.0,
            sample_fraction: 0.5,
            seed: 7,
            reading_period_ns: 1_000_000_000,
            detector: BackendKind::D3,
            k_scale: 4.0,
            threshold_scale: 0.6,
        }
    }
}

impl TenantSpec {
    /// The tenant's hierarchy.
    pub fn topology(&self) -> Result<Hierarchy, ServeError> {
        Hierarchy::balanced(self.leaves, &self.fanouts)
            .map_err(|e| ServeError::Config(format!("tenant topology: {e}")))
    }

    /// The derived D3 configuration.
    pub fn d3_config(&self) -> Result<D3Config, ServeError> {
        let estimator = EstimatorConfig::builder()
            .window(self.window)
            .sample_size(self.sample_size)
            .seed(self.seed)
            .build()
            .map_err(|e| ServeError::Config(format!("tenant estimator: {e}")))?;
        Ok(D3Config {
            estimator,
            rule: DistanceOutlierConfig::new(self.min_neighbors, self.radius),
            sample_fraction: self.sample_fraction,
        })
    }

    /// The derived driver configuration.
    pub fn sim_config(&self) -> SimConfig {
        SimConfig {
            reading_period_ns: self.reading_period_ns,
            ..SimConfig::default()
        }
    }

    /// The derived FQN configuration.
    pub fn fqn_config(&self) -> Result<FqnConfig, ServeError> {
        let cfg = FqnConfig {
            dimensions: 1,
            window: self.window,
            k_scale: self.k_scale,
            warmup: self.sample_size.clamp(2, self.window),
            sample_fraction: self.sample_fraction,
            seed: self.seed,
        };
        cfg.validate()
            .map_err(|e| ServeError::Config(format!("tenant fqn config: {e}")))?;
        Ok(cfg)
    }

    /// The derived MMDEW configuration.
    pub fn mmdew_config(&self) -> Result<MmdewNodeConfig, ServeError> {
        let mut cfg = MmdewNodeConfig::default();
        cfg.detector.threshold_scale = self.threshold_scale;
        cfg.detector.seed = self.seed;
        cfg.sample_fraction = self.sample_fraction;
        cfg.validate()
            .map_err(|e| ServeError::Config(format!("tenant mmdew config: {e}")))?;
        Ok(cfg)
    }

    /// Validates the spec for the configured detector without building
    /// a runtime (the daemon calls this once at startup).
    pub fn validate(&self) -> Result<(), ServeError> {
        self.topology()?;
        match self.detector {
            BackendKind::D3 => self.d3_config().map(|_| ()),
            BackendKind::Fqn => self.fqn_config().map(|_| ()),
            BackendKind::Mmdew => self.mmdew_config().map(|_| ()),
            BackendKind::Mgdd => Err(ServeError::Config(
                "serve tenants support the d3, fqn and mmdew detectors".into(),
            )),
        }
    }

    /// Builds one D3 tenant runtime (used both by the daemon's workers
    /// and by the in-process reference side of the differential tests).
    pub fn build_runtime(&self) -> Result<LiveRuntime<D3Payload, D3Node>, ServeError> {
        build_d3_live(
            self.topology()?,
            &self.d3_config()?,
            self.sim_config(),
            FaultPlan::none(),
        )
        .map_err(|e| ServeError::Config(format!("tenant runtime: {e}")))
    }

    /// Builds one tenant runtime for an arbitrary backend recipe.
    pub fn build_backend_runtime<B: DetectorBackend>(
        &self,
        backend: &B,
    ) -> Result<LiveRuntime<B::Payload, B::Engine>, ServeError> {
        build_backend_live(backend, self.topology()?, self.sim_config(), FaultPlan::none())
            .map_err(|e| ServeError::Config(format!("tenant runtime: {e}")))
    }

    /// The D3 backend recipe for this spec.
    pub fn d3_backend(&self) -> Result<D3Backend, ServeError> {
        Ok(D3Backend(self.d3_config()?))
    }

    /// The FQN backend recipe for this spec.
    pub fn fqn_backend(&self) -> Result<FqnBackend, ServeError> {
        Ok(FqnBackend(self.fqn_config()?))
    }

    /// The MMDEW backend recipe for this spec.
    pub fn mmdew_backend(&self) -> Result<MmdewBackend, ServeError> {
        Ok(MmdewBackend(self.mmdew_config()?))
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Ingestion listener address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Metrics/health HTTP listener address; `None` disables it.
    pub metrics_addr: Option<String>,
    /// Directory for per-tenant checkpoint files; `None` disables
    /// durability (acks then report `durable == received`).
    pub checkpoint_dir: Option<PathBuf>,
    /// Checkpoint after this many newly processed readings per tenant.
    pub checkpoint_every: u64,
    /// Also checkpoint when this much wall time has passed since the
    /// tenant's last checkpoint (and progress was made).
    pub checkpoint_interval: Duration,
    /// Bounded per-tenant queue capacity. A full queue sheds readings
    /// (unacked — the client retransmits them later).
    pub queue_capacity: usize,
    /// Maximum concurrent tenants.
    pub max_tenants: usize,
    /// Slow-loris guard: a connection holding a partial frame open
    /// longer than this is dropped.
    pub frame_deadline: Duration,
    /// Allow [`crate::wire::Msg::Crash`] fault-injection frames
    /// (tests only).
    pub allow_crash_frames: bool,
    /// Template for tenants created on first Hello.
    pub tenant: TenantSpec,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            metrics_addr: None,
            checkpoint_dir: None,
            checkpoint_every: 64,
            checkpoint_interval: Duration::from_secs(2),
            queue_capacity: 256,
            max_tenants: 4096,
            frame_deadline: Duration::from_secs(10),
            allow_crash_frames: false,
            tenant: TenantSpec::default(),
        }
    }
}

/// True when `name` is a valid tenant name: 1–64 chars from
/// `[A-Za-z0-9_-]` (it doubles as a checkpoint file stem, so path
/// separators and dots are out).
pub fn valid_tenant_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_builds_a_single_node_runtime() {
        let spec = TenantSpec::default();
        let rt = spec.build_runtime().expect("builds");
        assert_eq!(rt.topology().node_count(), 1);
    }

    #[test]
    fn multi_leaf_spec_builds_a_hierarchy() {
        let spec = TenantSpec {
            leaves: 4,
            fanouts: vec![2, 2],
            ..TenantSpec::default()
        };
        let rt = spec.build_runtime().expect("builds");
        assert_eq!(rt.topology().leaves().len(), 4);
        assert!(rt.topology().node_count() > 4);
    }

    #[test]
    fn every_supported_detector_validates_and_builds() {
        for kind in [BackendKind::D3, BackendKind::Fqn, BackendKind::Mmdew] {
            let spec = TenantSpec {
                detector: kind,
                leaves: 2,
                fanouts: vec![2],
                ..TenantSpec::default()
            };
            spec.validate().expect("valid spec");
        }
        let spec = TenantSpec {
            detector: BackendKind::Mgdd,
            ..TenantSpec::default()
        };
        assert!(spec.validate().is_err(), "mgdd tenants are unsupported");
        let spec = TenantSpec {
            detector: BackendKind::Fqn,
            k_scale: -1.0,
            ..TenantSpec::default()
        };
        assert!(spec.validate().is_err(), "bad k_scale accepted");
    }

    #[test]
    fn backend_runtimes_build_for_fqn_and_mmdew() {
        let spec = TenantSpec {
            detector: BackendKind::Fqn,
            ..TenantSpec::default()
        };
        let rt = spec
            .build_backend_runtime(&spec.fqn_backend().unwrap())
            .expect("fqn runtime");
        assert_eq!(rt.topology().node_count(), 1);
        let spec = TenantSpec {
            detector: BackendKind::Mmdew,
            leaves: 4,
            fanouts: vec![2, 2],
            ..TenantSpec::default()
        };
        let rt = spec
            .build_backend_runtime(&spec.mmdew_backend().unwrap())
            .expect("mmdew runtime");
        assert_eq!(rt.topology().leaves().len(), 4);
    }

    #[test]
    fn tenant_names_are_validated() {
        assert!(valid_tenant_name("plant-7_A"));
        assert!(!valid_tenant_name(""));
        assert!(!valid_tenant_name("a/b"));
        assert!(!valid_tenant_name("dot.dot"));
        assert!(!valid_tenant_name(&"x".repeat(65)));
    }
}
