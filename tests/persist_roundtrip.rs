//! Snapshot/restore round-trip properties (proptest): for every sketch
//! and density model, `to_bytes` → `from_bytes` → an arbitrary suffix
//! stream must leave the restored instance answering **every** query —
//! variance, quantile, density, range probability, neighborhood counts —
//! bit-identically to a twin that was never snapshotted. A restored
//! sketch is not "approximately equal": its internal RNG position,
//! bucket boundaries and eviction clocks must all survive, or the
//! divergence shows up a few pushes after the restore.

use proptest::prelude::*;

use sensor_outliers::density::{
    DensityModel, EquiDepthHistogram, GridHistogram, Kde, Kde1d, WaveletHistogram,
};
use sensor_outliers::persist::Persist;
use sensor_outliers::robust::{Mmdew, MmdewConfig, QnWindow};
use sensor_outliers::sketch::{
    ChainSampler, ExpHistogram, GkSketch, ReservoirSampler, SlidingWindow, WindowedQuantile,
    WindowedVariance,
};

fn unit_values(max: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1.0, 8..max)
}

/// Snapshot, restore, and return the restored twin.
fn round_trip<T: Persist>(sketch: &T) -> T {
    let bytes = sketch.to_bytes();
    T::from_bytes(&bytes).expect("round trip decodes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Chain sampler: the sample set, its window indices, the stream
    /// clock and the *future* sampling decisions all survive a restore.
    #[test]
    fn chain_sampler_round_trips(
        prefix in unit_values(200),
        suffix in unit_values(200),
        window in 8usize..64,
        seed in 0u64..1_000,
    ) {
        let mut live = ChainSampler::new(window, 8, seed).unwrap();
        for &v in &prefix {
            live.push(v.to_bits());
        }
        let mut restored = round_trip(&live);
        prop_assert_eq!(live.sample_with_indices(), restored.sample_with_indices());
        for &v in &suffix {
            // The RNG position must survive: identical accept decisions.
            prop_assert_eq!(live.push(v.to_bits()), restored.push(v.to_bits()));
        }
        prop_assert_eq!(live.sample_with_indices(), restored.sample_with_indices());
        prop_assert_eq!(live.stream_len(), restored.stream_len());
        prop_assert_eq!(live.version(), restored.version());
    }

    /// Windowed variance: mean/variance/σ stay bit-identical through an
    /// arbitrary suffix (bucket merges included).
    #[test]
    fn windowed_variance_round_trips(
        prefix in unit_values(300),
        suffix in unit_values(300),
        window in 16usize..128,
    ) {
        let mut live = WindowedVariance::new(window, 0.1).unwrap();
        for &v in &prefix {
            live.push(v);
        }
        let mut restored = round_trip(&live);
        for &v in &suffix {
            live.push(v);
            restored.push(v);
        }
        prop_assert_eq!(live.variance().to_bits(), restored.variance().to_bits());
        prop_assert_eq!(live.mean().to_bits(), restored.mean().to_bits());
        prop_assert_eq!(live.std_dev().to_bits(), restored.std_dev().to_bits());
        prop_assert_eq!(live.live_count(), restored.live_count());
        prop_assert_eq!(live.bucket_count(), restored.bucket_count());
    }

    /// Exponential histogram: the windowed count estimate and the bucket
    /// cascade survive.
    #[test]
    fn exp_histogram_round_trips(
        prefix in prop::collection::vec(0.0f64..1.0, 8..400),
        suffix in prop::collection::vec(0.0f64..1.0, 8..400),
        window in 16usize..256,
    ) {
        let mut live = ExpHistogram::new(window, 0.1).unwrap();
        for &v in &prefix {
            live.push(v > 0.7);
        }
        let mut restored = round_trip(&live);
        for &v in &suffix {
            live.push(v > 0.7);
            restored.push(v > 0.7);
        }
        prop_assert_eq!(live.estimate(), restored.estimate());
        prop_assert_eq!(live.bucket_count(), restored.bucket_count());
        prop_assert_eq!(live.stream_len(), restored.stream_len());
    }

    /// GK quantile sketch: every quantile and the equi-depth partition
    /// stay bit-identical (compressions included).
    #[test]
    fn gk_sketch_round_trips(
        prefix in unit_values(300),
        suffix in unit_values(300),
    ) {
        let mut live = GkSketch::new(0.05).unwrap();
        for &v in &prefix {
            live.insert(v);
        }
        let mut restored = round_trip(&live);
        for &v in &suffix {
            live.insert(v);
            restored.insert(v);
        }
        for phi in [0.01, 0.25, 0.5, 0.75, 0.99] {
            prop_assert_eq!(
                live.quantile(phi).map(f64::to_bits),
                restored.quantile(phi).map(f64::to_bits)
            );
        }
        prop_assert_eq!(live.equi_depth_boundaries(8), restored.equi_depth_boundaries(8));
        prop_assert_eq!(live.tuple_count(), restored.tuple_count());
    }

    /// Reservoir sampler: the kept sample and the future replacement
    /// decisions (RNG position) survive.
    #[test]
    fn reservoir_round_trips(
        prefix in unit_values(300),
        suffix in unit_values(300),
        seed in 0u64..1_000,
    ) {
        let mut live = ReservoirSampler::new(16, seed).unwrap();
        for &v in &prefix {
            live.push(v.to_bits());
        }
        let mut restored = round_trip(&live);
        prop_assert_eq!(live.sample(), restored.sample());
        for &v in &suffix {
            live.push(v.to_bits());
            restored.push(v.to_bits());
        }
        prop_assert_eq!(live.sample(), restored.sample());
        prop_assert_eq!(live.stream_len(), restored.stream_len());
    }

    /// Sliding window: contents, order and eviction clock survive.
    #[test]
    fn sliding_window_round_trips(
        prefix in unit_values(200),
        suffix in unit_values(200),
        capacity in 4usize..64,
    ) {
        let mut live = SlidingWindow::new(capacity).unwrap();
        for &v in &prefix {
            live.push(v.to_bits());
        }
        let mut restored = round_trip(&live);
        for &v in &suffix {
            prop_assert_eq!(live.push(v.to_bits()), restored.push(v.to_bits()));
        }
        prop_assert_eq!(live.to_vec(), restored.to_vec());
        prop_assert_eq!(live.stream_len(), restored.stream_len());
    }

    /// Windowed quantile: φ-quantiles, the median and block rotation
    /// survive an arbitrary suffix.
    #[test]
    fn windowed_quantile_round_trips(
        prefix in unit_values(300),
        suffix in unit_values(300),
    ) {
        let mut live = WindowedQuantile::new(128, 4, 0.05).unwrap();
        for &v in &prefix {
            live.push(v);
        }
        let mut restored = round_trip(&live);
        for &v in &suffix {
            live.push(v);
            restored.push(v);
        }
        for phi in [0.1, 0.5, 0.9] {
            prop_assert_eq!(
                live.quantile(phi).map(f64::to_bits),
                restored.quantile(phi).map(f64::to_bits)
            );
        }
        prop_assert_eq!(live.median().map(f64::to_bits), restored.median().map(f64::to_bits));
        prop_assert_eq!(live.covered(), restored.covered());
        prop_assert_eq!(live.tuple_count(), restored.tuple_count());
    }

    /// Multi-dimensional KDE: pdf, box mass, range probability and the
    /// batch neighborhood counts are bit-identical after a restore and
    /// further incremental maintenance on both twins.
    #[test]
    fn kde_round_trips(
        xs in unit_values(80),
        updates in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..20),
        q in (0.0f64..1.0, 0.0f64..1.0),
        r in 0.01f64..0.3,
    ) {
        let sample: Vec<Vec<f64>> = xs.chunks(2).filter(|c| c.len() == 2).map(<[f64]>::to_vec).collect();
        prop_assume!(!sample.is_empty());
        let mut live = Kde::from_sample(&sample, &[0.1, 0.1], 500.0).unwrap();
        let mut restored = round_trip(&live);
        for (a, b) in &updates {
            live.insert_point(&[*a, *b]).unwrap();
            restored.insert_point(&[*a, *b]).unwrap();
            live.remove_point(&sample[0]).unwrap();
            restored.remove_point(&sample[0]).unwrap();
        }
        let q = [q.0, q.1];
        prop_assert_eq!(live.pdf(&q).unwrap().to_bits(), restored.pdf(&q).unwrap().to_bits());
        prop_assert_eq!(
            live.range_prob(&q, r).unwrap().to_bits(),
            restored.range_prob(&q, r).unwrap().to_bits()
        );
        let queries: Vec<f64> = updates.iter().flat_map(|&(a, b)| [a, b]).collect();
        let a = live.neighborhood_counts(&queries, r).unwrap();
        let b = restored.neighborhood_counts(&queries, r).unwrap();
        prop_assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    /// 1-d KDE: same contract as the multi-dimensional estimator.
    #[test]
    fn kde1d_round_trips(
        xs in unit_values(100),
        updates in unit_values(40),
        q in 0.0f64..1.0,
        r in 0.01f64..0.3,
    ) {
        let mut live = Kde1d::from_sample(&xs, 0.05, 300.0).unwrap();
        let mut restored = round_trip(&live);
        for &u in &updates {
            live.insert_center(u).unwrap();
            restored.insert_center(u).unwrap();
            prop_assert_eq!(live.remove_center(xs[0]), restored.remove_center(xs[0]));
        }
        prop_assert_eq!(live.pdf(&[q]).unwrap().to_bits(), restored.pdf(&[q]).unwrap().to_bits());
        prop_assert_eq!(
            live.range_prob(&[q], r).unwrap().to_bits(),
            restored.range_prob(&[q], r).unwrap().to_bits()
        );
        prop_assert_eq!(
            live.neighborhood_count(&[q], r).unwrap().to_bits(),
            restored.neighborhood_count(&[q], r).unwrap().to_bits()
        );
    }

    /// Streaming Q_n window: the median, the Q_n scale and every
    /// outlier verdict stay bit-identical through an arbitrary suffix
    /// (evictions included).
    #[test]
    fn qn_window_round_trips(
        prefix in unit_values(200),
        suffix in unit_values(200),
        capacity in 4usize..64,
        k in 1.0f64..6.0,
    ) {
        let mut live = QnWindow::new(capacity).unwrap();
        for &v in &prefix {
            live.push(v).unwrap();
        }
        let mut restored = round_trip(&live);
        prop_assert_eq!(live.values().collect::<Vec<_>>(), restored.values().collect::<Vec<_>>());
        for &v in &suffix {
            live.push(v).unwrap();
            restored.push(v).unwrap();
            prop_assert_eq!(live.is_outlier(v * 3.0, k), restored.is_outlier(v * 3.0, k));
        }
        prop_assert_eq!(live.median().map(f64::to_bits), restored.median().map(f64::to_bits));
        prop_assert_eq!(live.qn().map(f64::to_bits), restored.qn().map(f64::to_bits));
        prop_assert_eq!(live.len(), restored.len());
    }

    /// MMDEW change detector: the bucket cascade, the RNG-derived
    /// kernel state and future alarm decisions survive a restore.
    #[test]
    fn mmdew_round_trips(
        prefix in unit_values(200),
        suffix in unit_values(200),
        seed in 0u64..1_000,
    ) {
        let cfg = MmdewConfig {
            dimensions: 1,
            gamma: 8.0,
            bucket_cap: 16,
            threshold_scale: 0.6,
            min_per_side: 8,
            test_every: 4,
            seed,
        };
        let mut live = Mmdew::new(cfg).unwrap();
        for &v in &prefix {
            live.insert(&[v]).unwrap();
        }
        let mut restored = round_trip(&live);
        prop_assert_eq!(live.buckets(), restored.buckets());
        prop_assert_eq!(live.evaluate(), restored.evaluate());
        for &v in &suffix {
            // Future split decisions (and hence alarms) must agree.
            prop_assert_eq!(live.insert(&[v]).unwrap(), restored.insert(&[v]).unwrap());
        }
        prop_assert_eq!(live.inserts(), restored.inserts());
        prop_assert_eq!(live.alarms(), restored.alarms());
        prop_assert_eq!(live.retained(), restored.retained());
        prop_assert_eq!(live.evaluate(), restored.evaluate());
    }

    /// Histogram baselines and the wavelet synopsis: every query
    /// bit-identical after restore.
    #[test]
    fn histograms_round_trip(
        xs in unit_values(200),
        q in 0.0f64..1.0,
        r in 0.01f64..0.3,
    ) {
        let eq = EquiDepthHistogram::from_window(&xs, 8).unwrap();
        let eq2 = round_trip(&eq);
        prop_assert_eq!(eq.pdf(&[q]).unwrap().to_bits(), eq2.pdf(&[q]).unwrap().to_bits());
        prop_assert_eq!(
            eq.range_prob(&[q], r).unwrap().to_bits(),
            eq2.range_prob(&[q], r).unwrap().to_bits()
        );

        let points: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        let grid = GridHistogram::from_window(&points, 1, 16).unwrap();
        let grid2 = round_trip(&grid);
        prop_assert_eq!(grid.pdf(&[q]).unwrap().to_bits(), grid2.pdf(&[q]).unwrap().to_bits());
        prop_assert_eq!(
            grid.neighborhood_count(&[q], r).unwrap().to_bits(),
            grid2.neighborhood_count(&[q], r).unwrap().to_bits()
        );

        let wav = WaveletHistogram::from_window(&xs, 5, 12).unwrap();
        let wav2 = round_trip(&wav);
        prop_assert_eq!(wav.pdf(&[q]).unwrap().to_bits(), wav2.pdf(&[q]).unwrap().to_bits());
        prop_assert_eq!(
            wav.range_prob(&[q], r).unwrap().to_bits(),
            wav2.range_prob(&[q], r).unwrap().to_bits()
        );
        prop_assert_eq!(wav.coefficients_kept(), wav2.coefficients_kept());
    }
}
