//! The tentpole proof: a stream served over TCP — through a hostile
//! fault proxy injecting disconnects, splits, duplicates, reorders and
//! corruption — produces escalations *identical* to the same trace run
//! through the in-process live driver.

mod common;

use std::time::Duration;

use snod_serve::{serve, ClientConfig, FaultProxy, ServeClient, ServeConfig, SocketFaultPlan};

#[test]
fn clean_served_stream_matches_in_process_run() {
    let spec = common::spec(4, &[2, 2]);
    let rows = common::synth_rows(&spec, 96, 5);
    let want = common::reference_detections(&spec, &rows, 96);
    assert!(!want.is_empty(), "trace must produce detections");

    let server = serve(ServeConfig {
        tenant: spec.clone(),
        ..ServeConfig::default()
    })
    .expect("daemon starts");
    let mut client = ServeClient::new(ClientConfig::new(server.addr().to_string()));
    let h = client.open("clean");
    for (node, seq, value) in &rows {
        client.send(h, *node, *seq, value.clone());
        if seq % 32 == 0 {
            client.pump(Duration::from_millis(1));
        }
    }
    client.finish(h, common::totals(&spec, 96));
    assert!(client.wait_finished(h, Duration::from_secs(30)), "stream completes");
    let got = client.query(h, Duration::from_secs(10)).expect("detections");
    assert_eq!(got, want);
    server.shutdown();
}

/// Regression: a clean run (no fault proxy, no reconnects, no
/// shedding) must count **zero** server-side duplicates. The client
/// used to re-send every in-flight row on a fixed 300 ms cadence —
/// faster than a loaded server acked — booking ~1.3 spurious
/// duplicates per reading on a run where nothing was ever lost.
#[test]
fn clean_run_counts_zero_duplicates() {
    let spec = common::spec(4, &[2, 2]);
    let rows = common::synth_rows(&spec, 96, 5);

    let server = serve(ServeConfig {
        tenant: spec.clone(),
        ..ServeConfig::default()
    })
    .expect("daemon starts");
    let mut client = ServeClient::new(ClientConfig::new(server.addr().to_string()));
    let h = client.open("clean-dups");
    for (node, seq, value) in &rows {
        client.send(h, *node, *seq, value.clone());
        if seq % 16 == 0 {
            client.pump(Duration::from_millis(1));
        }
    }
    client.finish(h, common::totals(&spec, 96));
    assert!(client.wait_finished(h, Duration::from_secs(30)), "stream completes");

    let stats = server.stats();
    assert_eq!(client.reconnects(), 0, "run must be clean");
    assert_eq!(stats.shed, 0, "run must be clean");
    assert_eq!(
        stats.duplicates, 0,
        "clean run must not re-send in-flight rows"
    );
    server.shutdown();
}

#[test]
fn faulted_served_stream_matches_in_process_run_across_seeds() {
    for seed in [11u64, 29, 47] {
        let spec = common::spec(4, &[2, 2]);
        let rows = common::synth_rows(&spec, 96, seed);
        let want = common::reference_detections(&spec, &rows, 96);
        assert!(!want.is_empty(), "seed {seed}: trace must produce detections");

        let dir = common::temp_dir(&format!("diff-{seed}"));
        let server = serve(ServeConfig {
            tenant: spec.clone(),
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: 32,
            queue_capacity: 64,
            ..ServeConfig::default()
        })
        .expect("daemon starts");
        let proxy =
            FaultProxy::spawn(server.addr(), SocketFaultPlan::severe(seed)).expect("proxy starts");

        let mut client = ServeClient::new(ClientConfig::new(proxy.addr().to_string()));
        let h = client.open(format!("diff-{seed}"));
        for (node, seq, value) in &rows {
            client.send(h, *node, *seq, value.clone());
            if seq % 16 == 0 {
                client.pump(Duration::from_millis(1));
            }
        }
        client.finish(h, common::totals(&spec, 96));
        assert!(
            client.wait_finished(h, Duration::from_secs(120)),
            "seed {seed}: stream completes despite faults"
        );
        let got = client
            .query(h, Duration::from_secs(30))
            .expect("detections reply");
        assert_eq!(got, want, "seed {seed}: served != in-process");

        let stats = server.stats();
        assert!(stats.frames > 0);
        server.shutdown();
        drop(proxy);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn duplicates_and_out_of_order_delivery_are_absorbed() {
    // No proxy — the client itself misbehaves: every reading sent
    // twice, each leaf's stream in reverse order. Sequence dedup and
    // the ingest buffer's reordering must still produce the reference
    // result.
    let spec = common::spec(2, &[2]);
    let rows = common::synth_rows(&spec, 64, 3);
    let want = common::reference_detections(&spec, &rows, 64);

    let server = serve(ServeConfig {
        tenant: spec.clone(),
        queue_capacity: 1024,
        ..ServeConfig::default()
    })
    .expect("daemon starts");
    let mut client = ServeClient::new(ClientConfig::new(server.addr().to_string()));
    let h = client.open("chaos");
    for (node, seq, value) in rows.iter().rev() {
        client.send(h, *node, *seq, value.clone());
        client.send(h, *node, *seq, value.clone());
        if seq % 16 == 0 {
            client.pump(Duration::from_millis(1));
        }
    }
    client.finish(h, common::totals(&spec, 64));
    assert!(client.wait_finished(h, Duration::from_secs(60)));
    let got = client.query(h, Duration::from_secs(10)).expect("detections");
    assert_eq!(got, want);
    assert!(server.stats().duplicates > 0, "dedup must have fired");
    server.shutdown();
}

#[test]
fn load_shedding_sheds_without_losing_the_stream() {
    // A queue of 4 against a burst of hundreds of readings: the daemon
    // must shed (bounded memory) yet still converge to the reference
    // result via client retransmission.
    let spec = common::spec(1, &[]);
    let rows = common::synth_rows(&spec, 256, 13);
    let want = common::reference_detections(&spec, &rows, 256);

    let server = serve(ServeConfig {
        tenant: spec.clone(),
        queue_capacity: 4,
        ..ServeConfig::default()
    })
    .expect("daemon starts");
    let mut client = ServeClient::new(ClientConfig::new(server.addr().to_string()));
    let h = client.open("burst");
    for (node, seq, value) in &rows {
        client.send(h, *node, *seq, value.clone());
    }
    client.finish(h, common::totals(&spec, 256));
    assert!(client.wait_finished(h, Duration::from_secs(120)));
    let got = client.query(h, Duration::from_secs(10)).expect("detections");
    assert_eq!(got, want);
    server.shutdown();
}
