//! Distribution distances (paper Section 6).
//!
//! The paper measures how far apart two estimator models are with the
//! **Jensen–Shannon divergence** (Equation 7), because the plain
//! Kullback–Leibler divergence is undefined whenever the kernel model
//! assigns zero probability to a region where the other model does not —
//! which Epanechnikov kernels (finite support) routinely do.
//!
//! All divergences use base-2 logarithms so that JS ∈ [0, 1], matching
//! the paper's statement that *"the distance ranges from 0 to 1"*
//! (Section 10.1, Figure 6).

use crate::grid::GridDiscretization;
use crate::model::DensityModel;
use crate::DensityError;

/// Normalises a non-negative vector to sum 1. Returns `None` when the
/// total mass is zero.
fn normalize(p: &[f64]) -> Option<Vec<f64>> {
    let sum: f64 = p.iter().sum();
    if sum <= 0.0 {
        None
    } else {
        Some(p.iter().map(|&x| x / sum).collect())
    }
}

/// Kullback–Leibler divergence `D(p ‖ q)` in bits between two discrete
/// distributions given as (unnormalised) non-negative vectors.
///
/// Returns `f64::INFINITY` when `p` has mass where `q` has none — the
/// exact failure mode that motivates the JS variant (Section 6).
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must share support");
    let (Some(p), Some(q)) = (normalize(p), normalize(q)) else {
        return 0.0;
    };
    let mut d = 0.0;
    for (pi, qi) in p.iter().zip(q.iter()) {
        if *pi > 0.0 {
            if *qi <= 0.0 {
                return f64::INFINITY;
            }
            d += pi * (pi / qi).log2();
        }
    }
    d.max(0.0)
}

/// Jensen–Shannon divergence (Equation 7):
/// `JS(p, q) = ½·[D(p ‖ m) + D(q ‖ m)]` with `m = (p + q)/2`.
/// Always finite, symmetric, and in `[0, 1]` (base-2 logs).
///
/// ```
/// use snod_density::js_divergence;
/// let p = [0.5, 0.5, 0.0];
/// let q = [0.0, 0.5, 0.5];
/// let js = js_divergence(&p, &q);
/// assert!(js > 0.0 && js <= 1.0);
/// assert!((js - js_divergence(&q, &p)).abs() < 1e-12); // symmetric
/// assert!(js_divergence(&p, &p) < 1e-12);              // identity
/// ```
pub fn js_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must share support");
    let (Some(p), Some(q)) = (normalize(p), normalize(q)) else {
        return 0.0;
    };
    let mut d = 0.0;
    for (pi, qi) in p.iter().zip(q.iter()) {
        let m = 0.5 * (pi + qi);
        if *pi > 0.0 {
            d += 0.5 * pi * (pi / m).log2();
        }
        if *qi > 0.0 {
            d += 0.5 * qi * (qi / m).log2();
        }
    }
    d.clamp(0.0, 1.0)
}

/// JS-divergence between two density models, discretised on a `k`-cell
/// grid per dimension (the paper's Equation 8 with grid interval
/// `bs = 1/k`). Complexity `O(d·k^d·|R|)`.
pub fn js_divergence_models<A, B>(a: &A, b: &B, grid_k: usize) -> Result<f64, DensityError>
where
    A: DensityModel + ?Sized,
    B: DensityModel + ?Sized,
{
    if a.dims() != b.dims() {
        return Err(DensityError::DimensionMismatch {
            expected: a.dims(),
            got: b.dims(),
        });
    }
    let grid = GridDiscretization::new(a.dims(), grid_k)?;
    let pa = grid.cell_probs(a)?;
    let pb = grid.cell_probs(b)?;
    Ok(js_divergence(&pa, &pb))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kde::Kde;
    use crate::kde1d::Kde1d;

    #[test]
    fn kl_zero_for_identical() {
        let p = [0.25, 0.25, 0.5];
        assert!(kl_divergence(&p, &p) < 1e-12);
    }

    #[test]
    fn kl_infinite_on_unsupported_mass() {
        assert!(kl_divergence(&[1.0, 0.0], &[0.0, 1.0]).is_infinite());
    }

    #[test]
    fn kl_asymmetric_in_general() {
        let p = [0.9, 0.1];
        let q = [0.5, 0.5];
        assert!((kl_divergence(&p, &q) - kl_divergence(&q, &p)).abs() > 1e-6);
    }

    #[test]
    fn js_bounded_and_maximal_on_disjoint_support() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        let js = js_divergence(&p, &q);
        assert!(
            (js - 1.0).abs() < 1e-12,
            "disjoint JS should be 1, got {js}"
        );
    }

    #[test]
    fn js_handles_unnormalised_input() {
        let p = [2.0, 2.0];
        let q = [1.0, 1.0];
        assert!(js_divergence(&p, &q) < 1e-12);
    }

    #[test]
    fn js_handles_zero_mass_vectors() {
        assert_eq!(js_divergence(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    fn js_between_models_detects_shift() {
        let a_pts: Vec<f64> = (0..200).map(|i| 0.30 + 0.0005 * (i % 100) as f64).collect();
        let b_pts: Vec<f64> = (0..200).map(|i| 0.70 + 0.0005 * (i % 100) as f64).collect();
        let a = Kde1d::from_sample(&a_pts, 0.03, 1_000.0).unwrap();
        let b = Kde1d::from_sample(&b_pts, 0.03, 1_000.0).unwrap();
        let same = js_divergence_models(&a, &a, 64).unwrap();
        let diff = js_divergence_models(&a, &b, 64).unwrap();
        assert!(same < 1e-9, "self-distance {same}");
        assert!(diff > 0.9, "shifted distance {diff}");
    }

    #[test]
    fn js_between_close_models_is_small() {
        let a_pts: Vec<f64> = (0..500).map(|i| 0.40 + 0.0004 * (i % 250) as f64).collect();
        let b_pts: Vec<f64> = (0..500).map(|i| 0.41 + 0.0004 * (i % 250) as f64).collect();
        let a = Kde1d::from_sample(&a_pts, 0.05, 1_000.0).unwrap();
        let b = Kde1d::from_sample(&b_pts, 0.05, 1_000.0).unwrap();
        let d = js_divergence_models(&a, &b, 64).unwrap();
        assert!(d < 0.05, "close models diverge by {d}");
    }

    #[test]
    fn js_models_dimension_mismatch() {
        let a = Kde1d::from_sample(&[0.5], 0.1, 10.0).unwrap();
        let b = Kde::from_sample(&[vec![0.5, 0.5]], &[0.1, 0.1], 10.0).unwrap();
        assert!(js_divergence_models(&a, &b, 8).is_err());
    }

    #[test]
    fn js_works_across_model_types() {
        // KDE vs histogram of the same underlying data should be close.
        let xs: Vec<f64> = (0..2_000).map(|i| (i % 500) as f64 / 500.0).collect();
        let kde = Kde1d::from_sample(&xs, 0.29, 2_000.0).unwrap();
        let hist = crate::histogram::EquiDepthHistogram::from_window(&xs, 100).unwrap();
        let d = js_divergence_models(&kde, &hist, 64).unwrap();
        assert!(d < 0.05, "KDE vs histogram of same data: {d}");
    }
}
