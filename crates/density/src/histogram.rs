//! Histogram density models — the paper's comparison baseline (§10).
//!
//! The evaluation compares the kernel approach against *equi-depth
//! histograms of `|B|` buckets computed by accessing all `|W|` values in
//! the sliding window* (with `|B| = |R|` for comparable memory). As the
//! paper notes, this offline construction *favours* the histogram: it sees
//! the exact window while the kernel model sees only a sample. We keep
//! that bias intact so Figure 7's comparison reproduces honestly.
//!
//! [`GridHistogram`] additionally provides an equi-*width* d-dimensional
//! histogram for multi-dimensional baselines and for discretising models.

use snod_persist::{ByteReader, ByteWriter, Persist, PersistError};

use crate::model::{check_dims, DensityModel};
use crate::DensityError;

/// One-dimensional equi-depth histogram: `buckets` intervals each holding
/// (approximately) the same number of window values.
///
/// ```
/// use snod_density::{EquiDepthHistogram, DensityModel};
/// let values: Vec<f64> = (0..1_000).map(|i| i as f64 / 1_000.0).collect();
/// let h = EquiDepthHistogram::from_window(&values, 50).unwrap();
/// // uniform data: mass of [0.2, 0.4] ≈ 0.2
/// let p = h.box_prob(&[0.2], &[0.4]).unwrap();
/// assert!((p - 0.2).abs() < 0.01);
/// ```
#[derive(Debug, Clone)]
pub struct EquiDepthHistogram {
    /// Bucket boundaries, ascending, length `buckets + 1`.
    bounds: Vec<f64>,
    /// Number of window values per bucket.
    counts: Vec<f64>,
    total: f64,
}

impl EquiDepthHistogram {
    /// Builds the histogram by sorting the full window content — the
    /// brute-force construction the paper uses for its baseline.
    pub fn from_window(window: &[f64], buckets: usize) -> Result<Self, DensityError> {
        if window.is_empty() {
            return Err(DensityError::EmptySample);
        }
        if buckets == 0 {
            return Err(DensityError::NonPositiveParameter("bucket count"));
        }
        let mut sorted = window.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN data"));
        let n = sorted.len();
        let buckets = buckets.min(n);
        let mut bounds = Vec::with_capacity(buckets + 1);
        let mut counts = Vec::with_capacity(buckets);
        bounds.push(sorted[0]);
        let mut prev_idx = 0usize;
        for b in 1..=buckets {
            let idx = (b * n) / buckets;
            let hi = if b == buckets {
                sorted[n - 1]
            } else {
                sorted[idx.min(n - 1)]
            };
            // Merge zero-width buckets (heavy ties) into their neighbour.
            if hi > *bounds.last().expect("non-empty bounds") || b == buckets {
                bounds.push(hi);
                counts.push((idx - prev_idx) as f64);
                prev_idx = idx;
            } else if let Some(last) = counts.last_mut() {
                *last += (idx - prev_idx) as f64;
                prev_idx = idx;
            } else {
                // First bucket degenerate: widen it artificially.
                bounds.push(hi + f64::EPSILON.max(hi.abs() * 1e-12));
                counts.push((idx - prev_idx) as f64);
                prev_idx = idx;
            }
        }
        // Degenerate all-equal window: one bucket of tiny width.
        if bounds.len() < 2 {
            bounds.push(bounds[0] + 1e-12);
            counts.push(n as f64);
        }
        if bounds[bounds.len() - 1] <= bounds[bounds.len() - 2] {
            let last = bounds.len() - 1;
            bounds[last] = bounds[last - 1] + 1e-12;
        }
        Ok(Self {
            bounds,
            counts,
            total: n as f64,
        })
    }

    /// Number of buckets actually stored (≤ requested when the data has
    /// heavy ties).
    pub fn bucket_count(&self) -> usize {
        self.counts.len()
    }
}

impl DensityModel for EquiDepthHistogram {
    fn dims(&self) -> usize {
        1
    }

    fn window_len(&self) -> f64 {
        self.total
    }

    fn pdf(&self, x: &[f64]) -> Result<f64, DensityError> {
        check_dims(1, x)?;
        let x = x[0];
        if x < self.bounds[0] || x > *self.bounds.last().expect("bounds") {
            return Ok(0.0);
        }
        let i = self
            .bounds
            .partition_point(|&b| b <= x)
            .saturating_sub(1)
            .min(self.counts.len() - 1);
        let width = self.bounds[i + 1] - self.bounds[i];
        Ok(self.counts[i] / self.total / width)
    }

    fn box_prob(&self, lo: &[f64], hi: &[f64]) -> Result<f64, DensityError> {
        check_dims(1, lo)?;
        check_dims(1, hi)?;
        let (a, b) = (lo[0], hi[0]);
        if b <= a {
            return Ok(0.0);
        }
        let mut mass = 0.0;
        for i in 0..self.counts.len() {
            let (blo, bhi) = (self.bounds[i], self.bounds[i + 1]);
            let overlap = (b.min(bhi) - a.max(blo)).max(0.0);
            if overlap > 0.0 {
                mass += self.counts[i] / self.total * overlap / (bhi - blo);
            }
        }
        Ok(mass.min(1.0))
    }
}

/// d-dimensional equi-width histogram over `[0, 1]^d` with `bins` cells
/// per dimension.
#[derive(Debug, Clone)]
pub struct GridHistogram {
    dims: usize,
    bins: usize,
    counts: Vec<f64>,
    total: f64,
}

impl GridHistogram {
    /// Builds the histogram from window points (coordinates clamped into
    /// `[0, 1]`, matching the paper's domain normalisation).
    pub fn from_window(
        points: &[Vec<f64>],
        dims: usize,
        bins: usize,
    ) -> Result<Self, DensityError> {
        if points.is_empty() {
            return Err(DensityError::EmptySample);
        }
        if dims == 0 {
            return Err(DensityError::NonPositiveParameter("dimensionality"));
        }
        if bins == 0 {
            return Err(DensityError::NonPositiveParameter("bins per dimension"));
        }
        let cells = bins
            .checked_pow(dims as u32)
            .ok_or(DensityError::NonPositiveParameter("bins^dims overflows"))?;
        let mut counts = vec![0.0; cells];
        for p in points {
            check_dims(dims, p)?;
            let mut idx = 0usize;
            for &c in p.iter() {
                let cell = ((c.clamp(0.0, 1.0) * bins as f64) as usize).min(bins - 1);
                idx = idx * bins + cell;
            }
            counts[idx] += 1.0;
        }
        Ok(Self {
            dims,
            bins,
            counts,
            total: points.len() as f64,
        })
    }

    /// Bins per dimension.
    pub fn bins(&self) -> usize {
        self.bins
    }
}

impl DensityModel for GridHistogram {
    fn dims(&self) -> usize {
        self.dims
    }

    fn window_len(&self) -> f64 {
        self.total
    }

    fn pdf(&self, x: &[f64]) -> Result<f64, DensityError> {
        check_dims(self.dims, x)?;
        if x.iter().any(|&c| !(0.0..=1.0).contains(&c)) {
            return Ok(0.0);
        }
        let mut idx = 0usize;
        for &c in x.iter() {
            let cell = ((c * self.bins as f64) as usize).min(self.bins - 1);
            idx = idx * self.bins + cell;
        }
        let cell_volume = (1.0 / self.bins as f64).powi(self.dims as i32);
        Ok(self.counts[idx] / self.total / cell_volume)
    }

    fn box_prob(&self, lo: &[f64], hi: &[f64]) -> Result<f64, DensityError> {
        check_dims(self.dims, lo)?;
        check_dims(self.dims, hi)?;
        // Per-dimension overlap fractions with each bin, combined by
        // recursion over dimensions (cells = product structure).
        let width = 1.0 / self.bins as f64;
        let mut overlaps: Vec<Vec<(usize, f64)>> = Vec::with_capacity(self.dims);
        for j in 0..self.dims {
            let (a, b) = (lo[j].max(0.0), hi[j].min(1.0));
            if b <= a {
                return Ok(0.0);
            }
            let first = ((a / width) as usize).min(self.bins - 1);
            let last = ((b / width) as usize).min(self.bins - 1);
            let mut dim_overlaps = Vec::with_capacity(last - first + 1);
            for cell in first..=last {
                let (clo, chi) = (cell as f64 * width, (cell + 1) as f64 * width);
                let frac = ((b.min(chi) - a.max(clo)) / width).max(0.0);
                if frac > 0.0 {
                    dim_overlaps.push((cell, frac));
                }
            }
            overlaps.push(dim_overlaps);
        }
        let mut mass = 0.0;
        let mut stack: Vec<(usize, usize, f64)> = vec![(0, 0, 1.0)];
        // Iterative depth-first product over per-dimension overlap lists.
        while let Some((dim, idx, frac)) = stack.pop() {
            if dim == self.dims {
                mass += self.counts[idx] / self.total * frac;
                continue;
            }
            for &(cell, f) in &overlaps[dim] {
                stack.push((dim + 1, idx * self.bins + cell, frac * f));
            }
        }
        Ok(mass.min(1.0))
    }
}

impl Persist for EquiDepthHistogram {
    fn save(&self, w: &mut ByteWriter) {
        self.bounds.save(w);
        self.counts.save(w);
        self.total.save(w);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let bounds = Vec::<f64>::load(r)?;
        let counts = Vec::<f64>::load(r)?;
        let total = f64::load(r)?;
        if counts.is_empty() || bounds.len() != counts.len() + 1 {
            return Err(PersistError::Corrupt(
                "equi-depth bucket arrays are inconsistent",
            ));
        }
        if bounds.windows(2).any(|p| !(p[1] >= p[0])) {
            return Err(PersistError::Corrupt(
                "equi-depth bounds must be ascending",
            ));
        }
        if !(total > 0.0) {
            return Err(PersistError::Corrupt("histogram total must be positive"));
        }
        Ok(Self {
            bounds,
            counts,
            total,
        })
    }
}

impl Persist for GridHistogram {
    fn save(&self, w: &mut ByteWriter) {
        self.dims.save(w);
        self.bins.save(w);
        self.counts.save(w);
        self.total.save(w);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let dims = usize::load(r)?;
        let bins = usize::load(r)?;
        let counts = Vec::<f64>::load(r)?;
        let total = f64::load(r)?;
        if dims == 0 || bins == 0 {
            return Err(PersistError::Corrupt("grid histogram shape is degenerate"));
        }
        let cells = bins
            .checked_pow(dims as u32)
            .ok_or(PersistError::Corrupt("grid histogram shape overflows"))?;
        if counts.len() != cells {
            return Err(PersistError::Corrupt(
                "grid histogram cell count mismatches its shape",
            ));
        }
        if !(total > 0.0) {
            return Err(PersistError::Corrupt("histogram total must be positive"));
        }
        Ok(Self {
            dims,
            bins,
            counts,
            total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equi_depth_rejects_bad_input() {
        assert!(EquiDepthHistogram::from_window(&[], 10).is_err());
        assert!(EquiDepthHistogram::from_window(&[1.0], 0).is_err());
    }

    #[test]
    fn equi_depth_uniform_data() {
        let xs: Vec<f64> = (0..10_000).map(|i| i as f64 / 10_000.0).collect();
        let h = EquiDepthHistogram::from_window(&xs, 100).unwrap();
        let p = h.box_prob(&[0.25], &[0.75]).unwrap();
        assert!((p - 0.5).abs() < 0.01, "p {p}");
        // density roughly 1 everywhere inside
        let d = h.pdf(&[0.5]).unwrap();
        assert!((d - 1.0).abs() < 0.1, "pdf {d}");
    }

    #[test]
    fn equi_depth_handles_heavy_ties() {
        let mut xs = vec![0.5; 900];
        xs.extend((0..100).map(|i| i as f64 / 100.0));
        let h = EquiDepthHistogram::from_window(&xs, 50).unwrap();
        let total = h.box_prob(&[-1.0], &[2.0]).unwrap();
        assert!((total - 1.0).abs() < 0.05, "total {total}");
        // The tie bucket spans roughly [0.4, 0.5] (equi-depth smears ties
        // uniformly within a bucket); a query covering it sees ~90% mass.
        let near = h.box_prob(&[0.35], &[0.6]).unwrap();
        assert!(near > 0.85, "near {near}");
    }

    #[test]
    fn equi_depth_constant_window() {
        let xs = vec![0.3; 100];
        let h = EquiDepthHistogram::from_window(&xs, 8).unwrap();
        let p = h.box_prob(&[0.2], &[0.4]).unwrap();
        assert!((p - 1.0).abs() < 1e-9);
    }

    #[test]
    fn equi_depth_skewed_data_adapts_boundaries() {
        // 90% of mass in [0, 0.1]: equi-depth puts ~90% of buckets there.
        let mut xs: Vec<f64> = (0..9_000).map(|i| (i % 1_000) as f64 / 10_000.0).collect();
        xs.extend((0..1_000).map(|i| 0.1 + (i as f64) * 0.9 / 1_000.0));
        let h = EquiDepthHistogram::from_window(&xs, 100).unwrap();
        let p = h.box_prob(&[0.0], &[0.1]).unwrap();
        assert!((p - 0.9).abs() < 0.03, "p {p}");
    }

    #[test]
    fn grid_histogram_uniform_2d() {
        let pts: Vec<Vec<f64>> = (0..10_000)
            .map(|i| {
                vec![
                    ((i * 7) % 100) as f64 / 100.0,
                    ((i * 13) % 100) as f64 / 100.0,
                ]
            })
            .collect();
        let h = GridHistogram::from_window(&pts, 2, 10).unwrap();
        let p = h.box_prob(&[0.0, 0.0], &[0.5, 0.5]).unwrap();
        assert!((p - 0.25).abs() < 0.02, "p {p}");
        let total = h.box_prob(&[0.0, 0.0], &[1.0, 1.0]).unwrap();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn grid_histogram_partial_cell_overlap() {
        // One point in cell [0, 0.1): querying half the cell returns half
        // the mass (uniform-within-cell assumption).
        let h = GridHistogram::from_window(&[vec![0.05]], 1, 10).unwrap();
        let p = h.box_prob(&[0.0], &[0.05]).unwrap();
        assert!((p - 0.5).abs() < 1e-9, "p {p}");
    }

    #[test]
    fn grid_histogram_out_of_domain_query() {
        let h = GridHistogram::from_window(&[vec![0.5]], 1, 10).unwrap();
        assert_eq!(h.box_prob(&[1.5], &[2.0]).unwrap(), 0.0);
        assert_eq!(h.pdf(&[-0.1]).unwrap(), 0.0);
    }

    #[test]
    fn grid_histogram_neighborhood_count() {
        let pts: Vec<Vec<f64>> = (0..1_000).map(|i| vec![(i % 100) as f64 / 100.0]).collect();
        let h = GridHistogram::from_window(&pts, 1, 20).unwrap();
        let n = h.neighborhood_count(&[0.5], 0.1).unwrap();
        assert!((n - 200.0).abs() < 30.0, "count {n}");
    }
}
