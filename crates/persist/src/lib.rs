//! Checkpoint/restore codec for the sensor-outliers runtime.
//!
//! The paper's substrate is pure sliding-window state — chain samples,
//! streaming variance buckets, kernel centres, replica models — so a
//! process that can serialize that state can stop and later resume
//! *exactly* where it left off. This crate provides the three layers
//! that make resume provably lossless:
//!
//! 1. **Codec** ([`Persist`], [`ByteWriter`], [`ByteReader`]): a
//!    hand-rolled little-endian binary encoding with bounds-checked
//!    reads that surface every malformation as a typed
//!    [`PersistError`] instead of a panic. (The workspace's `serde` is
//!    interface-only in this build, so the codec carries the bytes
//!    itself; the trait mirrors `Serialize`/`Deserialize` so a swap to
//!    a serde backend is mechanical.)
//! 2. **Container** ([`write_checkpoint_file`], [`read_checkpoint_file`]):
//!    a checksummed, versioned envelope written atomically (temp file +
//!    rename) so a crash mid-write can never leave a torn checkpoint in
//!    place of a good one.
//! 3. **Replayable randomness** ([`SeededRng`]): a counting wrapper
//!    over the deterministic word-stream RNG whose state is exactly
//!    `(seed, words drawn)` — restoring fast-forwards the stream, so a
//!    resumed run draws the same tail of random numbers an
//!    uninterrupted run would.
//!
//! Encoded output is fully deterministic (unordered collections are
//! written in sorted key order), which is what lets the golden
//! checkpoint files under `tests/goldens/` guard the format.

mod codec;
mod container;
mod error;
mod rng;

pub use codec::{ByteReader, ByteWriter, Persist};
pub use container::{
    crc32, decode_checkpoint, encode_checkpoint, load_from_file, read_checkpoint_file,
    save_to_file, write_checkpoint_file, FORMAT_VERSION, HEADER_LEN, MAGIC,
};
pub use error::PersistError;
pub use rng::SeededRng;
