//! The live streaming driver: real ingestion, per-node workers, a
//! monotonic-clock timer wheel.
//!
//! [`LiveRuntime`] drives the same [`DetectorEngine`] state machines
//! the simulator drives, but paces them against a [`Clock`]: with
//! [`MonotonicClock`] the runtime sleeps until each event's stream time
//! has really elapsed (scaled by an optional speedup), with
//! [`VirtualClock`] it runs as fast as the machine allows. Either way
//! the *processing order* is identical — the event queue doubles as the
//! timer wheel, the shared [`crate::protocol::Engine`] classifies and
//! replays side effects in exact event order, and one lightweight
//! worker per node (fed by a bounded channel) runs the callbacks. The
//! conformance suite in `snod-bench` pins that a live run is
//! bit-identical to the simulated one on replayed streams.

use std::path::Path;
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use snod_persist::{ByteReader, ByteWriter, Persist, PersistError};

use crate::config::{SimConfig, StreamSource};
use crate::detector::{CtxOut, DetectorEngine, EngineCtx};
use crate::energy::EnergyModel;
use crate::event::Event;
use crate::fault::FaultPlan;
use crate::message::Wire;
use crate::node::NodeId;
use crate::protocol::{self, EngineState, Post, Pre, Task};
use crate::stats::NetStats;
use crate::topology::Hierarchy;

/// Paces the live run: called once per event batch with the batch's
/// stream time, returns when that instant has "arrived".
pub trait Clock {
    /// Blocks until `stream_ns` of stream time has elapsed.
    fn wait_until(&mut self, stream_ns: u64);
}

/// No pacing: every batch is due immediately. Replay and conformance
/// runs use this — the processing order (and hence every result) is
/// identical to a paced run, just without the waiting.
#[derive(Debug, Default, Clone, Copy)]
pub struct VirtualClock;

impl Clock for VirtualClock {
    fn wait_until(&mut self, _stream_ns: u64) {}
}

/// Real pacing against [`Instant`]: stream time `t` is due when
/// `t / speedup` wall-clock nanoseconds have passed since the first
/// wait. The origin is pinned lazily so construction cost never skews
/// the schedule.
#[derive(Debug, Clone, Copy)]
pub struct MonotonicClock {
    origin: Option<Instant>,
    speedup: f64,
}

impl MonotonicClock {
    /// Real-time pacing (speedup 1).
    pub fn new() -> Self {
        Self::with_speedup(1.0)
    }

    /// Pacing at `speedup`× real time (e.g. `60.0` replays an hour of
    /// stream per minute). Must be positive.
    pub fn with_speedup(speedup: f64) -> Self {
        assert!(speedup > 0.0, "speedup must be positive");
        Self {
            origin: None,
            speedup,
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn wait_until(&mut self, stream_ns: u64) {
        let origin = *self.origin.get_or_insert_with(Instant::now);
        let due = Duration::from_nanos((stream_ns as f64 / self.speedup) as u64);
        let elapsed = origin.elapsed();
        if due > elapsed {
            std::thread::sleep(due - elapsed);
        }
    }
}

/// A live network of detector engines: topology + one engine per node +
/// the shared protocol state ([`EngineState`]).
///
/// Structurally this is the simulator without simulated time: events
/// (readings, deliveries, acks, retry and application timers) live on
/// the same queue, are classified by the same pre phase and replayed by
/// the same post phase — but the loop waits on a [`Clock`] before each
/// batch, and callbacks run on one dedicated worker per node, fed
/// through bounded channels. Crash/recovery semantics follow
/// [`crate::RestartPolicy::Persistent`]: a node that comes back keeps
/// its in-memory state, exactly like the simulator's default.
pub struct LiveRuntime<P: Wire, A: DetectorEngine<P>> {
    topo: Hierarchy,
    engines: Vec<A>,
    cfg: SimConfig,
    energy: EnergyModel,
    plan: FaultPlan,
    state: EngineState<P>,
}

impl<P: Wire, A: DetectorEngine<P>> LiveRuntime<P, A> {
    /// Builds a runtime, constructing one engine per node via
    /// `make_engine`.
    pub fn new(
        topo: Hierarchy,
        cfg: SimConfig,
        mut make_engine: impl FnMut(NodeId, &Hierarchy) -> A,
    ) -> Self {
        let engines: Vec<A> = (0..topo.node_count())
            .map(|i| make_engine(NodeId(i as u32), &topo))
            .collect();
        let plan = FaultPlan::none();
        let state = EngineState::new(topo.node_count(), topo.level_count(), &cfg, &plan);
        Self {
            engines,
            cfg,
            energy: EnergyModel::default(),
            plan,
            state,
            topo,
        }
    }

    /// Installs `plan` as this run's fault schedule (and reseeds the
    /// fault streams from its seed). Must be called before the run.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.state.reseed_fault_streams(plan.seed);
        self.plan = plan;
        self
    }

    /// Replaces the default energy model.
    pub fn with_energy_model(mut self, model: EnergyModel) -> Self {
        self.energy = model;
        self
    }

    /// Schedules `node` to fail permanently at stream time `time_ns`.
    pub fn schedule_failure(&mut self, node: NodeId, time_ns: u64) {
        self.state.failures.push((time_ns, node));
    }

    /// The active fault schedule.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The fault-decision log (`fault-trace` feature only).
    pub fn fault_trace(&self) -> &[String] {
        &self.state.trace
    }

    /// Runs unpaced (a [`VirtualClock`]): every leaf takes
    /// `readings_per_leaf` readings from `source` and all resulting
    /// traffic is processed to quiescence. Use this for replay and
    /// conformance — results are bit-identical to a paced run.
    pub fn run<S: StreamSource>(&mut self, source: &mut S, readings_per_leaf: u64)
    where
        P: Send,
        A: Send,
    {
        self.run_until(source, readings_per_leaf, u64::MAX, &mut VirtualClock);
    }

    /// Runs paced against the monotonic clock at `speedup`× real time.
    pub fn run_paced<S: StreamSource>(
        &mut self,
        source: &mut S,
        readings_per_leaf: u64,
        speedup: f64,
    ) where
        P: Send,
        A: Send,
    {
        let mut clock = MonotonicClock::with_speedup(speedup);
        self.run_until(source, readings_per_leaf, u64::MAX, &mut clock);
    }

    /// [`Self::run`] under an explicit [`Clock`], stopping once every
    /// event at or before `stop_ns` has been processed (later events
    /// stay queued). Calling again — or on a checkpoint-restored
    /// runtime — continues exactly where the run left off.
    pub fn run_until<S: StreamSource, C: Clock>(
        &mut self,
        source: &mut S,
        readings_per_leaf: u64,
        stop_ns: u64,
        clock: &mut C,
    ) where
        P: Send,
        A: Send,
    {
        if readings_per_leaf == 0 {
            return;
        }
        if !self.state.started {
            self.state.seed_initial_readings(&self.topo, &self.cfg);
            self.state.started = true;
        }
        self.drive(source, readings_per_leaf, stop_ns, clock);
        self.state.stats.elapsed_ns = self.state.clock_ns;
        if snod_obs::enabled() {
            for (i, &msgs) in self.state.stats.messages_per_level.iter().enumerate() {
                let name = format!("simnet.level.{}.msgs", i + 1);
                snod_obs::Gauge::named(&name).set(msgs);
            }
        }
    }

    /// [`Self::run_until`] without worker threads or pacing: the same
    /// event loop, with every callback executed inline on the calling
    /// thread. Built for daemons that multiplex *many* small runtimes
    /// (one per tenant) and advance each in short slices as network
    /// input arrives — spawning a thread scope per slice per tenant
    /// would dominate the work. Outcomes are bit-identical to
    /// [`Self::run_until`] at every cut point: the phase structure
    /// (sequential pre, per-node callbacks, sequential post) is the
    /// same, callbacks on distinct nodes are independent, and per-node
    /// order is preserved.
    pub fn run_slice<S: StreamSource>(
        &mut self,
        source: &mut S,
        readings_per_leaf: u64,
        stop_ns: u64,
    ) {
        if readings_per_leaf == 0 {
            return;
        }
        if !self.state.started {
            self.state.seed_initial_readings(&self.topo, &self.cfg);
            self.state.started = true;
        }
        let engines = &mut self.engines;
        let mut clock_ns = self.state.clock_ns;
        let mut eng = self
            .state
            .engine(&self.topo, self.cfg, &self.energy, &self.plan);
        let topo = eng.topo;
        loop {
            match eng.queue.peek_time() {
                Some(t) if t <= stop_ns => {}
                _ => break,
            }
            let (time, first) = eng.queue.pop().expect("peeked event present");
            clock_ns = clock_ns.max(time);
            eng.apply_failures(time);
            let mut batch = vec![first];
            while eng.queue.peek_time() == Some(time) {
                batch.push(eng.queue.pop().expect("peeked event present").1);
            }
            // Pre phase, sequential in batch order.
            let mut posts: Vec<(Post, Option<usize>)> = Vec::new();
            let mut tasks: Vec<(NodeId, Task<P>)> = Vec::new();
            for event in batch {
                match eng.classify(time, event, source, readings_per_leaf) {
                    Pre::Skip => {}
                    Pre::Engine(post) => posts.push((post, None)),
                    Pre::Run { node, task, post } => {
                        posts.push((post, Some(tasks.len())));
                        tasks.push((node, task));
                    }
                }
            }
            // Callback phase, inline. Task order within one node matches
            // the threaded driver's per-worker order; tasks on distinct
            // nodes touch disjoint engines, so executing them in task
            // order (instead of grouped per node) changes nothing.
            let mut outs: Vec<Option<CtxOut<P>>> = Vec::with_capacity(tasks.len());
            for (node, task) in tasks {
                let engine = &mut engines[node.index()];
                let mut ctx = EngineCtx::new(node, time, topo);
                match task {
                    Task::Read(value) => engine.ingest(&mut ctx, &value),
                    Task::Msg(from, payload) => engine.on_message(&mut ctx, from, payload),
                    Task::Timer(id) => engine.on_timer(&mut ctx, id),
                }
                outs.push(Some(ctx.into_out()));
            }
            // Post phase, sequential in batch order.
            for (post, task_pos) in posts {
                let out = match task_pos {
                    Some(p) => outs[p].take().expect("callback completed"),
                    None => CtxOut::default(),
                };
                eng.finish(time, out, post);
            }
        }
        self.state.clock_ns = clock_ns;
        self.state.stats.elapsed_ns = self.state.clock_ns;
        if snod_obs::enabled() {
            for (i, &msgs) in self.state.stats.messages_per_level.iter().enumerate() {
                let name = format!("simnet.level.{}.msgs", i + 1);
                snod_obs::Gauge::named(&name).set(msgs);
            }
        }
    }

    /// The live loop: wait for the next batch's stream time, classify
    /// sequentially in batch order (pre phase), ship each node's
    /// callbacks to that node's worker over its bounded channel, then
    /// replay the side effects sequentially in batch order (post
    /// phase). Identical phase structure — and identical shared code —
    /// to the simulator's parallel driver, which is why the two produce
    /// bit-identical outcomes.
    fn drive<S: StreamSource, C: Clock>(
        &mut self,
        source: &mut S,
        readings_per_leaf: u64,
        stop_ns: u64,
        clock: &mut C,
    ) where
        P: Send,
        A: Send,
    {
        let engines: Vec<Mutex<A>> = std::mem::take(&mut self.engines)
            .into_iter()
            .map(Mutex::new)
            .collect();
        let mut clock_ns = self.state.clock_ns;
        let mut eng = self
            .state
            .engine(&self.topo, self.cfg, &self.energy, &self.plan);
        let topo = eng.topo;

        // One worker per node, each fed through its own bounded channel
        // (capacity 1: at most one same-instant task group per node per
        // batch is ever in flight).
        type Job<P> = (u64, Vec<(usize, Task<P>)>);
        type Group<P> = (u32, Vec<(usize, Task<P>)>);
        let (res_tx, res_rx) = mpsc::channel::<Vec<(usize, CtxOut<P>)>>();
        let mut job_txs: Vec<mpsc::SyncSender<Job<P>>> = Vec::with_capacity(engines.len());
        let mut job_rxs: Vec<mpsc::Receiver<Job<P>>> = Vec::with_capacity(engines.len());
        for _ in 0..engines.len() {
            let (tx, rx) = mpsc::sync_channel::<Job<P>>(1);
            job_txs.push(tx);
            job_rxs.push(rx);
        }

        std::thread::scope(|s| {
            for (node, job_rx) in job_rxs.into_iter().enumerate() {
                let res_tx = res_tx.clone();
                let engine = &engines[node];
                s.spawn(move || {
                    while let Ok((time, tasks)) = job_rx.recv() {
                        let mut engine = engine.lock().expect("worker owns its node");
                        let mut results = Vec::with_capacity(tasks.len());
                        for (pos, task) in tasks {
                            let mut ctx = EngineCtx::new(NodeId(node as u32), time, topo);
                            match task {
                                Task::Read(value) => engine.ingest(&mut ctx, &value),
                                Task::Msg(from, payload) => {
                                    engine.on_message(&mut ctx, from, payload)
                                }
                                Task::Timer(id) => engine.on_timer(&mut ctx, id),
                            }
                            results.push((pos, ctx.into_out()));
                        }
                        if res_tx.send(results).is_err() {
                            break;
                        }
                    }
                });
            }

            // Batch scratch, reused across dispatch batches (see the
            // simulator's parallel driver): `group_of` is a dense
            // node → group-index slab with `u32::MAX` as the "not in
            // this batch" sentinel, reset via the `group_order` touch
            // list so clearing is O(batch), not O(nodes).
            let mut batch: Vec<Event<P>> = Vec::new();
            let mut posts: Vec<(Post, Option<usize>)> = Vec::new();
            let mut groups: Vec<Group<P>> = Vec::new();
            let mut group_of: Vec<u32> = vec![u32::MAX; topo.node_count()];
            let mut outs: Vec<Option<CtxOut<P>>> = Vec::new();

            loop {
                match eng.queue.peek_time() {
                    Some(t) if t <= stop_ns => clock.wait_until(t),
                    _ => break,
                }
                let (time, first) = eng.queue.pop().expect("peeked event present");
                clock_ns = clock_ns.max(time);
                eng.apply_failures(time);
                // Drain the whole same-instant batch in scheduling order.
                batch.clear();
                batch.push(first);
                while eng.queue.peek_time() == Some(time) {
                    batch.push(eng.queue.pop().expect("peeked event present").1);
                }
                // Pre phase, sequential in batch order.
                posts.clear();
                let mut n_tasks = 0usize;
                for event in batch.drain(..) {
                    match eng.classify(time, event, source, readings_per_leaf) {
                        Pre::Skip => {}
                        Pre::Engine(post) => posts.push((post, None)),
                        Pre::Run { node, task, post } => {
                            let pos = n_tasks;
                            n_tasks += 1;
                            posts.push((post, Some(pos)));
                            let slot = &mut group_of[node.index()];
                            if *slot == u32::MAX {
                                *slot = groups.len() as u32;
                                groups.push((node.0, Vec::new()));
                            }
                            groups[*slot as usize].1.push((pos, task));
                        }
                    }
                }
                // Ship each node's group to its worker (first-touch
                // batch order, as the HashMap + order-list used to).
                let n_groups = groups.len();
                for (node, tasks) in groups.drain(..) {
                    group_of[node as usize] = u32::MAX;
                    job_txs[node as usize]
                        .send((time, tasks))
                        .expect("worker alive");
                }
                outs.clear();
                outs.resize_with(n_tasks, || None);
                for _ in 0..n_groups {
                    for (pos, out) in res_rx.recv().expect("worker alive") {
                        outs[pos] = Some(out);
                    }
                }
                // Post phase, sequential in batch order.
                for (post, task_pos) in posts.drain(..) {
                    let out = match task_pos {
                        Some(p) => outs[p].take().expect("callback completed"),
                        None => CtxOut::default(),
                    };
                    eng.finish(time, out, post);
                }
            }
            drop(job_txs); // workers exit on channel close
        });

        self.engines = engines
            .into_iter()
            .map(|m| m.into_inner().expect("workers finished cleanly"))
            .collect();
        self.state.clock_ns = clock_ns;
    }

    /// Traffic and energy statistics of the run so far.
    pub fn stats(&self) -> &NetStats {
        &self.state.stats
    }

    /// The topology.
    pub fn topology(&self) -> &Hierarchy {
        &self.topo
    }

    /// The engine instance at `node`.
    pub fn engine(&self, node: NodeId) -> &A {
        &self.engines[node.index()]
    }

    /// Mutable access to the engine at `node`.
    pub fn engine_mut(&mut self, node: NodeId) -> &mut A {
        &mut self.engines[node.index()]
    }

    /// Iterates over `(node, engine)` pairs.
    pub fn engines(&self) -> impl Iterator<Item = (NodeId, &A)> {
        self.engines
            .iter()
            .enumerate()
            .map(|(i, a)| (NodeId(i as u32), a))
    }

    /// Latest stream time processed (ns).
    pub fn now_ns(&self) -> u64 {
        self.state.clock_ns
    }

    /// The runtime's structural fingerprint: the shared
    /// [`protocol::config_fingerprint`] with the Persistent restart tag
    /// mixed in — exactly what the simulator computes under its default
    /// restart policy, so sim and live checkpoints are interchangeable.
    fn fingerprint(&self) -> u64 {
        protocol::mix(
            protocol::config_fingerprint(&self.topo, &self.cfg, self.plan.seed),
            0,
        )
    }

    fn checkpoint_payload(&self) -> Vec<u8>
    where
        P: Persist,
        A: Persist,
    {
        let mut w = ByteWriter::new();
        self.fingerprint().save(&mut w);
        self.state.save(&mut w);
        // Restart machinery placeholders (always Persistent here): the
        // simulator writes its per-node snapshots in these slots, so
        // emitting the empty shapes keeps the formats byte-compatible.
        Vec::<Option<Vec<u8>>>::new().save(&mut w);
        Vec::<u64>::new().save(&mut w);
        Vec::<(u64, u32)>::new().save(&mut w);
        w.put_usize(self.engines.len());
        for engine in &self.engines {
            engine.save(&mut w);
        }
        w.into_bytes()
    }

    /// Snapshots the complete runtime state — clock, event queue /
    /// timer wheel, statistics, RNG streams, protocol tables and every
    /// engine — in the same enveloped format as the simulator's
    /// `Network::checkpoint`. A live checkpoint restores into a
    /// simulator network built with matching parameters, and vice
    /// versa.
    pub fn checkpoint(&self) -> Vec<u8>
    where
        P: Persist,
        A: Persist,
    {
        snod_persist::encode_checkpoint(&self.checkpoint_payload())
    }

    /// [`Self::checkpoint`] written atomically to `path`.
    pub fn checkpoint_to_file(&self, path: &Path) -> Result<(), PersistError>
    where
        P: Persist,
        A: Persist,
    {
        snod_persist::write_checkpoint_file(path, &self.checkpoint_payload())
    }

    /// Restores state captured by [`Self::checkpoint`] (or by the
    /// simulator under the default Persistent restart policy) into this
    /// runtime. Verified via the structural fingerprint before anything
    /// is touched; on any error the runtime is left unmodified.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), PersistError>
    where
        P: Persist,
        A: Persist,
    {
        let payload = snod_persist::decode_checkpoint(bytes)?;
        self.restore_payload(payload)
    }

    /// [`Self::restore`] from a checkpoint file.
    pub fn restore_from_file(&mut self, path: &Path) -> Result<(), PersistError>
    where
        P: Persist,
        A: Persist,
    {
        let payload = snod_persist::read_checkpoint_file(path)?;
        self.restore_payload(&payload)
    }

    fn restore_payload(&mut self, payload: &[u8]) -> Result<(), PersistError>
    where
        P: Persist,
        A: Persist,
    {
        let mut r = ByteReader::new(payload);
        if u64::load(&mut r)? != self.fingerprint() {
            return Err(PersistError::Corrupt(
                "checkpoint was taken on a different topology, config or fault plan",
            ));
        }
        let state = EngineState::<P>::load(&mut r)?;
        let n = self.topo.node_count();
        if !state.shape_matches(n, self.topo.level_count()) {
            return Err(PersistError::Corrupt("checkpoint node count mismatch"));
        }
        let last_ckpt = Vec::<Option<Vec<u8>>>::load(&mut r)?;
        let next_ckpt_ns = Vec::<u64>::load(&mut r)?;
        let recoveries = Vec::<(u64, u32)>::load(&mut r)?;
        if !last_ckpt.is_empty() || !next_ckpt_ns.is_empty() || !recoveries.is_empty() {
            return Err(PersistError::Corrupt(
                "checkpoint carries restart snapshots the live runtime does not support",
            ));
        }
        let engine_count = r.get_usize()?;
        if engine_count != n {
            return Err(PersistError::Corrupt("checkpoint app count mismatch"));
        }
        let mut engines = Vec::with_capacity(n);
        for _ in 0..n {
            engines.push(A::load(&mut r)?);
        }
        r.finish()?;
        self.state = state;
        self.engines = engines;
        Ok(())
    }
}
