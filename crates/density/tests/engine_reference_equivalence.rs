//! Property tests: the SoA evaluation engine agrees with a textbook
//! row-major reference implementation across every dimensionality the
//! detectors use (d ∈ {1, 2, 3, 4}).
//!
//! The reference below is deliberately the *old* shape of the hot path —
//! row-major point storage, the branchy piecewise CDF, a division by the
//! bandwidth per coordinate — so this file pins the equivalence contract
//! of the rewrite (DESIGN.md §11):
//!
//! * The engine may reassociate the CDF polynomial, clamp instead of
//!   branch, and multiply by a precomputed reciprocal bandwidth. Each
//!   per-dimension factor therefore differs from the reference by a few
//!   ULP, never more.
//! * Accumulated over the product of `d ≤ 4` factors and the sum over
//!   `|R|` non-negative terms, the documented bound is `1e-9` relative
//!   (observed ≤ ~1e-12); there is no cancellation because every term is
//!   non-negative.
//!
//! Under the `simd` feature on an AVX2 target the same assertions run
//! against the AVX2 backend, which additionally matches the portable
//! loops bit-for-bit (see the `to_bits` tests inside `snod-density`).

use proptest::prelude::*;

use snod_density::{DensityModel, EpanechnikovKernel, Kde, Kde1d, Kernel1d};

fn unit_rows(d: usize, n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.0f64..1.0, d..=d), 8..n)
}

/// Textbook Equation 5: row-major loop, branchy CDF, per-coordinate
/// division by the bandwidth.
fn reference_count(
    centers_row_major: &[f64],
    dims: usize,
    bandwidths: &[f64],
    window_len: f64,
    q: &[f64],
    r: f64,
) -> f64 {
    let k = EpanechnikovKernel;
    let n = centers_row_major.len() / dims;
    let mut sum = 0.0;
    for i in 0..n {
        let row = &centers_row_major[i * dims..(i + 1) * dims];
        let mut prod = 1.0;
        for j in 0..dims {
            let a = (q[j] - r - row[j]) / bandwidths[j];
            let b = (q[j] + r - row[j]) / bandwidths[j];
            prod *= k.cdf(b) - k.cdf(a);
        }
        sum += prod;
    }
    sum / n as f64 * window_len
}

fn assert_close(got: f64, want: f64, q: &[f64], r: f64) -> Result<(), TestCaseError> {
    prop_assert!(
        (got - want).abs() <= 1e-9 * want.abs().max(1.0),
        "engine {} vs reference {} at {:?} (r = {})",
        got,
        want,
        q,
        r
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// d = 1: the sorted-centre fast path.
    #[test]
    fn kde1d_matches_reference(
        sample in prop::collection::vec(0.0f64..1.0, 8..150),
        queries in prop::collection::vec(0.0f64..1.0, 1..16),
        r in 0.001f64..0.4,
        sigma in 0.02f64..0.3,
    ) {
        let kde = Kde1d::from_sample(&sample, sigma, 1_000.0).unwrap();
        let b = [kde.bandwidth()];
        for &q in &queries {
            let got = kde.neighborhood_count(&[q], r).unwrap();
            let want = reference_count(kde.centers(), 1, &b, 1_000.0, &[q], r);
            assert_close(got, want, &[q], r)?;
        }
    }

    /// d ∈ {2, 3, 4}: the product-kernel engine.
    #[test]
    fn kde_matches_reference(
        d in 2usize..=4,
        rows in unit_rows(4, 100),
        queries in unit_rows(4, 12),
        r in 0.001f64..0.4,
    ) {
        let rows: Vec<Vec<f64>> = rows.iter().map(|p| p[..d].to_vec()).collect();
        let sigmas = vec![0.12; d];
        let kde = Kde::from_sample(&rows, &sigmas, 1_000.0).unwrap();
        let centers = kde.centers();
        let bandwidths = kde.bandwidths().to_vec();
        for q in &queries {
            let q = &q[..d];
            let got = kde.neighborhood_count(q, r).unwrap();
            let want = reference_count(&centers, d, &bandwidths, 1_000.0, q, r);
            assert_close(got, want, q, r)?;
        }
    }

    /// The batched sweep obeys the same contract (it shares the engine
    /// bit-for-bit with the scalar path, so this can only fail if the
    /// scalar path itself drifts from the reference).
    #[test]
    fn batched_sweep_matches_reference(
        rows in unit_rows(2, 80),
        queries in unit_rows(2, 30),
        r in 0.001f64..0.3,
    ) {
        let kde = Kde::from_sample(&rows, &[0.1, 0.15], 1_000.0).unwrap();
        let centers = kde.centers();
        let bandwidths = kde.bandwidths().to_vec();
        let flat: Vec<f64> = queries.iter().flat_map(|q| q.iter().copied()).collect();
        let batched = kde.neighborhood_counts(&flat, r).unwrap();
        for (q, &got) in queries.iter().zip(&batched) {
            let want = reference_count(&centers, 2, &bandwidths, 1_000.0, q, r);
            assert_close(got, want, q, r)?;
        }
    }
}

/// Support-edge queries hit the CDF clamp exactly; the engine must still
/// reproduce the reference's exact-zero contributions.
#[test]
fn support_edges_are_exact() {
    let kde = Kde1d::new(vec![0.5], 0.1, 100.0, EpanechnikovKernel).unwrap();
    // Query box exactly abutting the kernel support: [0.7, 0.9] with the
    // kernel living on [0.4, 0.6].
    assert_eq!(kde.neighborhood_count(&[0.8], 0.1).unwrap(), 0.0);
    // Box exactly covering the support gets the full mass.
    let full = kde.neighborhood_count(&[0.5], 0.1).unwrap();
    assert!((full - 100.0).abs() < 1e-9, "{full}");
}
