//! Algorithm MGDD — Multi-Granular Deviation Detection (paper Section 8,
//! Figure 4).
//!
//! MDEF-based outliers are *non-decomposable* (a union-window outlier
//! need not be an outlier in any child window), so Theorem 3 does not
//! apply and detection happens **only at the leaf sensors**, against a
//! replica of a leader's *global* estimator model:
//!
//! * Upward: leaves (and intermediate leaders) forward chain-sample
//!   acceptances with probability `f`, exactly as in D3.
//! * Downward: when a broadcasting leader's sample accepts a value, the
//!   update is relayed down the tree to every descendant leaf, which
//!   maintains a FIFO replica `R_g` plus the leader's current `σ_g`
//!   (Section 8.1 — `(f·l)^n` update messages per observation).
//! * Optimised: with [`UpdateStrategy::OnModelChange`], the leader
//!   instead re-broadcasts its full model only when the JS-divergence
//!   from the last broadcast exceeds a threshold.
//!
//! By default only the top-level leader broadcasts (the paper's MGDD);
//! [`MgddConfig`]-driven runs can additionally enable intermediate
//! levels, giving the multi-granularity flexibility of Section 3's
//! example (outliers "with respect to an entire region").
//!
//! ## Faults and graceful degradation
//!
//! Global-model updates (both deltas and full models) travel with the
//! simulator's ack/retry protocol when [`SimConfig::with_reliability`]
//! is set, so transient loss delays rather than silences the downward
//! stream. When a leaf's replica nonetheless goes stale — its leader
//! crashed, or the retry budget ran out — the
//! [`MgddConfig::staleness_bound_ns`] bound kicks in: the leaf scores
//! against the last-known model only while nothing fresher exists
//! (surfaced as `NetStats::degraded_scores`) and, once fully orphaned,
//! falls back to MDEF over its *own* estimator, tagging those
//! detections with its leaf level (surfaced as
//! `NetStats::local_fallbacks`). [`run_mgdd_with_faults`] wires a
//! [`FaultPlan`] into the run.

use rand::Rng;

use snod_density::js_divergence_models;
use snod_outlier::MdefDetector;
use snod_persist::{ByteReader, ByteWriter, Persist, PersistError, SeededRng};
use snod_simnet::{
    Ctx, DetectorEngine, FaultPlan, Hierarchy, Network, NodeId, SimConfig, StreamSource, Wire,
};

use crate::config::{CoreError, MgddConfig, UpdateStrategy};
use crate::d3::Detection;
use crate::estimator::{SensorEstimator, SensorModel};
use crate::replica::IncrementalReplica;

/// MGDD wire messages.
#[derive(Debug, Clone)]
pub enum MgddPayload {
    /// A chain-sample acceptance forwarded upward with probability `f`.
    SampleValue(Vec<f64>),
    /// Incremental global-model update flowing down from a broadcasting
    /// leader at `origin_level`: one new sample value plus the leader's
    /// current σ estimate and conceptual window length.
    GlobalDelta {
        /// Tier of the broadcasting leader.
        origin_level: u8,
        /// The newly accepted sample value.
        value: Vec<f64>,
        /// The leader's per-dimension σ estimates.
        sigmas: Vec<f64>,
        /// The leader's conceptual window `|W_g|`.
        window_len: f64,
    },
    /// Full-model replacement used by the model-change update strategy.
    GlobalModel {
        /// Tier of the broadcasting leader.
        origin_level: u8,
        /// The leader's full current sample.
        sample: Vec<Vec<f64>>,
        /// The leader's per-dimension σ estimates.
        sigmas: Vec<f64>,
        /// The leader's conceptual window `|W_g|`.
        window_len: f64,
    },
}

impl Wire for MgddPayload {
    fn size_bytes(&self) -> usize {
        // 2 bytes per number (paper's 16-bit accounting) + 1-byte tag.
        match self {
            MgddPayload::SampleValue(v) => v.len() * 2 + 1,
            MgddPayload::GlobalDelta { value, sigmas, .. } => {
                value.len() * 2 + sigmas.len() * 2 + 2 + 1
            }
            MgddPayload::GlobalModel { sample, sigmas, .. } => {
                sample.iter().map(|v| v.len() * 2).sum::<usize>() + sigmas.len() * 2 + 2 + 1
            }
        }
    }
}

/// Per-node MGDD state (leaf and leader behaviour in one type; the role
/// decides which paths run).
pub struct MgddNode {
    est: SensorEstimator,
    cfg: MgddConfig,
    rng: SeededRng,
    level: u8,
    /// Does this leader broadcast global updates?
    broadcasts: bool,
    /// Leaf replicas of broadcasting leaders' models, by origin level —
    /// maintained incrementally under `cfg.estimator.rebuild`.
    replicas: Vec<(u8, IncrementalReplica)>,
    /// Model snapshot at the last full broadcast (model-change strategy).
    last_broadcast: Option<SensorModel>,
    /// Accepted values since the last model-change check.
    since_check: u64,
    /// Outliers detected at this leaf, tagged with the granularity level
    /// of the global model that flagged them.
    pub detections: Vec<Detection>,
}

impl MgddNode {
    /// Builds the node for `node` in `topo`. `broadcast_levels` lists the
    /// leader tiers that maintain a global model (the paper's MGDD uses
    /// only the top tier).
    pub fn new(node: NodeId, topo: &Hierarchy, cfg: &MgddConfig, broadcast_levels: &[u8]) -> Self {
        let level = topo.level_of(node);
        let mut est_cfg = cfg.estimator;
        est_cfg.seed = est_cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (node.0 as u64);
        // Leaders run the same estimator over their own arrival stream
        // (a uniform random sample of the subtree's readings); MDEF is a
        // ratio of counts, so the sub-sampling cancels out.
        let est = SensorEstimator::new(est_cfg);
        let replicas = if level == 1 {
            broadcast_levels
                .iter()
                .map(|&l| {
                    (
                        l,
                        IncrementalReplica::new(cfg.estimator.sample_size, cfg.estimator.rebuild),
                    )
                })
                .collect()
        } else {
            Vec::new()
        };
        Self {
            est,
            cfg: *cfg,
            rng: SeededRng::seed_from_u64(est_cfg.seed ^ 0x16DD),
            level,
            broadcasts: level > 1 && broadcast_levels.contains(&level),
            replicas,
            last_broadcast: None,
            since_check: 0,
            detections: Vec::new(),
        }
    }

    /// The node's estimator.
    pub fn estimator(&self) -> &SensorEstimator {
        &self.est
    }

    /// Handles a value entering this node's estimator (a reading at a
    /// leaf, a forwarded sample value at a leader).
    fn absorb(&mut self, ctx: &mut Ctx<'_, MgddPayload>, value: &[f64]) {
        // A mis-dimensioned value (miswired source or a peer on a
        // different configuration) is dropped and counted, not fatal.
        let Ok(accepted) = self.est.observe(value) else {
            snod_obs::counter!("core.bad_readings").incr();
            return;
        };
        if !accepted {
            return;
        }
        if self.rng.gen::<f64>() < self.cfg.sample_fraction {
            ctx.send_parent(MgddPayload::SampleValue(value.to_vec()));
        }
        if self.broadcasts {
            self.broadcast(ctx, value);
        }
    }

    /// Pushes a global-model update downward according to the strategy.
    /// Updates ride the reliable channel: under a retry policy a lost
    /// frame is retransmitted instead of silently thinning the replicas.
    fn broadcast(&mut self, ctx: &mut Ctx<'_, MgddPayload>, value: &[f64]) {
        match self.cfg.updates {
            UpdateStrategy::EveryAcceptance => {
                snod_obs::counter!("core.mgdd.broadcasts").incr();
                ctx.send_children_reliable(MgddPayload::GlobalDelta {
                    origin_level: self.level,
                    value: value.to_vec(),
                    sigmas: self.est.sigmas(),
                    window_len: self.est.window_len(),
                });
            }
            UpdateStrategy::OnModelChange {
                js_threshold,
                check_every,
            } => {
                self.since_check += 1;
                if self.since_check < check_every {
                    return;
                }
                self.since_check = 0;
                let Ok(current) = self.est.model() else {
                    return;
                };
                let changed = match &self.last_broadcast {
                    None => true,
                    Some(prev) => js_divergence_models(prev, &current, 32)
                        .map(|d| d > js_threshold)
                        .unwrap_or(true),
                };
                if changed {
                    snod_obs::counter!("core.mgdd.broadcasts").incr();
                    ctx.send_children_reliable(MgddPayload::GlobalModel {
                        origin_level: self.level,
                        sample: self.est.sample(),
                        sigmas: self.est.sigmas(),
                        window_len: self.est.window_len(),
                    });
                    self.last_broadcast = Some(current);
                }
            }
        }
    }

    /// Leaf-side MDEF check of a new observation against every warm
    /// global replica (paper Figure 4, MGDD `IsOutlier`), with the
    /// graceful-degradation ladder of `cfg.staleness_bound_ns`:
    ///
    /// 1. fresh replicas (updated within the bound) score normally;
    /// 2. with *only* stale replicas, the leaf scores against the
    ///    last-known models and notes a degraded score per verdict;
    /// 3. orphaned entirely (no warm replica at all), a warm leaf falls
    ///    back to MDEF over its own estimator, tagging the detection
    ///    with its own (leaf) level.
    fn check(&mut self, ctx: &mut Ctx<'_, MgddPayload>, p: &[f64]) {
        let time_ns = ctx.time_ns;
        let bound = self.cfg.staleness_bound_ns;
        let mut fresh = Vec::new();
        let mut stale = Vec::new();
        for (i, (_, replica)) in self.replicas.iter().enumerate() {
            if !replica.is_warm() {
                continue;
            }
            match bound {
                Some(b) if replica.is_stale(time_ns, b) => stale.push(i),
                _ => fresh.push(i),
            }
        }
        let degraded = fresh.is_empty() && !stale.is_empty();
        let scorable = if degraded { &stale } else { &fresh };
        let detector = MdefDetector::new(self.cfg.rule);
        let mut hits = Vec::new();
        for &i in scorable {
            let (origin, replica) = &mut self.replicas[i];
            let Ok(model) = replica.model() else { continue };
            snod_obs::counter!("core.mgdd.scored").incr();
            if let Ok(eval) = detector.evaluate(model, p) {
                if degraded {
                    ctx.note_degraded_score();
                }
                if eval.is_outlier {
                    hits.push(*origin);
                }
            }
        }
        if bound.is_some()
            && scorable.is_empty()
            && !self.replicas.is_empty()
            && self.est.observed() >= self.est.config().sample_size as u64
        {
            ctx.note_local_fallback();
            if let Ok(eval) = self.est.evaluate_mdef(p, &self.cfg.rule) {
                if eval.is_outlier {
                    hits.push(self.level);
                }
            }
        }
        for origin in hits {
            snod_obs::counter!("core.mgdd.detections").incr();
            self.detections.push(Detection {
                time_ns,
                value: p.to_vec(),
                level: origin,
            });
        }
    }
}

impl DetectorEngine<MgddPayload> for MgddNode {
    fn ingest(&mut self, ctx: &mut Ctx<'_, MgddPayload>, value: &[f64]) {
        self.check(ctx, value);
        self.absorb(ctx, value);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, MgddPayload>, _from: NodeId, payload: MgddPayload) {
        match payload {
            MgddPayload::SampleValue(v) => self.absorb(ctx, &v),
            MgddPayload::GlobalDelta {
                origin_level,
                value,
                sigmas,
                window_len,
            } => {
                if self.level == 1 {
                    if let Some((_, replica)) =
                        self.replicas.iter_mut().find(|(l, _)| *l == origin_level)
                    {
                        replica.push(value, sigmas, window_len);
                        replica.touch(ctx.time_ns);
                    }
                } else {
                    // Intermediate leader: relay downward (Section 8.1,
                    // "via the intermediate leaders"), keeping the
                    // reliable channel hop by hop.
                    ctx.send_children_reliable(MgddPayload::GlobalDelta {
                        origin_level,
                        value,
                        sigmas,
                        window_len,
                    });
                }
            }
            MgddPayload::GlobalModel {
                origin_level,
                sample,
                sigmas,
                window_len,
            } => {
                if self.level == 1 {
                    if let Some((_, replica)) =
                        self.replicas.iter_mut().find(|(l, _)| *l == origin_level)
                    {
                        replica.replace(sample, sigmas, window_len);
                        replica.touch(ctx.time_ns);
                    }
                } else {
                    ctx.send_children_reliable(MgddPayload::GlobalModel {
                        origin_level,
                        sample,
                        sigmas,
                        window_len,
                    });
                }
            }
        }
    }
}

impl Persist for MgddPayload {
    fn save(&self, w: &mut ByteWriter) {
        match self {
            MgddPayload::SampleValue(v) => {
                w.put_u8(0);
                v.save(w);
            }
            MgddPayload::GlobalDelta {
                origin_level,
                value,
                sigmas,
                window_len,
            } => {
                w.put_u8(1);
                origin_level.save(w);
                value.save(w);
                sigmas.save(w);
                window_len.save(w);
            }
            MgddPayload::GlobalModel {
                origin_level,
                sample,
                sigmas,
                window_len,
            } => {
                w.put_u8(2);
                origin_level.save(w);
                sample.save(w);
                sigmas.save(w);
                window_len.save(w);
            }
        }
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        match r.get_u8()? {
            0 => Ok(MgddPayload::SampleValue(Vec::<f64>::load(r)?)),
            1 => Ok(MgddPayload::GlobalDelta {
                origin_level: u8::load(r)?,
                value: Vec::<f64>::load(r)?,
                sigmas: Vec::<f64>::load(r)?,
                window_len: f64::load(r)?,
            }),
            2 => Ok(MgddPayload::GlobalModel {
                origin_level: u8::load(r)?,
                sample: Vec::<Vec<f64>>::load(r)?,
                sigmas: Vec::<f64>::load(r)?,
                window_len: f64::load(r)?,
            }),
            _ => Err(PersistError::Corrupt("unknown mgdd payload tag")),
        }
    }
}

impl Persist for MgddNode {
    fn save(&self, w: &mut ByteWriter) {
        self.est.save(w);
        self.cfg.save(w);
        self.rng.save(w);
        self.level.save(w);
        self.broadcasts.save(w);
        self.replicas.save(w);
        self.last_broadcast.save(w);
        self.since_check.save(w);
        self.detections.save(w);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            est: SensorEstimator::load(r)?,
            cfg: MgddConfig::load(r)?,
            rng: SeededRng::load(r)?,
            level: u8::load(r)?,
            broadcasts: bool::load(r)?,
            replicas: Vec::<(u8, IncrementalReplica)>::load(r)?,
            last_broadcast: Option::<SensorModel>::load(r)?,
            since_check: u64::load(r)?,
            detections: Vec::<Detection>::load(r)?,
        })
    }
}

/// Runs MGDD with the paper's default top-level-only global model.
pub fn run_mgdd<S: StreamSource>(
    topo: Hierarchy,
    cfg: &MgddConfig,
    sim: SimConfig,
    source: &mut S,
    readings_per_leaf: u64,
) -> Result<Network<MgddPayload, MgddNode>, CoreError> {
    let top = topo.level_count() as u8;
    run_mgdd_with_levels(topo, cfg, sim, source, readings_per_leaf, &[top])
}

/// Runs MGDD with global models maintained at every tier in
/// `broadcast_levels` — the multi-granularity mode of Section 3.
pub fn run_mgdd_with_levels<S: StreamSource>(
    topo: Hierarchy,
    cfg: &MgddConfig,
    sim: SimConfig,
    source: &mut S,
    readings_per_leaf: u64,
    broadcast_levels: &[u8],
) -> Result<Network<MgddPayload, MgddNode>, CoreError> {
    run_mgdd_with_faults(
        topo,
        cfg,
        sim,
        FaultPlan::none(),
        source,
        readings_per_leaf,
        broadcast_levels,
    )
}

/// Runs MGDD under a fault schedule: `plan` drives crashes, link faults
/// and loss bursts, while `sim` (optionally carrying a
/// [`snod_simnet::RetryPolicy`]) decides how hard global-model updates
/// fight back. With [`FaultPlan::none()`] this is bit-identical to
/// [`run_mgdd_with_levels`].
#[allow(clippy::too_many_arguments)]
pub fn run_mgdd_with_faults<S: StreamSource>(
    topo: Hierarchy,
    cfg: &MgddConfig,
    sim: SimConfig,
    plan: FaultPlan,
    source: &mut S,
    readings_per_leaf: u64,
    broadcast_levels: &[u8],
) -> Result<Network<MgddPayload, MgddNode>, CoreError> {
    let mut net = build_mgdd_network(topo, cfg, sim, plan, broadcast_levels)?;
    net.run(source, readings_per_leaf);
    Ok(net)
}

/// Builds the MGDD network without running it, for callers that drive
/// the simulation themselves — checkpoint/resume needs to restore state
/// (or stop at an intermediate instant via [`Network::run_until`])
/// before events are processed.
pub fn build_mgdd_network(
    topo: Hierarchy,
    cfg: &MgddConfig,
    sim: SimConfig,
    plan: FaultPlan,
    broadcast_levels: &[u8],
) -> Result<Network<MgddPayload, MgddNode>, CoreError> {
    cfg.validate()?;
    Ok(Network::new(topo, sim, |node, topo| {
        MgddNode::new(node, topo, cfg, broadcast_levels)
    })
    .with_fault_plan(plan))
}

/// Builds the *live* (wall-clock) runtime over the identical MGDD
/// engines; see `build_d3_live` for the sim-vs-live equivalence
/// contract.
pub fn build_mgdd_live(
    topo: Hierarchy,
    cfg: &MgddConfig,
    sim: SimConfig,
    plan: FaultPlan,
    broadcast_levels: &[u8],
) -> Result<snod_simnet::LiveRuntime<MgddPayload, MgddNode>, CoreError> {
    cfg.validate()?;
    Ok(snod_simnet::LiveRuntime::new(topo, sim, |node, topo| {
        MgddNode::new(node, topo, cfg, broadcast_levels)
    })
    .with_fault_plan(plan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use snod_outlier::MdefConfig;

    fn test_config() -> MgddConfig {
        MgddConfig {
            estimator: crate::config::EstimatorConfig::builder()
                .window(400)
                .sample_size(64)
                .seed(5)
                .build()
                .unwrap(),
            rule: MdefConfig::new(0.08, 0.01, 3.0).unwrap(),
            sample_fraction: 0.75,
            updates: UpdateStrategy::EveryAcceptance,
            staleness_bound_ns: None,
        }
    }

    /// Uniform dense block on [0.40, 0.50] across all leaves; leaf 0
    /// occasionally emits a skirt value at 0.55.
    fn block_source() -> impl FnMut(NodeId, u64) -> Option<Vec<f64>> {
        |node: NodeId, seq: u64| {
            if node.0 == 0 && seq % 150 == 149 {
                Some(vec![0.55])
            } else {
                Some(vec![
                    0.40 + 0.10 * (((seq * 7 + node.0 as u64 * 13) % 100) as f64) / 100.0,
                ])
            }
        }
    }

    #[test]
    fn global_replicas_fill_at_the_leaves() {
        let topo = Hierarchy::balanced(4, &[2, 2]).unwrap();
        let mut src = block_source();
        let net = run_mgdd(topo, &test_config(), SimConfig::default(), &mut src, 800).unwrap();
        for &leaf in net.topology().leaves() {
            let node = net.app(leaf);
            assert_eq!(node.replicas.len(), 1);
            assert!(
                node.replicas[0].1.is_warm(),
                "replica at {leaf} never warmed up ({} values)",
                node.replicas[0].1.sample_len()
            );
        }
    }

    #[test]
    fn skirt_values_are_detected_at_the_leaf() {
        let topo = Hierarchy::balanced(4, &[2, 2]).unwrap();
        let mut src = block_source();
        let net = run_mgdd(topo, &test_config(), SimConfig::default(), &mut src, 1_200).unwrap();
        let leaf0 = net.app(NodeId(0));
        assert!(
            leaf0
                .detections
                .iter()
                .any(|d| (d.value[0] - 0.55).abs() < 1e-9),
            "skirt value never flagged ({} detections)",
            leaf0.detections.len()
        );
    }

    #[test]
    fn core_values_are_not_flagged_in_steady_state() {
        // The global replica needs time to mature (the root only sees a
        // thin sub-sampled arrival stream in this miniature setup), so
        // only steady-state detections — second half of the run — count.
        let topo = Hierarchy::balanced(4, &[2, 2]).unwrap();
        let mut src = block_source();
        let net = run_mgdd(topo, &test_config(), SimConfig::default(), &mut src, 1_200).unwrap();
        let half = net.now_ns() / 2;
        for &leaf in net.topology().leaves() {
            let false_hits = net
                .app(leaf)
                .detections
                .iter()
                .filter(|d| d.time_ns > half && d.value[0] < 0.52)
                .count();
            // ~600 core readings per leaf in the second half; the tiny
            // |R| = 64 sample makes per-reading counts noisy, so allow a
            // modest false-flag rate — the discriminative power is the
            // skirt test above.
            assert!(
                false_hits <= 90,
                "leaf {leaf}: {false_hits} core values flagged"
            );
        }
    }

    #[test]
    fn only_leaves_detect() {
        let topo = Hierarchy::balanced(4, &[2, 2]).unwrap();
        let mut src = block_source();
        let net = run_mgdd(topo, &test_config(), SimConfig::default(), &mut src, 600).unwrap();
        for level in 2..=net.topology().level_count() {
            for &leader in net.topology().level(level) {
                assert!(net.app(leader).detections.is_empty());
            }
        }
    }

    #[test]
    fn model_change_strategy_sends_fewer_updates() {
        let topo = Hierarchy::balanced(4, &[2, 2]).unwrap();
        let mut cfg = test_config();
        let mut src = block_source();
        let every = run_mgdd(topo.clone(), &cfg, SimConfig::default(), &mut src, 800).unwrap();
        cfg.updates = UpdateStrategy::OnModelChange {
            js_threshold: 0.05,
            check_every: 8,
        };
        let mut src2 = block_source();
        let lazy = run_mgdd(topo, &cfg, SimConfig::default(), &mut src2, 800).unwrap();
        assert!(
            lazy.stats().messages < every.stats().messages,
            "model-change updates ({}) not cheaper than per-acceptance ({})",
            lazy.stats().messages,
            every.stats().messages
        );
    }

    #[test]
    fn fault_free_plan_is_identical_to_plain_run() {
        let topo = Hierarchy::balanced(4, &[2, 2]).unwrap();
        let top = topo.level_count() as u8;
        let mut a = block_source();
        let plain =
            run_mgdd(topo.clone(), &test_config(), SimConfig::default(), &mut a, 600).unwrap();
        let mut b = block_source();
        let faulty = run_mgdd_with_faults(
            topo,
            &test_config(),
            SimConfig::default(),
            FaultPlan::none(),
            &mut b,
            600,
            &[top],
        )
        .unwrap();
        assert_eq!(plain.stats(), faulty.stats());
        for &leaf in plain.topology().leaves() {
            assert_eq!(plain.app(leaf).detections, faulty.app(leaf).detections);
        }
    }

    #[test]
    fn stale_replicas_score_degraded_but_still_detect() {
        // A 1 ns staleness bound makes every warm replica permanently
        // stale (updates always arrive at least a latency earlier than
        // the next reading tick): scoring proceeds against the
        // last-known models and every verdict is counted as degraded.
        let topo = Hierarchy::balanced(4, &[2, 2]).unwrap();
        let mut cfg = test_config();
        cfg.staleness_bound_ns = Some(1);
        let mut src = block_source();
        let net = run_mgdd(topo, &cfg, SimConfig::default(), &mut src, 1_200).unwrap();
        assert!(net.stats().degraded_scores > 0, "no degraded scores");
        let leaf0 = net.app(NodeId(0));
        assert!(
            leaf0
                .detections
                .iter()
                .any(|d| (d.value[0] - 0.55).abs() < 1e-9),
            "skirt value lost despite last-known-model scoring"
        );
    }

    #[test]
    fn orphaned_leaves_fall_back_to_local_detection() {
        // The sole broadcaster is dead from t = 0: replicas never warm,
        // so leaves must detect with their own models, tagged level 1.
        let topo = Hierarchy::balanced(4, &[2, 2]).unwrap();
        let root = topo.root();
        let mut cfg = test_config();
        cfg.staleness_bound_ns = Some(5_000_000_000);
        let plan = FaultPlan::none().crash(root, 0, None);
        let top = topo.level_count() as u8;
        let mut src = block_source();
        let net = run_mgdd_with_faults(
            topo,
            &cfg,
            SimConfig::default(),
            plan,
            &mut src,
            800,
            &[top],
        )
        .unwrap();
        assert!(net.stats().local_fallbacks > 0, "no local fallbacks");
        for &leaf in net.topology().leaves() {
            assert!(
                net.app(leaf).detections.iter().all(|d| d.level == 1),
                "non-local detection without any global model"
            );
        }
    }

    #[test]
    fn multi_level_broadcast_tags_detections_by_origin() {
        let topo = Hierarchy::balanced(4, &[2, 2]).unwrap();
        let cfg = test_config();
        let mut src = block_source();
        let net = run_mgdd_with_levels(topo, &cfg, SimConfig::default(), &mut src, 1_200, &[2, 3])
            .unwrap();
        let leaf0 = net.app(NodeId(0));
        assert_eq!(leaf0.replicas.len(), 2);
        let levels: std::collections::HashSet<u8> =
            leaf0.detections.iter().map(|d| d.level).collect();
        assert!(
            levels.iter().all(|&l| l == 2 || l == 3),
            "unexpected origin levels {levels:?}"
        );
    }
}
