//! Configuration types with the paper's defaults.

use snod_density::DensityError;
use snod_outlier::{DistanceOutlierConfig, MdefConfig};
use snod_persist::{ByteReader, ByteWriter, Persist, PersistError};
use snod_sketch::SketchError;

/// Errors surfaced by the core algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A sketch rejected its parameters.
    Sketch(SketchError),
    /// A density model rejected its input.
    Density(DensityError),
    /// A configuration field was invalid.
    Config(&'static str),
    /// The estimator has not observed any data yet.
    NoData,
    /// A checkpoint could not be written or read back.
    Persist(PersistError),
}

impl From<SketchError> for CoreError {
    fn from(e: SketchError) -> Self {
        CoreError::Sketch(e)
    }
}

impl From<DensityError> for CoreError {
    fn from(e: DensityError) -> Self {
        CoreError::Density(e)
    }
}

impl From<PersistError> for CoreError {
    fn from(e: PersistError) -> Self {
        CoreError::Persist(e)
    }
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Sketch(e) => write!(f, "sketch error: {e}"),
            CoreError::Density(e) => write!(f, "density error: {e}"),
            CoreError::Config(what) => write!(f, "invalid configuration: {what}"),
            CoreError::NoData => write!(f, "estimator has not observed any data yet"),
            CoreError::Persist(e) => write!(f, "checkpoint error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// When an incrementally maintained kernel model is fully rebuilt.
///
/// Between rebuilds the kernel *centres* track the data exactly (FIFO
/// replicas merge each push in `O(log|R| + shift)`; estimators serve the
/// cached model), while the *bandwidths* stay at their last-rebuild
/// values. The paper's rule `Bᵢ = √5·σᵢ·|R|^(−1/(d+4))` makes the
/// resulting error boundable: a relative σ drift of at most `ε` perturbs
/// every bandwidth by at most the same factor `(1+ε)`, and since the
/// Epanechnikov CDF is Lipschitz in its bandwidth, every probability
/// (hence every neighborhood count `N(p, r)`) moves by `O(ε)` of the
/// kernel mass that straddles the query boundary — the bulk of the mass,
/// strictly inside or outside the query box, contributes error zero.
/// MDEF, a *ratio* of such counts, is even less sensitive. The policy
/// therefore caps `ε` via [`sigma_tolerance`](Self::sigma_tolerance) and
/// additionally forces a rebuild every
/// [`rebuild_every`](Self::rebuild_every) pushes, which also bounds the
/// drift of the `|R|^(−1/(d+4))` factor to
/// `(1 + rebuild_every/|R|)^(1/(d+4))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebuildPolicy {
    /// Hard epoch length: force a full rebuild after this many
    /// model-changing pushes (1 = rebuild on every push, the pre-epoch
    /// behaviour).
    pub rebuild_every: u64,
    /// Early-rebuild trigger: maximum tolerated relative drift of any
    /// dimension's σ since the bandwidths were last derived.
    pub sigma_tolerance: f64,
}

impl Default for RebuildPolicy {
    fn default() -> Self {
        Self {
            rebuild_every: 32,
            sigma_tolerance: 0.1,
        }
    }
}

impl RebuildPolicy {
    /// A policy reproducing the pre-epoch behaviour: full rebuild on
    /// every push.
    pub fn always() -> Self {
        Self {
            rebuild_every: 1,
            sigma_tolerance: 0.0,
        }
    }

    /// Validates the policy.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.rebuild_every == 0 {
            return Err(CoreError::Config("rebuild interval must be positive"));
        }
        if !(self.sigma_tolerance >= 0.0) {
            return Err(CoreError::Config("sigma tolerance must be non-negative"));
        }
        Ok(())
    }

    /// Whether any dimension's σ has drifted beyond the tolerance since
    /// the bandwidths were derived from `built`.
    pub fn sigma_drift_exceeded(&self, built: &[f64], current: &[f64]) -> bool {
        if built.len() != current.len() {
            return true;
        }
        built.iter().zip(current).any(|(&b, &s)| {
            let denom = b.abs().max(f64::EPSILON);
            ((s - b) / denom).abs() > self.sigma_tolerance
        })
    }

    /// The epoch decision: rebuild when the push budget is exhausted or
    /// the σ drift exceeds the tolerance.
    pub fn should_rebuild(&self, pushes_since_rebuild: u64, built: &[f64], current: &[f64]) -> bool {
        pushes_since_rebuild >= self.rebuild_every || self.sigma_drift_exceeded(built, current)
    }
}

/// Online KDE model compression, applied right after every full model
/// rebuild: near-duplicate kernel centres (within
/// [`tolerance`](Self::tolerance) bandwidths of each other in every
/// dimension) merge into single weighted centres, and the tolerance
/// escalates until at most [`budget`](Self::budget) centres remain. The
/// scoring hot path then evaluates `budget` kernels instead of `|R|`,
/// with query error bounded by `~1.5·d·tolerance` per unit of
/// probability mass (see `snod_density::CompressionStats`). Disabled by
/// default ([`EstimatorConfig::compression`] is `None`), which keeps the
/// model bit-identical to the uncompressed baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelCompression {
    /// Maximum number of weighted kernel centres after compression.
    pub budget: usize,
    /// Merge radius in bandwidth units (the starting tolerance; it
    /// doubles as needed to meet the budget).
    pub tolerance: f64,
}

impl ModelCompression {
    /// Validates the knob.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.budget == 0 {
            return Err(CoreError::Config("compression budget must be positive"));
        }
        if !(self.tolerance >= 0.0) || !self.tolerance.is_finite() {
            return Err(CoreError::Config(
                "compression tolerance must be finite and non-negative",
            ));
        }
        Ok(())
    }
}

impl Persist for ModelCompression {
    fn save(&self, w: &mut ByteWriter) {
        self.budget.save(w);
        self.tolerance.save(w);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let c = Self {
            budget: usize::load(r)?,
            tolerance: f64::load(r)?,
        };
        c.validate()
            .map_err(|_| PersistError::Corrupt("invalid compression config"))?;
        Ok(c)
    }
}

/// Per-node estimator parameters (Section 5). Defaults follow the
/// paper's experiments: `|W| = 10,000`, `|R| = 0.05·|W|`, ε = 0.2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimatorConfig {
    /// Sliding-window length `|W|`.
    pub window: usize,
    /// Kernel sample size `|R|`.
    pub sample_size: usize,
    /// Data dimensionality `d`.
    pub dimensions: usize,
    /// Error parameter ε of the windowed variance sketch.
    pub variance_epsilon: f64,
    /// RNG seed for the chain sampler.
    pub seed: u64,
    /// Epoch policy for the incrementally maintained kernel models (both
    /// the node's own cached model and any FIFO replica built from its
    /// broadcasts — `MgddConfig` and `MonitorConfig` expose it here).
    pub rebuild: RebuildPolicy,
    /// Optional online model compression applied after every rebuild;
    /// `None` (the default) keeps every kernel at weight 1.
    pub compression: Option<ModelCompression>,
}

impl EstimatorConfig {
    /// Starts a builder with the paper's defaults.
    pub fn builder() -> EstimatorConfigBuilder {
        EstimatorConfigBuilder::default()
    }

    /// Re-validates the fields (the builder already enforces these, but
    /// the fields are public, so hand-assembled configurations can be out
    /// of range — the run_* entry points call this so a bad config
    /// surfaces as a typed [`CoreError`] instead of a panic inside a
    /// simulation callback).
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.window == 0 {
            return Err(CoreError::Config("window must be positive"));
        }
        if self.sample_size == 0 {
            return Err(CoreError::Config("sample size must be positive"));
        }
        if self.dimensions == 0 {
            return Err(CoreError::Config("dimensionality must be positive"));
        }
        if !(self.variance_epsilon > 0.0 && self.variance_epsilon <= 1.0) {
            return Err(CoreError::Config("variance epsilon must lie in (0, 1]"));
        }
        if let Some(c) = &self.compression {
            c.validate()?;
        }
        self.rebuild.validate()
    }
}

/// Builder for [`EstimatorConfig`].
#[derive(Debug, Clone)]
pub struct EstimatorConfigBuilder {
    window: usize,
    sample_size: Option<usize>,
    dimensions: usize,
    variance_epsilon: f64,
    seed: u64,
    rebuild: RebuildPolicy,
    compression: Option<ModelCompression>,
}

impl Default for EstimatorConfigBuilder {
    fn default() -> Self {
        Self {
            window: 10_000,
            sample_size: None,
            dimensions: 1,
            variance_epsilon: 0.2,
            seed: 0,
            rebuild: RebuildPolicy::default(),
            compression: None,
        }
    }
}

impl EstimatorConfigBuilder {
    /// Sets the sliding-window length `|W|`.
    pub fn window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }

    /// Sets the sample size `|R|` (defaults to `0.05·|W|`).
    pub fn sample_size(mut self, sample_size: usize) -> Self {
        self.sample_size = Some(sample_size);
        self
    }

    /// Sets the data dimensionality.
    pub fn dimensions(mut self, dims: usize) -> Self {
        self.dimensions = dims;
        self
    }

    /// Sets the variance-sketch error parameter ε.
    pub fn variance_epsilon(mut self, eps: f64) -> Self {
        self.variance_epsilon = eps;
        self
    }

    /// Sets the sampler seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the epoch-based model rebuild policy.
    pub fn rebuild_policy(mut self, rebuild: RebuildPolicy) -> Self {
        self.rebuild = rebuild;
        self
    }

    /// Enables online model compression after every rebuild.
    pub fn compression(mut self, compression: ModelCompression) -> Self {
        self.compression = Some(compression);
        self
    }

    /// Validates and produces the configuration.
    pub fn build(self) -> Result<EstimatorConfig, CoreError> {
        if self.window == 0 {
            return Err(CoreError::Config("window must be positive"));
        }
        if self.dimensions == 0 {
            return Err(CoreError::Config("dimensionality must be positive"));
        }
        if !(self.variance_epsilon > 0.0 && self.variance_epsilon <= 1.0) {
            return Err(CoreError::Config("variance epsilon must lie in (0, 1]"));
        }
        let sample_size = self
            .sample_size
            .unwrap_or_else(|| (self.window as f64 * 0.05).round().max(1.0) as usize);
        if sample_size == 0 {
            return Err(CoreError::Config("sample size must be positive"));
        }
        self.rebuild.validate()?;
        if let Some(c) = &self.compression {
            c.validate()?;
        }
        Ok(EstimatorConfig {
            window: self.window,
            sample_size,
            dimensions: self.dimensions,
            variance_epsilon: self.variance_epsilon,
            seed: self.seed,
            rebuild: self.rebuild,
            compression: self.compression,
        })
    }
}

/// Configuration of the D3 algorithm (Section 7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct D3Config {
    /// Per-node estimator parameters.
    pub estimator: EstimatorConfig,
    /// The `(D, r)`-outlier rule.
    pub rule: DistanceOutlierConfig,
    /// Sample-propagation fraction `f` (paper default 0.5).
    pub sample_fraction: f64,
}

impl D3Config {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), CoreError> {
        self.estimator.validate()?;
        if !(0.0..=1.0).contains(&self.sample_fraction) {
            return Err(CoreError::Config("sample fraction must lie in [0, 1]"));
        }
        if !(self.rule.radius > 0.0) {
            return Err(CoreError::Config("outlier radius must be positive"));
        }
        Ok(())
    }
}

/// How leaders propagate global-model updates to the leaves (Section 8.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UpdateStrategy {
    /// Push every accepted sample value down immediately (the base MGDD
    /// scheme: `(f·l)^n` update messages per observation per sensor).
    EveryAcceptance,
    /// Push the full model only when its JS-divergence from the last
    /// broadcast model exceeds `js_threshold` (checked every
    /// `check_every` accepted values) — the paper's *"update the children
    /// only when their estimator model has significantly changed"*
    /// optimisation.
    OnModelChange {
        /// JS-divergence threshold in `[0, 1]`.
        js_threshold: f64,
        /// Number of accepted values between divergence checks.
        check_every: u64,
    },
}

/// Configuration of the MGDD algorithm (Section 8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MgddConfig {
    /// Per-node estimator parameters.
    pub estimator: EstimatorConfig,
    /// The MDEF rule (`r`, `αr`, `k_σ`).
    pub rule: MdefConfig,
    /// Sample-propagation fraction `f`.
    pub sample_fraction: f64,
    /// Global-model update strategy.
    pub updates: UpdateStrategy,
    /// Graceful-degradation knob for faulty networks: the maximum age
    /// (in simulated ns) of a global replica before a leaf stops
    /// trusting it. Past the bound the leaf scores against the
    /// last-known model only as a last resort (counted in
    /// `NetStats::degraded_scores`) and, when *every* replica is stale
    /// or cold, falls back to purely local MDEF detection (counted in
    /// `NetStats::local_fallbacks`). `None` disables the bound: replicas
    /// are trusted forever, the pre-fault-layer behaviour.
    pub staleness_bound_ns: Option<u64>,
}

impl MgddConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), CoreError> {
        self.estimator.validate()?;
        if !(0.0..=1.0).contains(&self.sample_fraction) {
            return Err(CoreError::Config("sample fraction must lie in [0, 1]"));
        }
        if self.staleness_bound_ns == Some(0) {
            return Err(CoreError::Config("staleness bound must be positive"));
        }
        if let UpdateStrategy::OnModelChange {
            js_threshold,
            check_every,
        } = self.updates
        {
            if !(0.0..=1.0).contains(&js_threshold) {
                return Err(CoreError::Config("JS threshold must lie in [0, 1]"));
            }
            if check_every == 0 {
                return Err(CoreError::Config("check interval must be positive"));
            }
        }
        Ok(())
    }
}

impl Persist for RebuildPolicy {
    fn save(&self, w: &mut ByteWriter) {
        self.rebuild_every.save(w);
        self.sigma_tolerance.save(w);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let policy = Self {
            rebuild_every: u64::load(r)?,
            sigma_tolerance: f64::load(r)?,
        };
        policy
            .validate()
            .map_err(|_| PersistError::Corrupt("invalid rebuild policy"))?;
        Ok(policy)
    }
}

impl Persist for EstimatorConfig {
    fn save(&self, w: &mut ByteWriter) {
        self.window.save(w);
        self.sample_size.save(w);
        self.dimensions.save(w);
        self.variance_epsilon.save(w);
        self.seed.save(w);
        self.rebuild.save(w);
        self.compression.save(w);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let cfg = Self {
            window: usize::load(r)?,
            sample_size: usize::load(r)?,
            dimensions: usize::load(r)?,
            variance_epsilon: f64::load(r)?,
            seed: u64::load(r)?,
            rebuild: RebuildPolicy::load(r)?,
            compression: Option::<ModelCompression>::load(r)?,
        };
        cfg.validate()
            .map_err(|_| PersistError::Corrupt("invalid estimator config"))?;
        Ok(cfg)
    }
}

impl Persist for D3Config {
    fn save(&self, w: &mut ByteWriter) {
        self.estimator.save(w);
        self.rule.save(w);
        self.sample_fraction.save(w);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let cfg = Self {
            estimator: EstimatorConfig::load(r)?,
            rule: DistanceOutlierConfig::load(r)?,
            sample_fraction: f64::load(r)?,
        };
        cfg.validate()
            .map_err(|_| PersistError::Corrupt("invalid d3 config"))?;
        Ok(cfg)
    }
}

impl Persist for UpdateStrategy {
    fn save(&self, w: &mut ByteWriter) {
        match self {
            UpdateStrategy::EveryAcceptance => w.put_u8(0),
            UpdateStrategy::OnModelChange {
                js_threshold,
                check_every,
            } => {
                w.put_u8(1);
                js_threshold.save(w);
                check_every.save(w);
            }
        }
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        match r.get_u8()? {
            0 => Ok(UpdateStrategy::EveryAcceptance),
            1 => Ok(UpdateStrategy::OnModelChange {
                js_threshold: f64::load(r)?,
                check_every: u64::load(r)?,
            }),
            _ => Err(PersistError::Corrupt("unknown update-strategy tag")),
        }
    }
}

impl Persist for MgddConfig {
    fn save(&self, w: &mut ByteWriter) {
        self.estimator.save(w);
        self.rule.save(w);
        self.sample_fraction.save(w);
        self.updates.save(w);
        self.staleness_bound_ns.save(w);
    }

    fn load(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let cfg = Self {
            estimator: EstimatorConfig::load(r)?,
            rule: MdefConfig::load(r)?,
            sample_fraction: f64::load(r)?,
            updates: UpdateStrategy::load(r)?,
            staleness_bound_ns: Option::<u64>::load(r)?,
        };
        cfg.validate()
            .map_err(|_| PersistError::Corrupt("invalid mgdd config"))?;
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_applies_paper_defaults() {
        let c = EstimatorConfig::builder().build().unwrap();
        assert_eq!(c.window, 10_000);
        assert_eq!(c.sample_size, 500); // 0.05 · |W|
        assert_eq!(c.dimensions, 1);
        assert!((c.variance_epsilon - 0.2).abs() < 1e-12);
    }

    #[test]
    fn builder_validates() {
        assert!(EstimatorConfig::builder().window(0).build().is_err());
        assert!(EstimatorConfig::builder().dimensions(0).build().is_err());
        assert!(EstimatorConfig::builder()
            .variance_epsilon(0.0)
            .build()
            .is_err());
        assert!(EstimatorConfig::builder()
            .window(100)
            .sample_size(0)
            .build()
            .is_err());
    }

    #[test]
    fn compression_config_validation() {
        assert!(EstimatorConfig::builder()
            .compression(ModelCompression {
                budget: 50,
                tolerance: 0.05,
            })
            .build()
            .is_ok());
        // A zero tolerance is legal: compression then only kicks in via
        // the budget-driven escalation.
        assert!(EstimatorConfig::builder()
            .compression(ModelCompression {
                budget: 50,
                tolerance: 0.0,
            })
            .build()
            .is_ok());
        assert!(EstimatorConfig::builder()
            .compression(ModelCompression {
                budget: 0,
                tolerance: 0.05,
            })
            .build()
            .is_err());
        assert!(EstimatorConfig::builder()
            .compression(ModelCompression {
                budget: 50,
                tolerance: f64::NAN,
            })
            .build()
            .is_err());
        assert!(EstimatorConfig::builder()
            .compression(ModelCompression {
                budget: 50,
                tolerance: -0.1,
            })
            .build()
            .is_err());
    }

    #[test]
    fn rebuild_policy_defaults_and_validation() {
        let c = EstimatorConfig::builder().build().unwrap();
        assert_eq!(c.rebuild, RebuildPolicy::default());
        assert!(EstimatorConfig::builder()
            .rebuild_policy(RebuildPolicy {
                rebuild_every: 0,
                sigma_tolerance: 0.1,
            })
            .build()
            .is_err());
        assert!(EstimatorConfig::builder()
            .rebuild_policy(RebuildPolicy {
                rebuild_every: 8,
                sigma_tolerance: -0.5,
            })
            .build()
            .is_err());
    }

    #[test]
    fn rebuild_policy_decisions() {
        let p = RebuildPolicy {
            rebuild_every: 10,
            sigma_tolerance: 0.1,
        };
        // Push budget.
        assert!(!p.should_rebuild(9, &[1.0], &[1.0]));
        assert!(p.should_rebuild(10, &[1.0], &[1.0]));
        // σ drift, relative to the built value.
        assert!(!p.should_rebuild(1, &[1.0], &[1.05]));
        assert!(p.should_rebuild(1, &[1.0], &[1.2]));
        assert!(p.should_rebuild(1, &[1.0, 2.0], &[1.0, 1.5]));
        // Dimensionality change always rebuilds.
        assert!(p.should_rebuild(1, &[1.0], &[1.0, 1.0]));
        // `always()` reproduces the pre-epoch behaviour.
        assert!(RebuildPolicy::always().should_rebuild(1, &[1.0], &[1.0]));
    }

    #[test]
    fn d3_config_validates_fraction() {
        let est = EstimatorConfig::builder().build().unwrap();
        let bad = D3Config {
            estimator: est,
            rule: DistanceOutlierConfig::new(45.0, 0.01),
            sample_fraction: 1.5,
        };
        assert!(bad.validate().is_err());
        let good = D3Config {
            sample_fraction: 0.5,
            ..bad
        };
        assert!(good.validate().is_ok());
    }

    #[test]
    fn mgdd_config_validates_update_strategy() {
        let est = EstimatorConfig::builder().build().unwrap();
        let rule = MdefConfig::new(0.08, 0.01, 3.0).unwrap();
        let bad = MgddConfig {
            estimator: est,
            rule,
            sample_fraction: 0.5,
            updates: UpdateStrategy::OnModelChange {
                js_threshold: 2.0,
                check_every: 10,
            },
            staleness_bound_ns: None,
        };
        assert!(bad.validate().is_err());
        let good = MgddConfig {
            updates: UpdateStrategy::EveryAcceptance,
            ..bad
        };
        assert!(good.validate().is_ok());
    }

    #[test]
    fn mgdd_config_validates_staleness_bound() {
        let est = EstimatorConfig::builder().build().unwrap();
        let rule = MdefConfig::new(0.08, 0.01, 3.0).unwrap();
        let base = MgddConfig {
            estimator: est,
            rule,
            sample_fraction: 0.5,
            updates: UpdateStrategy::EveryAcceptance,
            staleness_bound_ns: Some(0),
        };
        assert!(base.validate().is_err());
        assert!(MgddConfig {
            staleness_bound_ns: Some(1),
            ..base
        }
        .validate()
        .is_ok());
        assert!(MgddConfig {
            staleness_bound_ns: None,
            ..base
        }
        .validate()
        .is_ok());
    }
}
