//! Golden-trace regression tests for the fault layer: D3 and MGDD at
//! three fault levels (armed-but-zero, deterministic degradation, total
//! blackout).
//!
//! The goldens are *differential*: the faultless run of the same seeded
//! workload is the reference trace, re-derived inside each test.
//! Hard-coded absolute counts would tie the goldens to the `rand`
//! crate's `StdRng` stream (the estimators sample from it), which is
//! not a stable contract across `rand` versions. Every assertion below
//! is still exact — bit-level equality or exact counter arithmetic —
//! because the injected faults are all certain events (probabilities in
//! {0, 1}) or fixed windows, so they consume no randomness that could
//! change an outcome.

use sensor_outliers::core::{
    run_d3_with_faults, run_mgdd_with_faults, D3Config, D3Node, D3Payload, EstimatorConfig,
    MgddConfig, MgddNode, MgddPayload, UpdateStrategy,
};
use sensor_outliers::outlier::{DistanceOutlierConfig, MdefConfig};
use sensor_outliers::simnet::{
    FaultPlan, Hierarchy, LinkFault, NetStats, Network, NodeId, RetryPolicy, SimConfig,
};

const READINGS: u64 = 900;
/// One reading per second (the default period) bounds the sim horizon.
const HORIZON_NS: u64 = READINGS * 1_000_000_000;

fn topo() -> Hierarchy {
    Hierarchy::balanced(4, &[2, 2]).unwrap()
}

/// Deterministic per-leaf streams with planted deviations.
fn source(node: NodeId, seq: u64) -> Option<Vec<f64>> {
    let h = node.0 as u64 * 1_000_003 + seq * 7_919;
    if seq % 173 == 42 {
        Some(vec![0.91])
    } else {
        Some(vec![0.3 + 0.2 * ((h % 1_000) as f64 / 1_000.0)])
    }
}

fn estimator() -> EstimatorConfig {
    EstimatorConfig::builder()
        .window(300)
        .sample_size(50)
        .seed(21)
        .build()
        .unwrap()
}

fn d3_config() -> D3Config {
    D3Config {
        estimator: estimator(),
        rule: DistanceOutlierConfig::new(8.0, 0.02),
        sample_fraction: 0.5,
    }
}

fn mgdd_config() -> MgddConfig {
    MgddConfig {
        estimator: estimator(),
        rule: MdefConfig::new(0.08, 0.01, 3.0).unwrap(),
        sample_fraction: 0.75,
        updates: UpdateStrategy::EveryAcceptance,
        staleness_bound_ns: Some(30_000_000_000),
    }
}

/// The default retry policy has zero jitter, so retransmission timing
/// consumes no randomness and the traces stay exactly reproducible.
fn reliability() -> RetryPolicy {
    RetryPolicy::default()
}

/// Fault level 1: every fault code path armed, every effect certain to
/// not fire. Must be observationally absent.
fn zero_plan() -> FaultPlan {
    FaultPlan::none()
        .with_seed(99)
        .burst(0, HORIZON_NS, 0.0)
        .link(LinkFault::delay_all(0, 0).duplicate(0.0))
}

/// Fault level 2: a mid-run leaf crash with restart, a sensing dropout
/// on another leaf, and a fixed extra link delay — all deterministic.
fn degraded_plan(topo: &Hierarchy) -> FaultPlan {
    let leaves = topo.leaves();
    FaultPlan::none()
        .crash(leaves[0], HORIZON_NS / 3, Some(2 * HORIZON_NS / 3))
        .dropout(leaves[1], HORIZON_NS / 4, HORIZON_NS / 2)
        .link(LinkFault::delay_all(5_000_000, 0))
}

/// Fault level 3: total blackout — every frame on the air is lost.
fn blackout_plan() -> FaultPlan {
    FaultPlan::none().burst(0, u64::MAX, 1.0)
}

fn run_d3(plan: FaultPlan, sim: SimConfig) -> Network<D3Payload, D3Node> {
    let mut src = source;
    run_d3_with_faults(topo(), &d3_config(), sim, plan, &mut src, READINGS).unwrap()
}

fn run_mgdd(plan: FaultPlan, sim: SimConfig) -> Network<MgddPayload, MgddNode> {
    let mut src = source;
    let t = topo();
    let top = t.level_count() as u8;
    run_mgdd_with_faults(t, &mgdd_config(), sim, plan, &mut src, READINGS, &[top]).unwrap()
}

/// Per node: `(node id, [(time, value bits, level)])`.
type DetectionTrace = Vec<(u32, Vec<(u64, Vec<u64>, u8)>)>;

fn d3_detections(net: &Network<D3Payload, D3Node>) -> DetectionTrace {
    net.apps()
        .map(|(node, app)| {
            (
                node.0,
                app.detections
                    .iter()
                    .map(|d| {
                        (
                            d.time_ns,
                            d.value.iter().map(|v| v.to_bits()).collect(),
                            d.level,
                        )
                    })
                    .collect(),
            )
        })
        .collect()
}

fn mgdd_detections(net: &Network<MgddPayload, MgddNode>) -> DetectionTrace {
    net.apps()
        .map(|(node, app)| {
            (
                node.0,
                app.detections
                    .iter()
                    .map(|d| {
                        (
                            d.time_ns,
                            d.value.iter().map(|v| v.to_bits()).collect(),
                            d.level,
                        )
                    })
                    .collect(),
            )
        })
        .collect()
}

fn assert_stats_identical(a: &NetStats, b: &NetStats) {
    assert_eq!(a, b, "network statistics diverged");
    assert_eq!(a.tx_joules.to_bits(), b.tx_joules.to_bits());
    assert_eq!(a.rx_joules.to_bits(), b.rx_joules.to_bits());
}

// ---------------------------------------------------------------- D3 --

#[test]
fn d3_zero_probability_plan_reproduces_the_faultless_trace() {
    let sim = SimConfig::default().with_reliability(reliability());
    let baseline = run_d3(FaultPlan::none(), sim);
    let armed = run_d3(zero_plan(), sim);
    assert_stats_identical(baseline.stats(), armed.stats());
    assert_eq!(d3_detections(&baseline), d3_detections(&armed));
}

#[test]
fn d3_deterministic_degradation_trace() {
    let sim = SimConfig::default();
    let baseline = run_d3(FaultPlan::none(), sim);
    let plan = degraded_plan(&topo());
    let faulty = run_d3(plan, sim);

    // The run is seeded end to end: replaying it is bit-identical.
    let again = run_d3(degraded_plan(&topo()), sim);
    assert_stats_identical(faulty.stats(), again.stats());
    assert_eq!(d3_detections(&faulty), d3_detections(&again));

    // Broadcast-free D3 leaves never receive anything, so leaves the
    // plan does not touch behave bit-identically to the baseline.
    let touched = [topo().leaves()[0], topo().leaves()[1]];
    for &leaf in topo().leaves() {
        if touched.contains(&leaf) {
            continue;
        }
        assert_eq!(
            baseline.app(leaf).detections,
            faulty.app(leaf).detections,
            "untouched leaf {leaf:?} diverged"
        );
    }

    // The crashed leaf sent nothing for a third of the run and the
    // dropped-out leaf skipped a quarter of its readings, so the faulty
    // run airs strictly fewer frames.
    assert!(
        faulty.stats().messages < baseline.stats().messages,
        "faulty {} vs baseline {}",
        faulty.stats().messages,
        baseline.stats().messages
    );
}

#[test]
fn d3_blackout_trace_is_exact() {
    let sim = SimConfig::default().with_reliability(reliability());
    let baseline = run_d3(FaultPlan::none(), sim);
    let dark = run_d3(blackout_plan(), sim);

    // Every frame aired was lost, nothing was ever acknowledged.
    assert_eq!(dark.stats().dropped, dark.stats().messages);
    assert_eq!(dark.stats().acks, 0);
    assert!(dark.stats().retransmissions > 0, "reliable layer never retried");
    assert!(dark.stats().retry_exhausted > 0, "retries never gave up");

    // Nothing crossed the network: every detection is leaf-local, and
    // the leaves behave exactly as in the faultless run.
    for (node, dets) in d3_detections(&dark) {
        assert!(
            dets.iter().all(|&(_, _, level)| level == 1),
            "node {node} detected through a dead network"
        );
    }
    for &leaf in topo().leaves() {
        assert_eq!(
            baseline.app(leaf).detections,
            dark.app(leaf).detections,
            "blackout perturbed leaf {leaf:?}'s local verdicts"
        );
    }

    // Replay is bit-identical.
    let again = run_d3(blackout_plan(), sim);
    assert_stats_identical(dark.stats(), again.stats());
    assert_eq!(d3_detections(&dark), d3_detections(&again));
}

// -------------------------------------------------------------- MGDD --

#[test]
fn mgdd_zero_probability_plan_reproduces_the_faultless_trace() {
    let sim = SimConfig::default().with_reliability(reliability());
    let baseline = run_mgdd(FaultPlan::none(), sim);
    let armed = run_mgdd(zero_plan(), sim);
    assert_stats_identical(baseline.stats(), armed.stats());
    assert_eq!(mgdd_detections(&baseline), mgdd_detections(&armed));
}

#[test]
fn mgdd_deterministic_degradation_trace() {
    // Crash the sole broadcaster (the root) for the middle third of the
    // run: replicas go stale past the bound, leaves degrade, and the
    // whole episode replays bit-identically.
    let sim = SimConfig::default();
    let t = topo();
    let plan = FaultPlan::none().crash(t.root(), HORIZON_NS / 3, Some(2 * HORIZON_NS / 3));
    let faulty = run_mgdd(plan.clone(), sim);
    assert!(
        faulty.stats().degraded_scores > 0 || faulty.stats().local_fallbacks > 0,
        "a dead broadcaster caused no degradation at all"
    );
    assert!(faulty.stats().lost_to_crash > 0, "no frame died at the root");

    let again = run_mgdd(plan, sim);
    assert_stats_identical(faulty.stats(), again.stats());
    assert_eq!(mgdd_detections(&faulty), mgdd_detections(&again));
}

#[test]
fn mgdd_blackout_falls_back_to_local_models() {
    let sim = SimConfig::default().with_reliability(reliability());
    let dark = run_mgdd(blackout_plan(), sim);

    assert_eq!(dark.stats().dropped, dark.stats().messages);
    assert_eq!(dark.stats().acks, 0);
    assert!(
        dark.stats().local_fallbacks > 0,
        "orphaned leaves never fell back to local detection"
    );
    for (node, dets) in mgdd_detections(&dark) {
        assert!(
            dets.iter().all(|&(_, _, level)| level == 1),
            "node {node} scored against a model it could never have received"
        );
    }

    let again = run_mgdd(blackout_plan(), sim);
    assert_stats_identical(dark.stats(), again.stats());
    assert_eq!(mgdd_detections(&dark), mgdd_detections(&again));
}
