//! Leader election and rotation (paper Section 2).
//!
//! *"The hierarchical decomposition of the sensor network, as well as the
//! selection of the leaders for each level of the hierarchy, can be
//! achieved using any of the techniques proposed in the literature
//! [17, 33, 47]. These techniques ensure the leadership role is rotated
//! among the nodes of the network, and describe protocols that achieve
//! this in an energy efficient manner."*
//!
//! The paper treats leaders as logical roles; this module provides the
//! piece it defers to: a deterministic, energy-aware **assignment of
//! leader roles to physical leaf sensors**, with rotation across epochs.
//! Each logical leader slot of a [`Hierarchy`] is mapped to one of the
//! leaf sensors in its subtree; re-electing every epoch spreads the extra
//! transmit/receive load (the dominant energy cost) across the cell, in
//! the spirit of LEACH-style cluster-head rotation.

use crate::{Hierarchy, NodeId};

/// How a cell picks its leader each epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElectionPolicy {
    /// The cell member with the most remaining energy wins (ties broken
    /// by id — deterministic).
    MaxEnergy,
    /// Strict round-robin over the cell members by epoch number.
    RoundRobin,
}

/// The leader assignment for one epoch: a mapping from each logical
/// leader slot to the physical leaf sensor playing that role.
#[derive(Debug, Clone, PartialEq)]
pub struct LeaderAssignment {
    /// `assignment[slot.index()]` = physical leaf for leader `slot`
    /// (identity for leaf slots).
    assignment: Vec<NodeId>,
}

impl LeaderAssignment {
    /// The physical sensor playing `slot`'s role.
    pub fn physical(&self, slot: NodeId) -> NodeId {
        self.assignment[slot.index()]
    }

    /// Iterates `(logical slot, physical sensor)` for all leader slots
    /// that differ from their own id (i.e. actual delegations).
    pub fn delegations(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(i, n)| *i != n.index())
            .map(|(i, n)| (NodeId(i as u32), *n))
    }
}

/// Tracks per-sensor remaining energy and elects leaders per epoch.
#[derive(Debug, Clone)]
pub struct Electorate {
    topo: Hierarchy,
    policy: ElectionPolicy,
    /// Remaining energy per leaf sensor (J), indexed by node id.
    energy: Vec<f64>,
    epoch: u64,
}

impl Electorate {
    /// All leaf sensors start with `initial_joules` of battery.
    pub fn new(topo: Hierarchy, policy: ElectionPolicy, initial_joules: f64) -> Self {
        let energy = vec![initial_joules; topo.node_count()];
        Self {
            topo,
            policy,
            energy,
            epoch: 0,
        }
    }

    /// Current epoch number.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Remaining energy of `leaf`.
    pub fn remaining(&self, leaf: NodeId) -> f64 {
        self.energy[leaf.index()]
    }

    /// Charges `joules` of leader work to the sensor elected for `slot`
    /// under `assignment`.
    pub fn charge(&mut self, assignment: &LeaderAssignment, slot: NodeId, joules: f64) {
        let phys = assignment.physical(slot);
        self.energy[phys.index()] -= joules;
    }

    /// Elects leaders for the next epoch and advances the epoch counter.
    pub fn elect(&mut self) -> LeaderAssignment {
        let mut assignment: Vec<NodeId> = (0..self.topo.node_count())
            .map(|i| NodeId(i as u32))
            .collect();
        for level in 2..=self.topo.level_count() {
            for &slot in self.topo.level(level) {
                let members = self.topo.descendant_leaves(slot);
                debug_assert!(!members.is_empty());
                let winner = match self.policy {
                    ElectionPolicy::MaxEnergy => members
                        .iter()
                        .copied()
                        .max_by(|a, b| {
                            self.energy[a.index()]
                                .partial_cmp(&self.energy[b.index()])
                                .expect("finite energy")
                                .then(b.cmp(a)) // deterministic tie-break: lower id wins
                        })
                        .expect("non-empty cell"),
                    ElectionPolicy::RoundRobin => members[(self.epoch as usize) % members.len()],
                };
                assignment[slot.index()] = winner;
            }
        }
        self.epoch += 1;
        LeaderAssignment { assignment }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Hierarchy {
        Hierarchy::balanced(8, &[4, 2]).unwrap()
    }

    #[test]
    fn leaders_are_elected_from_their_own_subtree() {
        let mut e = Electorate::new(topo(), ElectionPolicy::MaxEnergy, 100.0);
        let a = e.elect();
        let topo = topo();
        for level in 2..=topo.level_count() {
            for &slot in topo.level(level) {
                let phys = a.physical(slot);
                assert!(
                    topo.descendant_leaves(slot).contains(&phys),
                    "slot {slot} elected outsider {phys}"
                );
            }
        }
    }

    #[test]
    fn round_robin_rotates_through_the_cell() {
        let t = topo();
        let mut e = Electorate::new(t.clone(), ElectionPolicy::RoundRobin, 100.0);
        let slot = t.level(2)[0];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..4 {
            seen.insert(e.elect().physical(slot));
        }
        assert_eq!(seen.len(), 4, "rotation revisited a member early");
    }

    #[test]
    fn max_energy_policy_avoids_drained_sensors() {
        let t = topo();
        let mut e = Electorate::new(t.clone(), ElectionPolicy::MaxEnergy, 100.0);
        let slot = t.level(2)[0];
        let first = e.elect();
        let first_leader = first.physical(slot);
        // Drain the current leader heavily; the next election must pick
        // someone else.
        e.charge(&first, slot, 50.0);
        let second = e.elect();
        assert_ne!(second.physical(slot), first_leader);
    }

    #[test]
    fn rotation_balances_energy_drain() {
        let t = topo();
        let mut e = Electorate::new(t.clone(), ElectionPolicy::MaxEnergy, 100.0);
        let slot = t.level(2)[0];
        for _ in 0..40 {
            let a = e.elect();
            e.charge(&a, slot, 1.0);
        }
        // Energy across the 4 cell members stays within one charge unit.
        let cell = t.descendant_leaves(slot);
        let energies: Vec<f64> = cell.iter().map(|&n| e.remaining(n)).collect();
        let min = energies.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = energies.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min <= 1.0 + 1e-9, "unbalanced drain: {energies:?}");
    }

    #[test]
    fn leaf_slots_are_identity() {
        let t = topo();
        let mut e = Electorate::new(t.clone(), ElectionPolicy::RoundRobin, 10.0);
        let a = e.elect();
        for &leaf in t.leaves() {
            assert_eq!(a.physical(leaf), leaf);
        }
        // Delegations cover exactly the leader slots.
        assert_eq!(a.delegations().count(), t.node_count() - t.leaves().len());
    }
}
