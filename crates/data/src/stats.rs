//! Per-dimension dataset statistics and the Figure 5 table.

use snod_sketch::DatasetStats;

/// Exact per-dimension statistics of a multi-dimensional dataset.
/// Returns one [`DatasetStats`] per coordinate; `None` on empty input.
pub fn per_dimension_stats(points: &[Vec<f64>]) -> Option<Vec<DatasetStats>> {
    let first = points.first()?;
    let dims = first.len();
    let mut out = Vec::with_capacity(dims);
    for j in 0..dims {
        let column: Vec<f64> = points.iter().map(|p| p[j]).collect();
        out.push(DatasetStats::from_slice(&column)?);
    }
    Some(out)
}

/// Renders labelled statistics rows in the layout of the paper's
/// Figure 5 (Min, Max, Mean, Median, StdDev, Skew).
pub fn dataset_stats_table(rows: &[(&str, DatasetStats)]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>7} {:>7} {:>7} {:>7} {:>7} {:>8}\n",
        "Dataset", "Min", "Max", "Mean", "Median", "StdDev", "Skew"
    ));
    for (name, s) in rows {
        out.push_str(&format!(
            "{:<12} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>8.3}\n",
            name, s.min, s.max, s.mean, s.median, s.std_dev, s.skew
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_dimension_splits_columns() {
        let pts = vec![vec![0.0, 10.0], vec![1.0, 20.0], vec![2.0, 30.0]];
        let stats = per_dimension_stats(&pts).unwrap();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].mean, 1.0);
        assert_eq!(stats[1].mean, 20.0);
        assert_eq!(stats[1].median, 20.0);
    }

    #[test]
    fn empty_input_is_none() {
        assert!(per_dimension_stats(&[]).is_none());
    }

    #[test]
    fn table_contains_all_rows() {
        let s = DatasetStats::from_slice(&[0.1, 0.2, 0.3]).unwrap();
        let t = dataset_stats_table(&[("Engine", s), ("Pressure", s)]);
        assert!(t.contains("Engine"));
        assert!(t.contains("Pressure"));
        assert!(t.lines().count() == 3);
    }
}
