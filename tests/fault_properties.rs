//! Property-based invariants of the fault-injection layer (proptest).
//!
//! Three hard invariants that must hold for *any* fault plan, not just
//! the curated ones in the golden traces:
//!
//! 1. **Theorem 3 containment** — whatever a plan crashes, delays,
//!    duplicates or drops, every value D3 flags above the leaf tier was
//!    first flagged by a leaf. Faults lose escalations; they never
//!    invent them.
//! 2. **Crash isolation and causality** — no message is ever delivered
//!    to a node while it is down, and never before its send time plus
//!    one link latency (duplication and jitter only ever *add* delay).
//! 3. **Observational absence** — a structurally armed plan whose every
//!    probability is zero and whose every window is empty leaves the
//!    engine bit-identical to [`FaultPlan::none()`], for any seed.

use proptest::prelude::*;

use sensor_outliers::core::{run_d3_with_faults, D3Config, EstimatorConfig};
use sensor_outliers::outlier::DistanceOutlierConfig;
use sensor_outliers::simnet::{
    Ctx, DetectorEngine, FaultPlan, Hierarchy, LinkFault, Network, NodeId, RetryPolicy, SimConfig,
    Wire,
};

const READINGS: u64 = 400;
const HORIZON_NS: u64 = READINGS * 1_000_000_000;
const NODES: u32 = 7; // 4 leaves under [2, 2]

fn topo() -> Hierarchy {
    Hierarchy::balanced(4, &[2, 2]).unwrap()
}

fn source(node: NodeId, seq: u64) -> Option<Vec<f64>> {
    let h = node.0 as u64 * 999_983 + seq * 6_151;
    if seq % 131 == 40 {
        Some(vec![0.9])
    } else {
        Some(vec![0.3 + 0.2 * ((h % 997) as f64 / 997.0)])
    }
}

fn d3_config() -> D3Config {
    D3Config {
        estimator: EstimatorConfig::builder()
            .window(200)
            .sample_size(40)
            .seed(5)
            .build()
            .unwrap(),
        rule: DistanceOutlierConfig::new(8.0, 0.02),
        sample_fraction: 0.5,
    }
}

/// An arbitrary fault plan: one loss burst, one crash (possibly
/// permanent), one wildcard link fault with delay, jitter and
/// duplication — each parameter drawn independently.
fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        0u64..1_000,                      // fault-stream seed
        (0u64..HORIZON_NS, 1u64..HORIZON_NS), // burst start / length
        0.0f64..1.0,                      // burst drop probability
        0u32..NODES,                      // crashing node
        (0u64..HORIZON_NS, 1u64..HORIZON_NS), // crash start / length
        0u32..2,                          // 1 = never restarts
        0u64..20_000_000,                 // extra link delay
        0u64..5_000_000,                  // link jitter
        0.0f64..0.3,                      // duplication probability
    )
        .prop_map(
            |(seed, (b_from, b_len), p, node, (c_from, c_len), perm, delay, jitter, dup)| {
                FaultPlan::none()
                    .with_seed(seed)
                    .burst(b_from, b_from.saturating_add(b_len), p)
                    .crash(
                        NodeId(node),
                        c_from,
                        (perm == 0).then_some(c_from.saturating_add(c_len)),
                    )
                    .link(LinkFault::delay_all(delay, jitter).duplicate(dup))
            },
        )
}

/// A probe app: every node relays a send-time stamp upward and records
/// any delivery that violates crash isolation or causality.
struct Probe {
    node: NodeId,
    plan: FaultPlan,
    latency_ns: u64,
    violations: Vec<String>,
}

#[derive(Debug, Clone)]
struct Stamp {
    sent_ns: u64,
}

impl Wire for Stamp {
    fn size_bytes(&self) -> usize {
        8
    }
}

impl DetectorEngine<Stamp> for Probe {
    fn ingest(&mut self, ctx: &mut Ctx<'_, Stamp>, _value: &[f64]) {
        ctx.send_parent(Stamp {
            sent_ns: ctx.time_ns,
        });
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Stamp>, from: NodeId, stamp: Stamp) {
        if ctx.time_ns < stamp.sent_ns + self.latency_ns {
            self.violations.push(format!(
                "{:?} -> {:?}: sent at {} ns, delivered at {} ns (latency {} ns)",
                from, self.node, stamp.sent_ns, ctx.time_ns, self.latency_ns
            ));
        }
        if self.plan.is_down(self.node, ctx.time_ns) {
            self.violations.push(format!(
                "{:?} received a frame at {} ns while crashed",
                self.node, ctx.time_ns
            ));
        }
        ctx.send_parent(Stamp {
            sent_ns: ctx.time_ns,
        });
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Theorem 3 containment survives any fault plan, with and without
    /// the ack/retry protocol.
    #[test]
    fn theorem3_containment_for_any_plan(plan in arb_plan(), reliable in 0u32..2) {
        let mut sim = SimConfig::default();
        if reliable == 1 {
            sim = sim.with_reliability(RetryPolicy::default());
        }
        let mut src = source;
        let net = run_d3_with_faults(topo(), &d3_config(), sim, plan, &mut src, READINGS)
            .expect("valid config");
        let leaf_keys: std::collections::HashSet<Vec<u64>> = net
            .apps()
            .flat_map(|(_, app)| app.detections.iter())
            .filter(|d| d.level == 1)
            .map(|d| d.value.iter().map(|v| v.to_bits()).collect())
            .collect();
        for (_, app) in net.apps() {
            for d in app.detections.iter().filter(|d| d.level > 1) {
                let key: Vec<u64> = d.value.iter().map(|v| v.to_bits()).collect();
                prop_assert!(
                    leaf_keys.contains(&key),
                    "level-{} detection of {:?} was never flagged by a leaf",
                    d.level,
                    d.value
                );
            }
        }
    }

    /// No delivery to a crashed node; no delivery earlier than the send
    /// time plus one link latency.
    #[test]
    fn deliveries_respect_crashes_and_causality(plan in arb_plan()) {
        let sim = SimConfig::default();
        let latency = sim.link_latency_ns;
        let probe_plan = plan.clone();
        let mut net = Network::new(topo(), sim, move |node, _| Probe {
            node,
            plan: probe_plan.clone(),
            latency_ns: latency,
            violations: Vec::new(),
        })
        .with_fault_plan(plan);
        let mut src = source;
        net.run(&mut src, READINGS);
        for (node, app) in net.apps() {
            prop_assert!(
                app.violations.is_empty(),
                "{:?}: {:?}",
                node,
                app.violations
            );
        }
    }

    /// An armed all-zero plan is observationally absent for any seed.
    #[test]
    fn zero_probability_plans_never_perturb(seed in 0u64..10_000) {
        let zero = FaultPlan::none()
            .with_seed(seed)
            .burst(0, HORIZON_NS, 0.0)
            .link(LinkFault::delay_all(0, 0).duplicate(0.0));
        let sim = SimConfig::default().with_reliability(RetryPolicy::default());
        let mut src_a = source;
        let plain = run_d3_with_faults(
            topo(), &d3_config(), sim, FaultPlan::none(), &mut src_a, READINGS,
        )
        .expect("valid config");
        let mut src_b = source;
        let armed = run_d3_with_faults(topo(), &d3_config(), sim, zero, &mut src_b, READINGS)
            .expect("valid config");
        prop_assert_eq!(plain.stats(), armed.stats());
        for (node, app) in plain.apps() {
            prop_assert_eq!(&app.detections, &armed.app(node).detections);
        }
    }
}
