//! The parallel simulation engine must be *bit-identical* to the
//! single-threaded one: same detections (time, value, level), same
//! message/byte/drop counts, same float-accumulated energy totals —
//! for both paper algorithms, on a fixed seed. See the `simnet` crate
//! docs for why this holds by construction.

use sensor_outliers::core::pipeline::{Algorithm, OutlierPipeline, PipelineReport};
use sensor_outliers::core::{D3Config, EstimatorConfig, MgddConfig, UpdateStrategy};
use sensor_outliers::outlier::{DistanceOutlierConfig, MdefConfig};
use sensor_outliers::simnet::{FaultPlan, LinkFault, NodeId, RetryPolicy, SimConfig};

/// A deterministic stream with occasional planted outliers.
fn source(node: NodeId, seq: u64) -> Option<Vec<f64>> {
    let h = node.0 as u64 * 1_000_003 + seq * 7_919;
    let base = 0.3 + 0.2 * ((h % 1_000) as f64 / 1_000.0);
    if seq % 211 == 17 {
        Some(vec![base + 0.45]) // planted deviation
    } else {
        Some(vec![base])
    }
}

fn estimator() -> EstimatorConfig {
    EstimatorConfig::builder()
        .window(400)
        .sample_size(60)
        .seed(13)
        .build()
        .unwrap()
}

/// Runs `alg` with the given worker count; synchronous reading phases
/// and a lossy radio maximise batch sizes and make the loss-RNG draw
/// order observable.
fn run(alg: &Algorithm, workers: usize) -> PipelineReport {
    let sim = SimConfig {
        stagger_readings: false,
        ..SimConfig::default()
    }
    .with_drop_probability(0.05)
    .with_worker_threads(workers);
    let p = OutlierPipeline::balanced(8, &[4, 2], sim, alg.clone()).unwrap();
    let mut src = source;
    p.run(&mut src, 1_200).unwrap()
}

/// Like [`run`], but under an active fault plan (crash + extra delay +
/// duplication) with the ack/retry protocol enabled — the post-pass RNG
/// draws (loss, duplication, retry timers) must replay in the same
/// order whatever the worker count.
fn run_with_faults(alg: &Algorithm, workers: usize) -> PipelineReport {
    let horizon_ns = 1_200 * 1_000_000_000;
    let sim = SimConfig {
        stagger_readings: false,
        ..SimConfig::default()
    }
    .with_drop_probability(0.05)
    .with_reliability(RetryPolicy::default())
    .with_worker_threads(workers);
    let p = OutlierPipeline::balanced(8, &[4, 2], sim, alg.clone()).unwrap();
    let victim = p.topology().leaves()[1];
    let plan = FaultPlan::none()
        .with_seed(77)
        .burst(horizon_ns / 5, horizon_ns / 2, 0.4)
        .crash(victim, horizon_ns / 3, Some(2 * horizon_ns / 3))
        .link(LinkFault::delay_all(3_000_000, 1_000_000).duplicate(0.1));
    let p = p.with_fault_plan(plan);
    let mut src = source;
    p.run(&mut src, 1_200).unwrap()
}

fn assert_identical(a: &PipelineReport, b: &PipelineReport) {
    // Detections: exact content, grouping and order.
    assert_eq!(
        a.detections_by_level.keys().collect::<Vec<_>>(),
        b.detections_by_level.keys().collect::<Vec<_>>()
    );
    for (level, da) in &a.detections_by_level {
        assert_eq!(da, &b.detections_by_level[level], "level {level} diverged");
    }
    // Network statistics — the whole struct, covering the fault-layer
    // counters (drops, duplicates, retransmissions, acks, degradation)
    // along with the classic traffic totals.
    assert_eq!(a.stats, b.stats);
    // Float energy sums must agree bit for bit, not just by `==`.
    assert!(a.stats.tx_joules.to_bits() == b.stats.tx_joules.to_bits());
    assert!(a.stats.rx_joules.to_bits() == b.stats.rx_joules.to_bits());
}

#[test]
fn mgdd_detections_are_identical_across_worker_counts() {
    let alg = Algorithm::Mgdd(
        MgddConfig {
            estimator: estimator(),
            rule: MdefConfig::new(0.08, 0.01, 3.0).unwrap(),
            sample_fraction: 0.5,
            updates: UpdateStrategy::EveryAcceptance,
            staleness_bound_ns: None,
        },
        vec![],
    );
    let sequential = run(&alg, 1);
    assert!(
        sequential.total_detections() > 0,
        "workload produced no detections — the equivalence check would be vacuous"
    );
    let parallel = run(&alg, 4);
    assert_identical(&sequential, &parallel);
}

#[test]
fn d3_detections_are_identical_across_worker_counts() {
    let alg = Algorithm::D3(D3Config {
        estimator: estimator(),
        rule: DistanceOutlierConfig::new(6.0, 0.05),
        sample_fraction: 0.5,
    });
    let sequential = run(&alg, 1);
    assert!(
        sequential.total_detections() > 0,
        "workload produced no detections — the equivalence check would be vacuous"
    );
    let parallel = run(&alg, 4);
    assert_identical(&sequential, &parallel);
}

#[test]
fn d3_is_identical_across_worker_counts_with_faults_and_retries() {
    let alg = Algorithm::D3(D3Config {
        estimator: estimator(),
        rule: DistanceOutlierConfig::new(6.0, 0.05),
        sample_fraction: 0.5,
    });
    let sequential = run_with_faults(&alg, 1);
    assert!(
        sequential.total_detections() > 0,
        "faulty workload produced no detections — the check would be vacuous"
    );
    assert!(
        sequential.stats.dropped > 0 && sequential.stats.retransmissions > 0,
        "the plan injected nothing — the check would be vacuous"
    );
    let parallel = run_with_faults(&alg, 4);
    assert_identical(&sequential, &parallel);
}

#[test]
fn mgdd_is_identical_across_worker_counts_with_faults_and_retries() {
    let alg = Algorithm::Mgdd(
        MgddConfig {
            estimator: estimator(),
            rule: MdefConfig::new(0.08, 0.01, 3.0).unwrap(),
            sample_fraction: 0.5,
            updates: UpdateStrategy::EveryAcceptance,
            staleness_bound_ns: Some(20_000_000_000),
        },
        vec![],
    );
    let sequential = run_with_faults(&alg, 1);
    assert!(
        sequential.stats.dropped > 0,
        "the plan injected nothing — the check would be vacuous"
    );
    let parallel = run_with_faults(&alg, 4);
    assert_identical(&sequential, &parallel);
}
