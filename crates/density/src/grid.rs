//! Grid discretisation of a density model (paper Section 6).
//!
//! The JS-divergence between two estimator models is computed by
//! *"approximating the estimated distribution with the values of the
//! function with a finite set of grid points b₁ … b_k"* (Equation 8).
//! [`GridDiscretization`] turns any [`DensityModel`] into a probability
//! vector over `k^d` equal cells of `[0, 1]^d` by integrating the model
//! over each cell (`box_prob`), which is more faithful than point
//! evaluation and exactly the `P(bᵢ, bs/2)` of the paper.

use crate::model::DensityModel;
use crate::DensityError;

/// A `k`-per-dimension grid over `[0, 1]^d`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridDiscretization {
    dims: usize,
    k: usize,
}

impl GridDiscretization {
    /// Creates a grid with `k` cells per dimension over `[0,1]^dims`.
    pub fn new(dims: usize, k: usize) -> Result<Self, DensityError> {
        if dims == 0 {
            return Err(DensityError::NonPositiveParameter("dimensionality"));
        }
        if k == 0 {
            return Err(DensityError::NonPositiveParameter("grid resolution"));
        }
        Ok(Self { dims, k })
    }

    /// Total number of cells `k^d`.
    pub fn cells(&self) -> usize {
        self.k.pow(self.dims as u32)
    }

    /// Grid interval `bs = 1/k`.
    pub fn cell_width(&self) -> f64 {
        1.0 / self.k as f64
    }

    /// Lower corner of cell `idx` (row-major).
    fn cell_lo(&self, mut idx: usize) -> Vec<f64> {
        let mut lo = vec![0.0; self.dims];
        for j in (0..self.dims).rev() {
            lo[j] = (idx % self.k) as f64 * self.cell_width();
            idx /= self.k;
        }
        lo
    }

    /// Centre of cell `idx` — a grid point `bᵢ` in the paper's notation.
    pub fn cell_center(&self, idx: usize) -> Vec<f64> {
        self.cell_lo(idx)
            .into_iter()
            .map(|c| c + self.cell_width() / 2.0)
            .collect()
    }

    /// The probability vector `P(bᵢ, bs/2)` of the model over all cells.
    /// Sums to (approximately) the model's mass inside `[0, 1]^d`.
    pub fn cell_probs<M: DensityModel + ?Sized>(
        &self,
        model: &M,
    ) -> Result<Vec<f64>, DensityError> {
        if model.dims() != self.dims {
            return Err(DensityError::DimensionMismatch {
                expected: self.dims,
                got: model.dims(),
            });
        }
        let mut probs = Vec::with_capacity(self.cells());
        let w = self.cell_width();
        for idx in 0..self.cells() {
            let lo = self.cell_lo(idx);
            let hi: Vec<f64> = lo.iter().map(|&c| c + w).collect();
            probs.push(model.box_prob(&lo, &hi)?);
        }
        Ok(probs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kde::Kde;

    #[test]
    fn rejects_degenerate_grids() {
        assert!(GridDiscretization::new(0, 10).is_err());
        assert!(GridDiscretization::new(1, 0).is_err());
    }

    #[test]
    fn cell_count_and_width() {
        let g = GridDiscretization::new(2, 8).unwrap();
        assert_eq!(g.cells(), 64);
        assert_eq!(g.cell_width(), 0.125);
    }

    #[test]
    fn cell_centers_cover_unit_interval() {
        let g = GridDiscretization::new(1, 4).unwrap();
        let centers: Vec<f64> = (0..4).map(|i| g.cell_center(i)[0]).collect();
        assert_eq!(centers, vec![0.125, 0.375, 0.625, 0.875]);
    }

    #[test]
    fn two_dim_cell_centers_row_major() {
        let g = GridDiscretization::new(2, 2).unwrap();
        assert_eq!(g.cell_center(0), vec![0.25, 0.25]);
        assert_eq!(g.cell_center(1), vec![0.25, 0.75]);
        assert_eq!(g.cell_center(2), vec![0.75, 0.25]);
        assert_eq!(g.cell_center(3), vec![0.75, 0.75]);
    }

    #[test]
    fn cell_probs_sum_to_interior_mass() {
        let pts: Vec<Vec<f64>> = (0..100).map(|i| vec![0.2 + 0.006 * i as f64]).collect();
        let kde = Kde::from_sample(&pts, &[0.15], 100.0).unwrap();
        let g = GridDiscretization::new(1, 32).unwrap();
        let probs = g.cell_probs(&kde).unwrap();
        let sum: f64 = probs.iter().sum();
        // kernels may spill slightly outside [0,1]; mass stays close to 1
        assert!(sum > 0.9 && sum <= 1.0 + 1e-9, "sum {sum}");
        assert!(probs.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn dimension_mismatch_detected() {
        let kde = Kde::from_sample(&[vec![0.5]], &[0.1], 10.0).unwrap();
        let g = GridDiscretization::new(2, 4).unwrap();
        assert!(g.cell_probs(&kde).is_err());
    }
}
