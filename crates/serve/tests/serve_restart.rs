//! Crash-safety proofs: a daemon killed mid-ingest (`hard_abort`, the
//! in-process `kill -9` — no drain, no final checkpoint) restarts and
//! resumes every tenant from its last on-disk checkpoint; the
//! at-least-once client replays from the durable mark; sequence dedup
//! absorbs the overlap so the final escalations equal the in-process
//! reference with no duplicates. Plus: a single tenant worker crash is
//! supervised back to life without disturbing the stream.

mod common;

use std::time::{Duration, Instant};

use snod_serve::{serve, ClientConfig, ServeClient, ServeConfig, ServerHandle};

/// Binds the daemon to `addr`, retrying while the OS releases the port
/// the killed daemon held.
fn serve_on(addr: &str, cfg: &ServeConfig) -> ServerHandle {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match serve(ServeConfig {
            addr: addr.to_string(),
            ..cfg.clone()
        }) {
            Ok(s) => return s,
            Err(e) => {
                if Instant::now() >= deadline {
                    panic!("could not rebind {addr}: {e}");
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

#[test]
fn kill_dash_nine_mid_ingest_resumes_all_tenants_from_checkpoints() {
    let spec = common::spec(2, &[2]);
    let per_leaf = 96u64;
    let tenant_seeds = [101u64, 202, 303];
    let dir = common::temp_dir("restart");

    let cfg = ServeConfig {
        tenant: spec.clone(),
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 16,
        checkpoint_interval: Duration::from_millis(200),
        ..ServeConfig::default()
    };
    let server = serve(cfg.clone()).expect("daemon starts");
    let addr = server.addr().to_string();

    let mut client = ServeClient::new(ClientConfig {
        resend_interval: Duration::from_millis(100),
        ..ClientConfig::new(addr.clone())
    });
    let mut handles = Vec::new();
    let mut all_rows = Vec::new();
    let mut references = Vec::new();
    for &seed in &tenant_seeds {
        let rows = common::synth_rows(&spec, per_leaf, seed);
        references.push(common::reference_detections(&spec, &rows, per_leaf));
        handles.push(client.open(format!("t{seed}")));
        all_rows.push(rows);
    }

    // Phase 1: ~60% of every stream, with a sprinkle of deliberate
    // double-sends so the dedup path provably fires.
    let cut = (all_rows[0].len() * 3) / 5;
    for (i, rows) in all_rows.iter().enumerate() {
        for (node, seq, value) in &rows[..cut] {
            client.send(handles[i], *node, *seq, value.clone());
            if seq % 10 == 0 {
                client.send(handles[i], *node, *seq, value.clone());
            }
        }
    }
    // Let every tenant land at least one checkpoint covering progress.
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.stats().checkpoints < tenant_seeds.len() as u64 {
        assert!(Instant::now() < deadline, "tenants never checkpointed");
        client.pump(Duration::from_millis(50));
    }
    let dups_before_kill = server.stats().duplicates;
    assert!(dups_before_kill > 0, "deliberate double-sends must dedup");

    // Phase 2: kill -9. No drain, no final checkpoint — the disk holds
    // only what the periodic checkpoints managed to write.
    server.hard_abort();

    // Phase 3: restart on the same address and directory; finish every
    // stream through the same client, which redials and replays from
    // the durable mark.
    let server = serve_on(&addr, &cfg);
    for (i, rows) in all_rows.iter().enumerate() {
        for (node, seq, value) in &rows[cut..] {
            client.send(handles[i], *node, *seq, value.clone());
            if seq % 10 == 0 {
                // Same deliberate double-sends as phase 1, so the *new*
                // daemon's dedup counter provably moves too.
                client.send(handles[i], *node, *seq, value.clone());
            }
            if seq % 16 == 0 {
                client.pump(Duration::from_millis(1));
            }
        }
        client.finish(handles[i], common::totals(&spec, per_leaf));
    }
    for (i, &h) in handles.iter().enumerate() {
        assert!(
            client.wait_finished(h, Duration::from_secs(120)),
            "tenant {i} completes after restart"
        );
        assert_eq!(
            client.resumed(h),
            Some(true),
            "tenant {i} must resume from its checkpoint, not start fresh"
        );
    }
    for (i, &h) in handles.iter().enumerate() {
        let got = client.query(h, Duration::from_secs(30)).expect("detections");
        assert_eq!(
            got, references[i],
            "tenant {i}: escalations after kill -9 + resume differ from reference (duplicate or lost escalations)"
        );
    }
    // Replay-from-durable necessarily overlaps the restored buffer.
    assert!(
        server.stats().duplicates > 0,
        "post-restart replay should be absorbed by seq dedup"
    );
    assert!(client.reconnects() >= 1, "client must have redialed");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crashed_tenant_worker_is_respawned_from_checkpoint() {
    let spec = common::spec(1, &[]);
    let per_leaf = 128u64;
    let rows = common::synth_rows(&spec, per_leaf, 77);
    let want = common::reference_detections(&spec, &rows, per_leaf);
    let dir = common::temp_dir("crash");

    let server = serve(ServeConfig {
        tenant: spec.clone(),
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 16,
        checkpoint_interval: Duration::from_millis(200),
        allow_crash_frames: true,
        ..ServeConfig::default()
    })
    .expect("daemon starts");

    let mut client = ServeClient::new(ClientConfig {
        resend_interval: Duration::from_millis(100),
        ..ClientConfig::new(server.addr().to_string())
    });
    let h = client.open("fragile");
    let mid = rows.len() / 2;
    for (node, seq, value) in &rows[..mid] {
        client.send(h, *node, *seq, value.clone());
        if seq % 16 == 0 {
            client.pump(Duration::from_millis(1));
        }
    }
    // Wait for a checkpoint, then panic the worker thread.
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.stats().checkpoints == 0 {
        assert!(Instant::now() < deadline, "tenant never checkpointed");
        client.pump(Duration::from_millis(50));
    }
    client.inject_crash(h);

    for (node, seq, value) in &rows[mid..] {
        client.send(h, *node, *seq, value.clone());
        if seq % 16 == 0 {
            client.pump(Duration::from_millis(1));
        }
    }
    client.finish(h, common::totals(&spec, per_leaf));
    assert!(
        client.wait_finished(h, Duration::from_secs(120)),
        "stream completes across the worker crash"
    );
    let got = client.query(h, Duration::from_secs(30)).expect("detections");
    assert_eq!(got, want, "escalations across a worker crash differ from reference");
    assert!(
        server.stats().worker_restarts >= 1,
        "supervisor must have respawned the worker"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_shutdown_drains_and_checkpoints() {
    let spec = common::spec(1, &[]);
    let rows = common::synth_rows(&spec, 64, 9);
    let dir = common::temp_dir("drain");

    let server = serve(ServeConfig {
        tenant: spec.clone(),
        checkpoint_dir: Some(dir.clone()),
        // Interval checkpoints effectively off: only the shutdown drain
        // writes the file.
        checkpoint_every: 0,
        checkpoint_interval: Duration::from_secs(3600),
        ..ServeConfig::default()
    })
    .expect("daemon starts");
    let addr = server.addr().to_string();

    let mut client = ServeClient::new(ClientConfig::new(addr.clone()));
    let h = client.open("drainee");
    for (node, seq, value) in &rows {
        client.send(h, *node, *seq, value.clone());
    }
    // Shut down while readings may still be queued: the drain must
    // process them and write a final checkpoint.
    client.pump(Duration::from_millis(100));
    server.shutdown();
    let ckpt = dir.join("drainee.ckpt");
    assert!(ckpt.exists(), "graceful shutdown must leave a checkpoint");

    // A fresh daemon restores it and reports the tenant as resumed with
    // all buffered progress intact.
    let server = serve_on(
        &addr,
        &ServeConfig {
            tenant: spec.clone(),
            checkpoint_dir: Some(dir.clone()),
            ..ServeConfig::default()
        },
    );
    let mut client2 = ServeClient::new(ClientConfig::new(addr));
    let h2 = client2.open("drainee");
    client2.pump(Duration::from_millis(200));
    assert_eq!(client2.resumed(h2), Some(true));
    client2.finish(h2, common::totals(&spec, 64));
    assert!(client2.wait_finished(h2, Duration::from_secs(60)));
    let got = client2.query(h2, Duration::from_secs(10)).expect("detections");
    let want = common::reference_detections(&spec, &rows, 64);
    assert_eq!(got, want, "drained state must carry the full stream");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
