//! A resilient single-threaded client for `snod serve`.
//!
//! The client owns the at-least-once half of the ingestion contract:
//! every reading stays in a resend buffer until the server acks it as
//! `durable` (covered by an on-disk checkpoint; without a checkpoint
//! directory the server reports `durable == received`). On any
//! connection failure the client redials with backoff, re-Hellos every
//! tenant **in open order** — which makes its locally predicted handles
//! match the server's dense per-connection assignment — and replays the
//! entire unpruned buffer. The server's sequence-number dedup absorbs
//! the overlap, so retransmission is always safe.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::wire::{encode_frame, FrameDecoder, Msg};

/// One detection or escalation as reported by the daemon:
/// `(node, time_ns, level, value)`.
pub type DetectionRow = (u32, u64, u8, Vec<f64>);

/// Client knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Server address.
    pub addr: String,
    /// Readings the server has not acked as received are retransmitted
    /// once the ack stream *stalls* for this long (covers load-shedding
    /// drops). A backlogged-but-progressing server is never re-sent to:
    /// blind cadence-based retransmission of in-flight rows is what the
    /// server's dedup counter used to book as hundreds of thousands of
    /// "duplicates" on a perfectly clean run.
    pub resend_interval: Duration,
    /// Initial redial backoff after a connection failure.
    pub connect_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Subscribe to live escalation frames.
    pub subscribe: bool,
}

impl ClientConfig {
    /// Defaults for `addr`.
    pub fn new(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            resend_interval: Duration::from_millis(300),
            connect_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(1),
            subscribe: false,
        }
    }
}

#[derive(Debug, Default)]
struct TenantState {
    name: String,
    /// Resend buffer: rows not yet covered by a durable ack.
    sent: Vec<(u32, u64, Vec<f64>)>,
    /// Per-node `(received, durable)` marks from the latest ack.
    marks: HashMap<u32, (u64, u64)>,
    totals: Option<Vec<(u32, u64)>>,
    finished: bool,
    resumed: Option<bool>,
    escalations: Vec<DetectionRow>,
    detections: Option<Vec<DetectionRow>>,
    detections_version: u64,
}

/// See the module docs.
pub struct ServeClient {
    cfg: ClientConfig,
    conn: Option<(TcpStream, FrameDecoder)>,
    tenants: Vec<TenantState>,
    /// Last time the ack stream made progress (a received mark
    /// advanced, or nothing was outstanding). Resends fire only when
    /// this goes stale — see [`ClientConfig::resend_interval`].
    last_progress: Instant,
    /// Current stall threshold: `resend_interval`, doubled after every
    /// resend pass that still sees no progress, reset on progress.
    resend_wait: Duration,
    /// Whether any ack arrived on the current connection. Until one
    /// does, a quiet period is indistinguishable from server warm-up —
    /// and nothing can have been lost that a resend would fix (only
    /// load-shedding drops rows on a live connection, and spotting a
    /// shed requires ack flow in the first place) — so stalls are only
    /// called once the ack stream has started.
    acked_since_dial: bool,
    backoff: Duration,
    next_dial: Instant,
    last_error: Option<(u8, String)>,
    reconnects: u64,
    ever_connected: bool,
}

impl ServeClient {
    pub fn new(cfg: ClientConfig) -> Self {
        let backoff = cfg.connect_backoff;
        let resend_wait = cfg.resend_interval;
        Self {
            cfg,
            conn: None,
            tenants: Vec::new(),
            last_progress: Instant::now(),
            resend_wait,
            acked_since_dial: false,
            backoff,
            next_dial: Instant::now(),
            last_error: None,
            reconnects: 0,
            ever_connected: false,
        }
    }

    /// Opens (or re-opens, after a client restart) a tenant stream.
    /// Returns the handle used by every other method.
    pub fn open(&mut self, tenant: impl Into<String>) -> u32 {
        let handle = self.tenants.len() as u32;
        self.tenants.push(TenantState {
            name: tenant.into(),
            ..TenantState::default()
        });
        if self.conn.is_some() {
            self.send_frame(&Msg::Hello {
                tenant: self.tenants[handle as usize].name.clone(),
                subscribe: self.cfg.subscribe,
            });
        }
        handle
    }

    /// Buffers and transmits one reading (at-least-once).
    pub fn send(&mut self, handle: u32, node: u32, seq: u64, value: Vec<f64>) {
        // Dial (and replay the backlog) *before* buffering this row:
        // buffering first would make the dial's catch-up replay include
        // it and the frame below would then be its duplicate.
        self.ensure_conn();
        let t = &mut self.tenants[handle as usize];
        let durable = t.marks.get(&node).map_or(0, |m| m.1);
        if seq >= durable {
            t.sent.push((node, seq, value.clone()));
        }
        self.send_frame(&Msg::Reading {
            handle,
            node,
            seq,
            value,
        });
    }

    /// Declares the per-leaf stream totals.
    pub fn finish(&mut self, handle: u32, totals: Vec<(u32, u64)>) {
        self.tenants[handle as usize].totals = Some(totals.clone());
        self.ensure_conn();
        self.send_frame(&Msg::Finish { handle, totals });
    }

    /// Drives the connection for `wait`: reads frames, retransmits
    /// unacked readings, reconnects as needed.
    pub fn pump(&mut self, wait: Duration) {
        let deadline = Instant::now() + wait;
        loop {
            self.ensure_conn();
            self.read_frames();
            self.maybe_resend();
            if Instant::now() >= deadline {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Pumps until the server confirms the tenant's stream is complete.
    pub fn wait_finished(&mut self, handle: u32, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while !self.tenants[handle as usize].finished {
            if Instant::now() >= deadline {
                return false;
            }
            self.pump(Duration::from_millis(20));
        }
        true
    }

    /// Fetches the tenant's full detection list.
    pub fn query(&mut self, handle: u32, timeout: Duration) -> Option<Vec<DetectionRow>> {
        let want = self.tenants[handle as usize].detections_version + 1;
        let deadline = Instant::now() + timeout;
        let mut last_ask = Instant::now() - Duration::from_secs(1);
        while self.tenants[handle as usize].detections_version < want {
            if Instant::now() >= deadline {
                return None;
            }
            if last_ask.elapsed() >= Duration::from_millis(200) {
                self.ensure_conn();
                self.send_frame(&Msg::Query { handle });
                last_ask = Instant::now();
            }
            self.pump(Duration::from_millis(20));
        }
        self.tenants[handle as usize].detections.clone()
    }

    /// Escalation frames received so far (requires `subscribe`).
    pub fn escalations(&self, handle: u32) -> &[DetectionRow] {
        &self.tenants[handle as usize].escalations
    }

    /// Whether the server reported the tenant as resumed from a
    /// checkpoint at the last Hello.
    pub fn resumed(&self, handle: u32) -> Option<bool> {
        self.tenants[handle as usize].resumed
    }

    /// The last protocol error frame received, if any.
    pub fn last_error(&self) -> Option<&(u8, String)> {
        self.last_error.as_ref()
    }

    /// Successful redials after a lost connection.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Readings buffered awaiting a durable ack.
    pub fn unacked(&self, handle: u32) -> usize {
        self.tenants[handle as usize].sent.len()
    }

    /// Requests an injected worker panic (the daemon must enable
    /// crash frames).
    pub fn inject_crash(&mut self, handle: u32) {
        self.ensure_conn();
        self.send_frame(&Msg::Crash { handle });
    }

    fn ensure_conn(&mut self) {
        if self.conn.is_some() || Instant::now() < self.next_dial {
            return;
        }
        match TcpStream::connect(&self.cfg.addr) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
                self.conn = Some((stream, FrameDecoder::new()));
                self.backoff = self.cfg.connect_backoff;
                if self.ever_connected {
                    self.reconnects += 1;
                } else {
                    self.ever_connected = true;
                }
                // Re-Hello every tenant in open order so server handles
                // match ours, then retransmit what the server lacks.
                for i in 0..self.tenants.len() {
                    let hello = Msg::Hello {
                        tenant: self.tenants[i].name.clone(),
                        subscribe: self.cfg.subscribe,
                    };
                    self.send_frame(&hello);
                }
                self.resend_unreceived();
                // The replay above is the reconnect catch-up; give the
                // server a full quiet interval before calling a stall.
                self.last_progress = Instant::now();
                self.resend_wait = self.cfg.resend_interval;
                self.acked_since_dial = false;
            }
            Err(_) => {
                self.next_dial = Instant::now() + self.backoff;
                self.backoff = (self.backoff * 2).min(self.cfg.max_backoff);
            }
        }
    }

    /// Retransmits every row the server has not acked as *received*,
    /// plus the Finish totals. Rows between `durable` and `received`
    /// stay buffered but are not re-sent here: if the server crashes
    /// and loses them, its Attach-ack on reconnect rewinds our marks to
    /// the restored state and the next pass picks them up.
    fn resend_unreceived(&mut self) {
        for handle in 0..self.tenants.len() as u32 {
            let t = &self.tenants[handle as usize];
            if t.finished {
                continue;
            }
            let rows: Vec<(u32, u64, Vec<f64>)> = t
                .sent
                .iter()
                .filter(|(node, seq, _)| {
                    *seq >= t.marks.get(node).map_or(0, |m| m.0)
                })
                .cloned()
                .collect();
            for (node, seq, value) in rows {
                self.send_frame(&Msg::Reading {
                    handle,
                    node,
                    seq,
                    value,
                });
            }
            if let Some(totals) = self.tenants[handle as usize].totals.clone() {
                self.send_frame(&Msg::Finish { handle, totals });
            }
        }
    }

    /// True if the server still owes us something a retransmission can
    /// nudge: a row not yet acked as received, or a declared Finish the
    /// server has not confirmed (the Finish frame itself can be lost).
    fn has_outstanding(&self) -> bool {
        self.tenants.iter().any(|t| {
            !t.finished
                && (t.totals.is_some()
                    || t.sent
                        .iter()
                        .any(|(node, seq, _)| *seq >= t.marks.get(node).map_or(0, |m| m.0)))
        })
    }

    /// Stall-gated retransmission. Rows in flight to a busy-but-healthy
    /// server keep arriving and advancing the received marks, so the
    /// stall clock keeps resetting and nothing is re-sent (a clean run
    /// produces exactly zero server-side duplicates). A genuinely lost
    /// row — shed under overload, or dropped by a fault — leaves the
    /// marks frozen below it; once they sit still for `resend_wait`,
    /// everything unreceived is replayed. Each fruitless pass doubles
    /// the wait so a slow drain is not hammered with replays.
    fn maybe_resend(&mut self) {
        if self.conn.is_none()
            || !self.acked_since_dial
            || self.last_progress.elapsed() < self.resend_wait
        {
            return;
        }
        if !self.has_outstanding() {
            self.last_progress = Instant::now();
            self.resend_wait = self.cfg.resend_interval;
            return;
        }
        self.last_progress = Instant::now();
        self.resend_wait = (self.resend_wait * 2).min(self.cfg.max_backoff.max(self.cfg.resend_interval));
        self.resend_unreceived();
    }

    fn send_frame(&mut self, msg: &Msg) {
        let Some((stream, _)) = self.conn.as_mut() else {
            return;
        };
        if stream.write_all(&encode_frame(msg)).is_err() {
            self.drop_conn();
        }
    }

    fn drop_conn(&mut self) {
        self.conn = None;
        self.next_dial = Instant::now() + self.backoff;
        self.backoff = (self.backoff * 2).min(self.cfg.max_backoff);
    }

    fn read_frames(&mut self) {
        let Some((stream, dec)) = self.conn.as_mut() else {
            return;
        };
        let mut buf = [0u8; 16 * 1024];
        match stream.read(&mut buf) {
            Ok(0) => {
                self.drop_conn();
                return;
            }
            Ok(n) => dec.feed(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => {
                self.drop_conn();
                return;
            }
        }
        loop {
            let frame = {
                let Some((_, dec)) = self.conn.as_mut() else {
                    return;
                };
                dec.next_frame()
            };
            match frame {
                Ok(Some(msg)) => self.handle_frame(msg),
                Ok(None) => return,
                Err(_) => {
                    // A server speaking garbage: drop and redial.
                    self.drop_conn();
                    return;
                }
            }
        }
    }

    fn handle_frame(&mut self, msg: Msg) {
        match msg {
            Msg::HelloOk { handle, resumed } => {
                if let Some(t) = self.tenants.get_mut(handle as usize) {
                    t.resumed = Some(resumed);
                }
            }
            Msg::Ack { handle, acks } => {
                let Some(t) = self.tenants.get_mut(handle as usize) else {
                    return;
                };
                let mut advanced = false;
                for (node, received, durable) in acks {
                    let old = t.marks.get(&node).copied().unwrap_or((0, 0));
                    advanced |= received > old.0 || durable > old.1;
                    t.marks.insert(node, (received, durable));
                }
                if advanced || !self.acked_since_dial {
                    self.last_progress = Instant::now();
                    self.resend_wait = self.cfg.resend_interval;
                }
                self.acked_since_dial = true;
                let t = self
                    .tenants
                    .get_mut(handle as usize)
                    .expect("checked above");
                // Durably acked rows can never be needed again.
                t.sent.retain(|(node, seq, _)| {
                    *seq >= t.marks.get(node).map_or(0, |m| m.1)
                });
            }
            Msg::Escalation {
                handle,
                node,
                time_ns,
                level,
                value,
            } => {
                if let Some(t) = self.tenants.get_mut(handle as usize) {
                    t.escalations.push((node, time_ns, level, value));
                }
            }
            Msg::Detections { handle, rows } => {
                if let Some(t) = self.tenants.get_mut(handle as usize) {
                    t.detections = Some(rows);
                    t.detections_version += 1;
                }
            }
            Msg::FinishOk { handle } => {
                if let Some(t) = self.tenants.get_mut(handle as usize) {
                    t.finished = true;
                }
            }
            Msg::Error { code, message } => {
                self.last_error = Some((code, message));
            }
            Msg::Pong => {}
            // Client-side frames arriving at the client: ignore.
            _ => {}
        }
    }
}
