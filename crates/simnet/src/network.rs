//! The simulation driver.
//!
//! [`Network`] owns one detector engine per node (the paper's
//! *"continuous query on every node"*) and drives them with events:
//! periodic sensor readings at the leaves, message deliveries between
//! nodes, and — when the reliability protocol is enabled —
//! acknowledgements and retransmission timers. Engines react through
//! [`DetectorEngine`] callbacks and talk to the network through
//! [`snod_engine::EngineCtx`], which restricts them to the hierarchy
//! links (parent/children) — exactly the communication pattern of the
//! paper's algorithms.
//!
//! The event-processing core — the pre/post phase split, the fault
//! layer, the ack/retry protocol, the per-node RNG streams and the
//! bit-exactness argument — lives in [`snod_engine::protocol`] and is
//! shared verbatim with the live runtime
//! ([`snod_engine::LiveRuntime`]); this module adds what is purely
//! *simulation*: the run loop that jumps the clock from event to event,
//! the parallel batch dispatcher, the restart-policy machinery and
//! whole-network checkpointing.

use std::path::Path;

use snod_persist::{ByteReader, ByteWriter, Persist, PersistError};

use snod_engine::protocol::{self, EngineState, Post, Pre, Task};
use snod_engine::Event;
use snod_engine::{
    CtxOut, DetectorEngine, EnergyModel, EngineCtx, FaultPlan, Hierarchy, NetStats, NodeId,
    RestartPolicy, SimConfig, StreamSource, Wire,
};

/// Decodes one application's state from restart-snapshot bytes.
type ReviveFn<A> = fn(&[u8]) -> Result<A, PersistError>;

/// Per-node restart machinery backing
/// [`Network::with_restart_policy`]: pristine start-of-run snapshots,
/// the latest periodic on-node checkpoint, per-node capture deadlines,
/// and the pending crash recoveries of the installed fault plan. The
/// `snap`/`revive` function pointers are monomorphized from `A`'s
/// [`Persist`] impl when the policy is installed, so the engine itself
/// needs no `A: Persist` bound.
struct RestartState<A> {
    policy: RestartPolicy,
    /// Serialized start-of-run application state, one entry per node
    /// (empty under [`RestartPolicy::Persistent`]).
    pristine: Vec<Vec<u8>>,
    /// The most recent periodic checkpoint per node (Warm only).
    last_ckpt: Vec<Option<Vec<u8>>>,
    /// Next capture deadline per node (Warm only).
    next_ckpt_ns: Vec<u64>,
    /// Outstanding crash recoveries `(up_ns, node index)`, unsorted.
    recoveries: Vec<(u64, u32)>,
    snap: Option<fn(&A) -> Vec<u8>>,
    revive: Option<ReviveFn<A>>,
}

impl<A> Default for RestartState<A> {
    fn default() -> Self {
        Self {
            policy: RestartPolicy::Persistent,
            pristine: Vec::new(),
            last_ckpt: Vec::new(),
            next_ckpt_ns: Vec::new(),
            recoveries: Vec::new(),
            snap: None,
            revive: None,
        }
    }
}

impl<A> RestartState<A> {
    /// Drains and returns the node indices due for recovery at `time`,
    /// in ascending order.
    fn due_recoveries(&mut self, time: u64) -> Vec<usize> {
        if self.recoveries.is_empty() {
            return Vec::new();
        }
        let mut due = Vec::new();
        let mut i = 0;
        while i < self.recoveries.len() {
            if self.recoveries[i].0 <= time {
                due.push(self.recoveries.swap_remove(i).1 as usize);
            } else {
                i += 1;
            }
        }
        due.sort_unstable();
        due
    }

    /// The application state node `idx` reboots with, per policy
    /// (`None` under Persistent: state survives untouched).
    fn revive_app(&mut self, idx: usize, stats: &mut NetStats) -> Option<A> {
        let revive = self.revive?;
        let bytes: &[u8] = match self.policy {
            RestartPolicy::Persistent => return None,
            RestartPolicy::Cold => {
                stats.cold_restarts += 1;
                &self.pristine[idx]
            }
            RestartPolicy::Warm { .. } => {
                stats.warm_restarts += 1;
                self.last_ckpt[idx]
                    .as_deref()
                    .unwrap_or(self.pristine[idx].as_slice())
            }
        };
        // The bytes were written by this engine from a live app, so a
        // decode failure is an engine bug, not bad input.
        Some(revive(bytes).expect("restart snapshot decodes"))
    }

    /// Is a periodic capture due for `node` at `time`? (Cheap check so
    /// the parallel driver only locks the app when needed.)
    fn capture_due(&self, time: u64, node: NodeId) -> bool {
        matches!(self.policy, RestartPolicy::Warm { .. })
            && self
                .next_ckpt_ns
                .get(node.index())
                .is_some_and(|&due| time >= due)
    }

    /// Captures `app` as `node`'s latest checkpoint and re-arms the
    /// deadline. The caller must run this *before* the node's first
    /// same-instant callback (both drivers do), so the captured bytes
    /// are identical across sequential and parallel execution.
    fn capture(&mut self, time: u64, node: NodeId, app: &A) {
        let RestartPolicy::Warm {
            checkpoint_every_ns,
        } = self.policy
        else {
            return;
        };
        let Some(snap) = self.snap else { return };
        self.last_ckpt[node.index()] = Some(snap(app));
        self.next_ckpt_ns[node.index()] = time + checkpoint_every_ns;
    }
}

/// A running simulation: topology + per-node engines + event queue.
pub struct Network<P: Wire, A: DetectorEngine<P>> {
    topo: Hierarchy,
    apps: Vec<A>,
    cfg: SimConfig,
    energy: EnergyModel,
    plan: FaultPlan,
    state: EngineState<P>,
    restart: RestartState<A>,
}

impl<P: Wire, A: DetectorEngine<P>> Network<P, A> {
    /// Builds a network, constructing one application per node via
    /// `make_app`.
    pub fn new(
        topo: Hierarchy,
        cfg: SimConfig,
        mut make_app: impl FnMut(NodeId, &Hierarchy) -> A,
    ) -> Self {
        let apps: Vec<A> = (0..topo.node_count())
            .map(|i| make_app(NodeId(i as u32), &topo))
            .collect();
        let plan = FaultPlan::none();
        let state = EngineState::new(topo.node_count(), topo.level_count(), &cfg, &plan);
        Self {
            apps,
            cfg,
            energy: EnergyModel::default(),
            state,
            restart: RestartState::default(),
            plan,
            topo,
        }
    }

    /// Installs `plan` as this run's fault schedule (and reseeds the
    /// fault streams from its seed). Must be called before
    /// [`Self::run`].
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.state.reseed_fault_streams(plan.seed);
        self.plan = plan;
        self
    }

    /// The active fault schedule.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Installs the application-state restart policy applied when a
    /// node comes back from a recoverable
    /// [`snod_engine::fault::CrashWindow`] (see [`RestartPolicy`]). The
    /// default, `Persistent`, preserves the engine's historic behaviour
    /// bit for bit. `Cold` and `Warm` snapshot every application's
    /// pristine state now, so call this *after* the apps are built but
    /// before [`Self::run`]. Counted in [`NetStats::cold_restarts`] /
    /// [`NetStats::warm_restarts`].
    pub fn with_restart_policy(mut self, policy: RestartPolicy) -> Self
    where
        A: Persist,
    {
        let n = self.topo.node_count();
        self.restart = match policy {
            RestartPolicy::Persistent => RestartState::default(),
            _ => RestartState {
                policy,
                pristine: self.apps.iter().map(Persist::to_bytes).collect(),
                last_ckpt: vec![None; n],
                next_ckpt_ns: match policy {
                    RestartPolicy::Warm {
                        checkpoint_every_ns,
                    } => vec![checkpoint_every_ns; n],
                    _ => Vec::new(),
                },
                recoveries: Vec::new(),
                snap: Some(<A as Persist>::to_bytes),
                revive: Some(<A as Persist>::from_bytes),
            },
        };
        self
    }

    /// Schedules `node` to fail (permanently stop reading, relaying and
    /// receiving) at simulated time `time_ns`. Must be called before
    /// [`Self::run`]. For a *recoverable* outage use a
    /// [`snod_engine::fault::CrashWindow`] instead.
    pub fn schedule_failure(&mut self, node: NodeId, time_ns: u64) {
        self.state.failures.push((time_ns, node));
    }

    /// Whether `node` has failed.
    pub fn is_dead(&self, node: NodeId) -> bool {
        self.state.dead[node.index()]
    }

    /// Replaces the default energy model.
    pub fn with_energy_model(mut self, model: EnergyModel) -> Self {
        self.energy = model;
        self
    }

    /// The fault-decision log: one line per crash, missed reading,
    /// lost frame and abandoned retry, in engine order. Empty unless
    /// the `fault-trace` feature is enabled.
    pub fn fault_trace(&self) -> &[String] {
        &self.state.trace
    }

    /// Runs the simulation: every leaf takes `readings_per_leaf` readings
    /// from `source`, and all resulting message traffic is processed to
    /// quiescence.
    ///
    /// With `cfg.worker_threads > 1` (or `0` = one per core) same-instant
    /// callbacks on different nodes run concurrently; the execution is
    /// bit-identical to the single-threaded engine either way (see the
    /// crate-level determinism argument) — including under a fault plan
    /// and the reliability protocol.
    pub fn run<S: StreamSource>(&mut self, source: &mut S, readings_per_leaf: u64)
    where
        P: Send,
        A: Send,
    {
        self.run_until(source, readings_per_leaf, u64::MAX);
    }

    /// [`Self::run`], but stops once every event at or before `stop_ns`
    /// has been processed (events scheduled later stay queued). Calling
    /// again — or on a checkpoint-restored network — continues exactly
    /// where the run left off: `run_until(k)` followed by
    /// `run_until(u64::MAX)` is bit-identical to one uninterrupted
    /// `run`, which is the property the checkpoint/resume tests pin.
    pub fn run_until<S: StreamSource>(&mut self, source: &mut S, readings_per_leaf: u64, stop_ns: u64)
    where
        P: Send,
        A: Send,
    {
        if readings_per_leaf == 0 {
            return;
        }
        if !self.state.started {
            self.state.seed_initial_readings(&self.topo, &self.cfg);
            if !matches!(self.restart.policy, RestartPolicy::Persistent) {
                self.restart.recoveries = self
                    .plan
                    .crashes
                    .iter()
                    .filter_map(|c| c.up_ns.map(|up| (up, c.node.0)))
                    .collect();
            }
            self.state.started = true;
        }
        let workers = self.cfg.resolved_workers();
        if workers <= 1 {
            self.run_sequential(source, readings_per_leaf, stop_ns);
        } else {
            self.run_parallel(source, readings_per_leaf, workers, stop_ns);
        }
        self.state.stats.elapsed_ns = self.state.clock_ns;
        // Per-level message flow, exported after the run so the hot loop
        // never pays a dynamic metric lookup.
        if snod_obs::enabled() {
            for (i, &msgs) in self.state.stats.messages_per_level.iter().enumerate() {
                let name = format!("simnet.level.{}.msgs", i + 1);
                snod_obs::Gauge::named(&name).set(msgs);
            }
        }
    }

    /// The classic one-event-at-a-time driver: for each event, the pre
    /// phase, then (maybe) the callback, then the post phase.
    fn run_sequential<S: StreamSource>(
        &mut self,
        source: &mut S,
        readings_per_leaf: u64,
        stop_ns: u64,
    ) {
        let mut clock = self.state.clock_ns;
        // Split borrows: the engine never touches `apps` or `restart`.
        let Self {
            topo,
            apps,
            cfg,
            energy,
            plan,
            state,
            restart,
        } = self;
        let mut eng = state.engine(topo, *cfg, energy, plan);
        loop {
            // Peek-then-pop: an event past the stop time stays queued,
            // so a later `run_until` (or a restored checkpoint) resumes
            // with the queue exactly as the uninterrupted run saw it.
            match eng.queue.peek_time() {
                Some(t) if t <= stop_ns => {}
                _ => break,
            }
            let (time, event) = eng.queue.pop().expect("peeked event present");
            clock = clock.max(time);
            eng.apply_failures(time);
            for idx in restart.due_recoveries(time) {
                if let Some(app) = restart.revive_app(idx, eng.stats) {
                    apps[idx] = app;
                }
            }
            match eng.classify(time, event, source, readings_per_leaf) {
                Pre::Skip => {}
                Pre::Engine(post) => eng.finish(time, CtxOut::default(), post),
                Pre::Run { node, task, post } => {
                    if restart.capture_due(time, node) {
                        restart.capture(time, node, &apps[node.index()]);
                    }
                    let mut ctx = EngineCtx::new(node, time, eng.topo);
                    let app = &mut apps[node.index()];
                    match task {
                        Task::Read(value) => app.ingest(&mut ctx, &value),
                        Task::Msg(from, payload) => app.on_message(&mut ctx, from, payload),
                        Task::Timer(id) => app.on_timer(&mut ctx, id),
                    }
                    eng.finish(time, ctx.into_out(), post);
                }
            }
        }
        self.state.clock_ns = clock;
    }

    /// The batched driver: pops every event sharing the earliest
    /// timestamp, runs the pre phase sequentially in batch order, ships
    /// the callbacks to `workers` threads (events on the *same* node
    /// stay in order on one worker), then replays every post-phase side
    /// effect — energy, statistics, RNG draws, the pending table, event
    /// scheduling — sequentially in batch order. Because pre and post
    /// are the same [`snod_engine::protocol::Engine`] code the
    /// sequential driver runs, the execution is bit-identical to
    /// [`Self::run_sequential`]; see the crate docs.
    fn run_parallel<S: StreamSource>(
        &mut self,
        source: &mut S,
        readings_per_leaf: u64,
        workers: usize,
        stop_ns: u64,
    ) where
        P: Send,
        A: Send,
    {
        use std::sync::{mpsc, Arc, Mutex};

        let apps: Vec<Mutex<A>> = std::mem::take(&mut self.apps)
            .into_iter()
            .map(Mutex::new)
            .collect();
        let mut clock_ns = self.state.clock_ns;
        let Self {
            topo,
            cfg,
            energy,
            plan,
            state,
            restart,
            ..
        } = &mut *self;
        let mut eng = state.engine(topo, *cfg, energy, plan);
        let topo: &Hierarchy = eng.topo;

        // Work unit: one node's same-instant callbacks, in batch order.
        // Result: per-callback outputs tagged with their task position.
        type TaskGroup<P> = Vec<(usize, Task<P>)>;
        type Job<P> = (u32, u64, TaskGroup<P>);
        type JobResult<P> = Vec<(usize, CtxOut<P>)>;
        let (work_tx, work_rx) = mpsc::channel::<Job<P>>();
        let work_rx = Arc::new(Mutex::new(work_rx));
        let (res_tx, res_rx) = mpsc::channel::<JobResult<P>>();

        std::thread::scope(|s| {
            for _ in 0..workers {
                let work_rx = Arc::clone(&work_rx);
                let res_tx = res_tx.clone();
                let apps = &apps;
                s.spawn(move || loop {
                    let job = work_rx.lock().expect("work queue intact").recv();
                    let Ok((node, time, tasks)) = job else { break };
                    let mut app = apps[node as usize].lock().expect("one worker per node");
                    let mut results = Vec::with_capacity(tasks.len());
                    for (pos, task) in tasks {
                        let mut ctx = EngineCtx::new(NodeId(node), time, topo);
                        match task {
                            Task::Read(value) => app.ingest(&mut ctx, &value),
                            Task::Msg(from, payload) => app.on_message(&mut ctx, from, payload),
                            Task::Timer(id) => app.on_timer(&mut ctx, id),
                        }
                        results.push((pos, ctx.into_out()));
                    }
                    if res_tx.send(results).is_err() {
                        break;
                    }
                });
            }

            // Batch scratch, allocated once and reused across every
            // same-instant dispatch batch: per-batch cost stays
            // proportional to the batch, not to total events, and the
            // driver's steady-state memory is bounded by the largest
            // batch (at worst one task per node).
            let mut batch: Vec<Event<P>> = Vec::new();
            let mut posts: Vec<(Post, Option<usize>)> = Vec::new();
            let mut groups: Vec<(u32, TaskGroup<P>)> = Vec::new();
            let mut outs: Vec<Option<CtxOut<P>>> = Vec::new();
            // Dense node → group-index slab (`u32::MAX` = not in this
            // batch); `touched` records which entries to reset so the
            // per-batch clear is O(batch), not O(nodes). Group order is
            // first-touch in batch order — the iteration-order of the
            // HashMap this replaces never leaked into scheduling, but a
            // dense slab makes that immune to accident as well as O(1).
            let mut group_of: Vec<u32> = vec![u32::MAX; topo.node_count()];
            let mut touched: Vec<u32> = Vec::new();

            loop {
                match eng.queue.peek_time() {
                    Some(t) if t <= stop_ns => {}
                    _ => break,
                }
                let (time, first) = eng.queue.pop().expect("peeked event present");
                clock_ns = clock_ns.max(time);
                // Failures are due "by now" for every event in the batch
                // alike, so applying them once up front matches the
                // sequential per-event check exactly.
                eng.apply_failures(time);
                // Recoveries, likewise, apply before any callback at
                // this instant — the same point the sequential engine
                // revives at.
                for idx in restart.due_recoveries(time) {
                    if let Some(app) = restart.revive_app(idx, eng.stats) {
                        *apps[idx].lock().expect("no callback in flight") = app;
                    }
                }
                // Drain the whole same-instant batch, preserving heap
                // (scheduling) order.
                batch.clear();
                batch.push(first);
                while eng.queue.peek_time() == Some(time) {
                    batch.push(eng.queue.pop().expect("peeked event present").1);
                }
                // Pre phase (sequential, batch order): classification,
                // stream fetches, receive accounting, dedup — exactly as
                // the sequential engine interleaves them.
                posts.clear();
                let mut n_tasks = 0usize;
                for event in batch.drain(..) {
                    match eng.classify(time, event, source, readings_per_leaf) {
                        Pre::Skip => {}
                        Pre::Engine(post) => posts.push((post, None)),
                        Pre::Run { node, task, post } => {
                            if restart.capture_due(time, node) {
                                // No callback of this batch has run yet,
                                // so the app state equals what the
                                // sequential engine captures at this
                                // node's first same-instant callback.
                                let app = apps[node.index()].lock().expect("pre-pass lock");
                                restart.capture(time, node, &app);
                            }
                            let pos = n_tasks;
                            n_tasks += 1;
                            posts.push((post, Some(pos)));
                            let slot = &mut group_of[node.index()];
                            if *slot == u32::MAX {
                                *slot = groups.len() as u32;
                                touched.push(node.0);
                                groups.push((node.0, Vec::new()));
                            }
                            groups[*slot as usize].1.push((pos, task));
                        }
                    }
                }
                for &n in &touched {
                    group_of[n as usize] = u32::MAX;
                }
                touched.clear();
                // Parallel phase: ship each node's task group to the pool.
                let n_groups = groups.len();
                for (node, tasks) in groups.drain(..) {
                    work_tx.send((node, time, tasks)).expect("workers alive");
                }
                outs.clear();
                outs.resize_with(n_tasks, || None);
                for _ in 0..n_groups {
                    for (pos, out) in res_rx.recv().expect("worker alive") {
                        outs[pos] = Some(out);
                    }
                }
                // Post phase (sequential, batch order): outbox flushes,
                // acks, retries and reading reschedules — the same
                // per-event side-effect order as the sequential engine,
                // so RNG draws, statistics, the pending table and queue
                // sequence numbers line up exactly.
                for (post, task_pos) in posts.drain(..) {
                    let out = match task_pos {
                        Some(p) => outs[p].take().expect("callback completed"),
                        None => CtxOut::default(),
                    };
                    eng.finish(time, out, post);
                }
            }
            drop(work_tx); // workers exit on channel close
        });

        self.apps = apps
            .into_iter()
            .map(|m| m.into_inner().expect("workers finished cleanly"))
            .collect();
        self.state.clock_ns = clock_ns;
    }

    /// Traffic and energy statistics of the run so far.
    pub fn stats(&self) -> &NetStats {
        &self.state.stats
    }

    /// The topology.
    pub fn topology(&self) -> &Hierarchy {
        &self.topo
    }

    /// The application instance at `node`.
    pub fn app(&self, node: NodeId) -> &A {
        &self.apps[node.index()]
    }

    /// Mutable access to the application at `node` (for post-run
    /// extraction of results).
    pub fn app_mut(&mut self, node: NodeId) -> &mut A {
        &mut self.apps[node.index()]
    }

    /// Iterates over `(node, app)` pairs.
    pub fn apps(&self) -> impl Iterator<Item = (NodeId, &A)> {
        self.apps
            .iter()
            .enumerate()
            .map(|(i, a)| (NodeId(i as u32), a))
    }

    /// Final simulated clock (ns).
    pub fn now_ns(&self) -> u64 {
        self.state.clock_ns
    }

    /// A structural fingerprint of everything the checkpoint does *not*
    /// carry but bit-identical resume depends on: topology shape, every
    /// [`SimConfig`] field except `worker_threads` (the engines are
    /// bit-identical across worker counts), the fault-plan seed and the
    /// restart policy. A checkpoint only restores into a network built
    /// with a matching fingerprint.
    fn fingerprint(&self) -> u64 {
        let h = protocol::config_fingerprint(&self.topo, &self.cfg, self.plan.seed);
        match self.restart.policy {
            RestartPolicy::Persistent => protocol::mix(h, 0),
            RestartPolicy::Cold => protocol::mix(h, 1),
            RestartPolicy::Warm {
                checkpoint_every_ns,
            } => protocol::mix(protocol::mix(h, 2), checkpoint_every_ns),
        }
    }

    /// The raw (un-enveloped) checkpoint payload; see
    /// [`Self::checkpoint`] for the content list.
    fn checkpoint_payload(&self) -> Vec<u8>
    where
        P: Persist,
        A: Persist,
    {
        let mut w = ByteWriter::new();
        self.fingerprint().save(&mut w);
        self.state.save(&mut w);
        self.restart.last_ckpt.save(&mut w);
        self.restart.next_ckpt_ns.save(&mut w);
        self.restart.recoveries.save(&mut w);
        w.put_usize(self.apps.len());
        for app in &self.apps {
            app.save(&mut w);
        }
        w.into_bytes()
    }

    /// Snapshots the complete runtime state — the simulated clock, the
    /// live event queue (with its tie-break sequence numbers), traffic
    /// statistics, all three per-node RNG stream families, the
    /// reliability protocol's pending and dedup tables, scheduled
    /// failures and dead flags, the restart machinery's snapshots and
    /// every application's state — wrapped in the versioned, checksummed
    /// `snod-persist` envelope.
    ///
    /// Restoring the bytes into a freshly built identical network (same
    /// topology, [`SimConfig`], fault plan and restart policy; any
    /// `worker_threads`) and continuing the run is bit-identical to
    /// never having stopped.
    pub fn checkpoint(&self) -> Vec<u8>
    where
        P: Persist,
        A: Persist,
    {
        snod_persist::encode_checkpoint(&self.checkpoint_payload())
    }

    /// [`Self::checkpoint`] written atomically to `path` (temp file +
    /// rename — a crash mid-write never leaves a torn file).
    pub fn checkpoint_to_file(&self, path: &Path) -> Result<(), PersistError>
    where
        P: Persist,
        A: Persist,
    {
        snod_persist::write_checkpoint_file(path, &self.checkpoint_payload())
    }

    /// Restores state captured by [`Self::checkpoint`] into this
    /// network. The network must have been built exactly like the
    /// checkpointed one — same topology, [`SimConfig`] (except
    /// `worker_threads`), fault plan and restart policy — which is
    /// verified via a structural fingerprint before anything is
    /// touched. On any error (corruption, truncation, version or
    /// fingerprint mismatch) the network is left unmodified.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), PersistError>
    where
        P: Persist,
        A: Persist,
    {
        let payload = snod_persist::decode_checkpoint(bytes)?;
        self.restore_payload(payload)
    }

    /// [`Self::restore`] from a checkpoint file.
    pub fn restore_from_file(&mut self, path: &Path) -> Result<(), PersistError>
    where
        P: Persist,
        A: Persist,
    {
        let payload = snod_persist::read_checkpoint_file(path)?;
        self.restore_payload(&payload)
    }

    fn restore_payload(&mut self, payload: &[u8]) -> Result<(), PersistError>
    where
        P: Persist,
        A: Persist,
    {
        let mut r = ByteReader::new(payload);
        if u64::load(&mut r)? != self.fingerprint() {
            return Err(PersistError::Corrupt(
                "checkpoint was taken on a different topology, config, fault plan or restart policy",
            ));
        }
        let state = EngineState::<P>::load(&mut r)?;
        let last_ckpt = Vec::<Option<Vec<u8>>>::load(&mut r)?;
        let next_ckpt_ns = Vec::<u64>::load(&mut r)?;
        let recoveries = Vec::<(u64, u32)>::load(&mut r)?;
        let n = self.topo.node_count();
        if !state.shape_matches(n, self.topo.level_count()) {
            return Err(PersistError::Corrupt("checkpoint node count mismatch"));
        }
        let restart_shape_ok = match self.restart.policy {
            RestartPolicy::Persistent => {
                last_ckpt.is_empty() && next_ckpt_ns.is_empty() && recoveries.is_empty()
            }
            RestartPolicy::Cold => last_ckpt.len() == n && next_ckpt_ns.is_empty(),
            RestartPolicy::Warm { .. } => last_ckpt.len() == n && next_ckpt_ns.len() == n,
        };
        if !restart_shape_ok || recoveries.iter().any(|&(_, idx)| idx as usize >= n) {
            return Err(PersistError::Corrupt("checkpoint restart state mismatch"));
        }
        let app_count = r.get_usize()?;
        if app_count != n {
            return Err(PersistError::Corrupt("checkpoint app count mismatch"));
        }
        let mut apps = Vec::with_capacity(n);
        for _ in 0..n {
            apps.push(A::load(&mut r)?);
        }
        r.finish()?;
        // Everything decoded and validated — commit. The diagnostic
        // fault trace is not persisted; keep whatever this network
        // accumulated (matching the historic restore behaviour).
        let trace = std::mem::take(&mut self.state.trace);
        self.state = state;
        self.state.trace = trace;
        self.restart.last_ckpt = last_ckpt;
        self.restart.next_ckpt_ns = next_ckpt_ns;
        self.restart.recoveries = recoveries;
        self.apps = apps;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snod_engine::fault::LinkFault;
    use snod_engine::RetryPolicy;

    /// Leaves forward every reading to their parent; leaders count what
    /// they hear and forward a fraction upward (every other message).
    struct Relay {
        received: u64,
        forwarded: u64,
        readings: u64,
    }

    impl Relay {
        fn new() -> Self {
            Self {
                received: 0,
                forwarded: 0,
                readings: 0,
            }
        }
    }

    impl DetectorEngine<Vec<f64>> for Relay {
        fn ingest(&mut self, ctx: &mut EngineCtx<'_, Vec<f64>>, value: &[f64]) {
            self.readings += 1;
            ctx.send_parent(value.to_vec());
        }

        fn on_message(
            &mut self,
            ctx: &mut EngineCtx<'_, Vec<f64>>,
            _from: NodeId,
            payload: Vec<f64>,
        ) {
            self.received += 1;
            if self.received.is_multiple_of(2) && ctx.send_parent(payload) {
                self.forwarded += 1;
            }
        }
    }

    /// Like [`Relay`] but every send is reliable.
    struct ReliableRelay(Relay);

    impl DetectorEngine<Vec<f64>> for ReliableRelay {
        fn ingest(&mut self, ctx: &mut EngineCtx<'_, Vec<f64>>, value: &[f64]) {
            self.0.readings += 1;
            ctx.send_parent_reliable(value.to_vec());
        }

        fn on_message(
            &mut self,
            ctx: &mut EngineCtx<'_, Vec<f64>>,
            _from: NodeId,
            payload: Vec<f64>,
        ) {
            self.0.received += 1;
            if self.0.received.is_multiple_of(2) && ctx.send_parent_reliable(payload) {
                self.0.forwarded += 1;
            }
        }
    }

    fn run_relay(readings: u64) -> Network<Vec<f64>, Relay> {
        let topo = Hierarchy::balanced(8, &[4, 2]).unwrap();
        let mut net = Network::new(topo, SimConfig::default(), |_, _| Relay::new());
        let mut source = |node: NodeId, seq: u64| Some(vec![node.0 as f64 + seq as f64 * 0.001]);
        net.run(&mut source, readings);
        net
    }

    #[test]
    fn leaves_read_the_requested_number_of_values() {
        let net = run_relay(10);
        for &leaf in net.topology().leaves() {
            assert_eq!(net.app(leaf).readings, 10);
        }
    }

    #[test]
    fn every_leaf_message_reaches_its_parent() {
        let net = run_relay(5);
        // 8 leaves × 5 readings = 40 messages into level-2 leaders.
        let total_level2: u64 = net
            .topology()
            .level(2)
            .iter()
            .map(|&l| net.app(l).received)
            .sum();
        assert_eq!(total_level2, 40);
    }

    #[test]
    fn halving_relay_reaches_root_with_half_traffic() {
        let net = run_relay(8);
        // 64 leaf messages reach the two level-2 leaders, which forward
        // every second one: 32 arrive at the root.
        let root = net.topology().root();
        assert_eq!(net.app(root).received, 32);
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let net = run_relay(5);
        let s = net.stats();
        // 40 leaf sends + 20 level-2 forwards = 60 messages.
        assert_eq!(s.messages, 60);
        assert_eq!(s.messages_per_level[0], 40);
        assert_eq!(s.messages_per_level[1], 20);
        // Each message: 1 value (2 bytes) + 8 header = 10 bytes.
        assert_eq!(s.bytes, 600);
        assert!(s.tx_joules > 0.0 && s.rx_joules > 0.0);
        assert!(s.elapsed_ns > 0);
        assert!(s.messages_per_second() > 0.0);
    }

    #[test]
    fn deterministic_replay() {
        let a = run_relay(7);
        let b = run_relay(7);
        assert_eq!(a.stats().messages, b.stats().messages);
        assert_eq!(a.stats().bytes, b.stats().bytes);
        assert_eq!(a.now_ns(), b.now_ns());
    }

    #[test]
    fn stream_can_end_early() {
        let topo = Hierarchy::balanced(2, &[2]).unwrap();
        let mut net = Network::new(topo, SimConfig::default(), |_, _| Relay::new());
        // Streams dry up after 3 readings even though 100 were requested.
        let mut source = |_node: NodeId, seq: u64| if seq < 3 { Some(vec![0.5]) } else { None };
        net.run(&mut source, 100);
        for &leaf in net.topology().leaves() {
            assert_eq!(net.app(leaf).readings, 3);
        }
    }

    #[test]
    fn lossy_radio_drops_messages_but_charges_energy() {
        let topo = Hierarchy::balanced(4, &[4]).unwrap();
        let cfg = SimConfig::default().with_drop_probability(0.5);
        let mut net = Network::new(topo, cfg, |_, _| Relay::new());
        let mut source = |_: NodeId, _: u64| Some(vec![0.5]);
        net.run(&mut source, 200);
        let s = net.stats();
        // 800 leaf sends; roughly half are dropped.
        assert_eq!(s.messages, 800);
        assert!(
            s.dropped > 250 && s.dropped < 550,
            "dropped {} of 800",
            s.dropped
        );
        let root = net.topology().root();
        assert_eq!(net.app(root).received + s.dropped, 800);
        // Energy was charged for every transmit attempt.
        assert!(s.tx_joules > 0.0);
    }

    #[test]
    fn failed_leaf_stops_reading() {
        let topo = Hierarchy::balanced(2, &[2]).unwrap();
        let mut net = Network::new(topo, SimConfig::default(), |_, _| Relay::new());
        // Leaf 0 dies after ~50 seconds (readings are 1/s).
        net.schedule_failure(NodeId(0), 50_000_000_000);
        let mut source = |_: NodeId, _: u64| Some(vec![0.5]);
        net.run(&mut source, 200);
        assert!(net.is_dead(NodeId(0)));
        assert!(net.app(NodeId(0)).readings <= 51);
        assert_eq!(net.app(NodeId(1)).readings, 200);
    }

    #[test]
    fn failed_leader_silences_its_subtree_upward() {
        let topo = Hierarchy::balanced(4, &[2, 2]).unwrap();
        let mut net = Network::new(topo.clone(), SimConfig::default(), |_, _| Relay::new());
        // Kill one level-2 leader immediately: its two leaves keep
        // reading, but nothing from them reaches the root.
        let leader = topo.level(2)[0];
        net.schedule_failure(leader, 0);
        let mut source = |_: NodeId, _: u64| Some(vec![0.5]);
        net.run(&mut source, 100);
        let root = net.topology().root();
        // Only the surviving leader's messages arrive (it halves them).
        assert_eq!(net.app(root).received, 100);
        assert_eq!(net.app(leader).received, 0);
    }

    #[test]
    fn zero_readings_is_a_noop() {
        let topo = Hierarchy::balanced(2, &[2]).unwrap();
        let mut net = Network::new(topo, SimConfig::default(), |_, _| Relay::new());
        let mut source = |_: NodeId, _: u64| Some(vec![0.5]);
        net.run(&mut source, 0);
        assert_eq!(net.stats().messages, 0);
    }

    /// Runs the relay workload under `cfg` and returns the network.
    fn run_relay_cfg(cfg: SimConfig, readings: u64) -> Network<Vec<f64>, Relay> {
        run_relay_cfg_plan(cfg, FaultPlan::none(), readings)
    }

    fn run_relay_cfg_plan(
        cfg: SimConfig,
        plan: FaultPlan,
        readings: u64,
    ) -> Network<Vec<f64>, Relay> {
        let topo = Hierarchy::balanced(8, &[4, 2]).unwrap();
        let mut net = Network::new(topo, cfg, |_, _| Relay::new()).with_fault_plan(plan);
        // One level-2 leader dies mid-run to exercise the dead-node path.
        net.schedule_failure(NodeId(9), 60_000_000_000);
        let mut source = |node: NodeId, seq: u64| Some(vec![node.0 as f64 + seq as f64 * 0.001]);
        net.run(&mut source, readings);
        net
    }

    /// Byte-level comparison of two runs: stats and per-app counters.
    fn assert_identical(a: &Network<Vec<f64>, Relay>, b: &Network<Vec<f64>, Relay>) {
        let (sa, sb) = (a.stats(), b.stats());
        assert_eq!(sa.messages, sb.messages);
        assert_eq!(sa.bytes, sb.bytes);
        assert_eq!(sa.dropped, sb.dropped);
        assert_eq!(sa.messages_per_level, sb.messages_per_level);
        assert_eq!(sa.acks, sb.acks);
        assert_eq!(sa.ack_bytes, sb.ack_bytes);
        assert_eq!(sa.retransmissions, sb.retransmissions);
        assert_eq!(sa.duplicates, sb.duplicates);
        assert_eq!(sa.duplicates_suppressed, sb.duplicates_suppressed);
        assert_eq!(sa.retry_exhausted, sb.retry_exhausted);
        assert_eq!(sa.lost_to_crash, sb.lost_to_crash);
        // Energy is float accumulation: bit-identical order required.
        assert!(sa.tx_joules.to_bits() == sb.tx_joules.to_bits());
        assert!(sa.rx_joules.to_bits() == sb.rx_joules.to_bits());
        assert_eq!(a.now_ns(), b.now_ns());
        for (node, app) in a.apps() {
            let other = b.app(node);
            assert_eq!(
                (app.readings, app.received, app.forwarded),
                (other.readings, other.received, other.forwarded),
                "app state diverged at {node:?}"
            );
        }
    }

    #[test]
    fn parallel_engine_is_bit_identical_to_sequential() {
        // Synchronous readings (no stagger) maximise batch sizes, and a
        // lossy radio makes the loss-RNG draw order observable.
        let base = SimConfig {
            stagger_readings: false,
            ..SimConfig::default()
        }
        .with_drop_probability(0.2);
        let seq = run_relay_cfg(base.with_worker_threads(1), 120);
        for workers in [2, 4, 0] {
            let par = run_relay_cfg(base.with_worker_threads(workers), 120);
            assert_identical(&seq, &par);
        }
    }

    #[test]
    fn parallel_engine_matches_with_staggered_readings() {
        // Staggered phases make most batches singletons — the degenerate
        // case must be exact too.
        let base = SimConfig::default().with_drop_probability(0.1);
        let seq = run_relay_cfg(base.with_worker_threads(1), 60);
        let par = run_relay_cfg(base.with_worker_threads(3), 60);
        assert_identical(&seq, &par);
    }

    /// A crash window plus delays, duplication and a loss burst —
    /// representative of a full-adversity plan.
    fn adversity_plan() -> FaultPlan {
        FaultPlan::none()
            .with_seed(0xBAD)
            .crash(NodeId(2), 20_000_000_000, Some(55_000_000_000))
            .dropout(NodeId(5), 10_000_000_000, 30_000_000_000)
            .link(LinkFault {
                from: None,
                to: None,
                extra_delay_ns: 2_000_000,
                jitter_ns: 7_000_000,
                duplicate_probability: 0.1,
            })
            .burst(40_000_000_000, 50_000_000_000, 0.8)
    }

    #[test]
    fn parallel_engine_is_bit_identical_with_faults_and_reliability() {
        // Satellite: bit-identity must survive crashes, delays, jitter,
        // duplication, bursts *and* the ack/retry protocol.
        let base = SimConfig {
            stagger_readings: false,
            ..SimConfig::default()
        }
        .with_drop_probability(0.1)
        .with_reliability(RetryPolicy {
            timeout_ns: 200_000_000,
            max_retries: 3,
            backoff: 2.0,
            jitter_ns: 50_000_000,
        });
        let seq = run_relay_cfg_plan(base.with_worker_threads(1), adversity_plan(), 90);
        for workers in [2, 4] {
            let par = run_relay_cfg_plan(base.with_worker_threads(workers), adversity_plan(), 90);
            assert_identical(&seq, &par);
        }
    }

    #[test]
    fn empty_fault_plan_changes_nothing() {
        // Installing FaultPlan::none() (and even a reliability policy no
        // app uses reliably... Relay sends plain) must leave the run
        // bit-identical to one without either.
        let cfg = SimConfig::default().with_drop_probability(0.3);
        let plain = run_relay_cfg(cfg, 80);
        let planned = run_relay_cfg_plan(cfg, FaultPlan::none(), 80);
        assert_identical(&plain, &planned);
        let with_policy = run_relay_cfg_plan(
            cfg.with_reliability(RetryPolicy::default()),
            FaultPlan::none(),
            80,
        );
        assert_identical(&plain, &with_policy);
    }

    #[test]
    fn reliability_none_makes_reliable_sends_plain() {
        // The same app using send_reliable everywhere, run without a
        // policy, must match the plain-send app bit for bit.
        let topo = Hierarchy::balanced(4, &[4]).unwrap();
        let cfg = SimConfig::default().with_drop_probability(0.25);
        let mut plain = Network::new(topo.clone(), cfg, |_, _| Relay::new());
        let mut reliable = Network::new(topo, cfg, |_, _| ReliableRelay(Relay::new()));
        let mut source = |node: NodeId, seq: u64| Some(vec![node.0 as f64 + seq as f64]);
        plain.run(&mut source, 100);
        let mut source2 = |node: NodeId, seq: u64| Some(vec![node.0 as f64 + seq as f64]);
        reliable.run(&mut source2, 100);
        let (sp, sr) = (plain.stats(), reliable.stats());
        assert_eq!(sp.messages, sr.messages);
        assert_eq!(sp.bytes, sr.bytes);
        assert_eq!(sp.dropped, sr.dropped);
        assert_eq!(sr.acks, 0);
        assert_eq!(sr.retransmissions, 0);
        assert!(sp.tx_joules.to_bits() == sr.tx_joules.to_bits());
    }

    #[test]
    fn crash_window_pauses_and_resumes_readings() {
        let topo = Hierarchy::balanced(2, &[2]).unwrap();
        let cfg = SimConfig {
            stagger_readings: false,
            ..SimConfig::default()
        };
        // Down for t ∈ [10 s, 50 s): readings 10..=49 are missed.
        let plan = FaultPlan::none().crash(NodeId(0), 10_000_000_000, Some(50_000_000_000));
        let mut net = Network::new(topo, cfg, |_, _| Relay::new()).with_fault_plan(plan);
        let mut source = |_: NodeId, _: u64| Some(vec![0.5]);
        net.run(&mut source, 100);
        assert_eq!(net.app(NodeId(0)).readings, 60);
        assert_eq!(net.app(NodeId(1)).readings, 100);
        // The parent heard 60 + 100 messages.
        let root = net.topology().root();
        assert_eq!(net.app(root).received, 160);
    }

    #[test]
    fn sensor_dropout_skips_readings_but_keeps_relaying() {
        let topo = Hierarchy::balanced(2, &[2]).unwrap();
        let cfg = SimConfig {
            stagger_readings: false,
            ..SimConfig::default()
        };
        let plan = FaultPlan::none().dropout(NodeId(0), 5_000_000_000, 15_000_000_000);
        let mut net = Network::new(topo, cfg, |_, _| Relay::new()).with_fault_plan(plan);
        let mut source = |_: NodeId, _: u64| Some(vec![0.5]);
        net.run(&mut source, 30);
        // Readings 5..=14 missed: 20 remain.
        assert_eq!(net.app(NodeId(0)).readings, 20);
        assert_eq!(net.app(NodeId(1)).readings, 30);
    }

    #[test]
    fn delivery_to_crashed_node_is_lost_and_counted() {
        let topo = Hierarchy::balanced(2, &[2]).unwrap();
        let cfg = SimConfig {
            stagger_readings: false,
            ..SimConfig::default()
        };
        // The parent (root) is down for [0, 10.5 s): the ~10 first
        // messages from each leaf evaporate.
        let root_id = topo.root();
        let plan = FaultPlan::none().crash(root_id, 0, Some(10_500_000_000));
        let mut net = Network::new(topo, cfg, |_, _| Relay::new()).with_fault_plan(plan);
        let mut source = |_: NodeId, _: u64| Some(vec![0.5]);
        net.run(&mut source, 30);
        let s = net.stats();
        // Readings at t = 0..=10 s arrive at t + 5 ms, still in-window:
        // 11 per leaf lost.
        assert_eq!(s.lost_to_crash, 22);
        assert_eq!(net.app(root_id).received, 38);
    }

    #[test]
    fn link_duplication_delivers_copies_best_effort() {
        let topo = Hierarchy::balanced(2, &[2]).unwrap();
        let plan = FaultPlan::none().link(LinkFault {
            from: None,
            to: None,
            extra_delay_ns: 0,
            jitter_ns: 0,
            duplicate_probability: 1.0,
        });
        let mut net =
            Network::new(topo, SimConfig::default(), |_, _| Relay::new()).with_fault_plan(plan);
        let mut source = |_: NodeId, _: u64| Some(vec![0.5]);
        net.run(&mut source, 25);
        // Every best-effort frame arrives twice; duplicated forwards
        // compound, so just check the leaf→parent hop exactly.
        let root = net.topology().root();
        assert_eq!(net.stats().duplicates, net.stats().messages);
        assert_eq!(net.app(root).received, 100); // 2 leaves × 25 × 2
    }

    #[test]
    fn reliable_delivery_survives_a_total_loss_burst() {
        let topo = Hierarchy::balanced(1, &[1]).unwrap();
        let cfg = SimConfig {
            stagger_readings: false,
            ..SimConfig::default()
        }
        .with_reliability(RetryPolicy {
            timeout_ns: 1_000_000_000,
            max_retries: 10,
            backoff: 2.0,
            jitter_ns: 0,
        });
        // Everything on the air before t = 3.5 s dies.
        let plan = FaultPlan::none().burst(0, 3_500_000_000, 1.0);
        let mut net =
            Network::new(topo, cfg, |_, _| ReliableRelay(Relay::new())).with_fault_plan(plan);
        let mut source = |_: NodeId, _: u64| Some(vec![0.5]);
        net.run(&mut source, 1);
        let s = net.stats();
        let root = net.topology().root();
        // Initial tx at t=0 lost; retries at t=1 s and t=3 s lost; the
        // t=7 s retry survives and is acked.
        assert_eq!(net.app(root).0.received, 1);
        assert_eq!(s.dropped, 3);
        assert_eq!(s.retransmissions, 3);
        assert_eq!(s.acks, 1);
        assert_eq!(s.retry_exhausted, 0);
        assert_eq!(s.duplicates_suppressed, 0);
    }

    #[test]
    fn reliable_dedup_suppresses_duplicate_deliveries() {
        let topo = Hierarchy::balanced(2, &[2]).unwrap();
        let cfg = SimConfig {
            stagger_readings: false,
            ..SimConfig::default()
        }
        .with_reliability(RetryPolicy::default());
        let plan = FaultPlan::none().link(LinkFault {
            from: None,
            to: None,
            extra_delay_ns: 0,
            jitter_ns: 0,
            duplicate_probability: 1.0,
        });
        let mut net =
            Network::new(topo, cfg, |_, _| ReliableRelay(Relay::new())).with_fault_plan(plan);
        let mut source = |_: NodeId, _: u64| Some(vec![0.5]);
        net.run(&mut source, 20);
        let s = net.stats();
        let root = net.topology().root();
        // 40 reliable sends, each aired twice: the app sees each once.
        assert_eq!(net.app(root).0.received, 40);
        assert_eq!(s.duplicates_suppressed, 40);
        // Both copies are acked (the ack for the duplicate re-confirms).
        assert_eq!(s.acks, 80);
        assert_eq!(s.retransmissions, 0);
    }

    #[test]
    fn retries_exhaust_against_a_permanently_crashed_receiver() {
        let topo = Hierarchy::balanced(1, &[1]).unwrap();
        let root_id = topo.root();
        let cfg = SimConfig {
            stagger_readings: false,
            ..SimConfig::default()
        }
        .with_reliability(RetryPolicy {
            timeout_ns: 1_000_000_000,
            max_retries: 2,
            backoff: 2.0,
            jitter_ns: 0,
        });
        let plan = FaultPlan::none().crash(root_id, 0, None);
        let mut net =
            Network::new(topo, cfg, |_, _| ReliableRelay(Relay::new())).with_fault_plan(plan);
        let mut source = |_: NodeId, _: u64| Some(vec![0.5]);
        net.run(&mut source, 3);
        let s = net.stats();
        assert_eq!(net.app(root_id).0.received, 0);
        // 3 messages × (1 initial + 2 retries) frames, all into the void.
        assert_eq!(s.retransmissions, 6);
        assert_eq!(s.retry_exhausted, 3);
        assert_eq!(s.lost_to_crash, 9);
        assert_eq!(s.acks, 0);
    }

    #[test]
    fn link_delay_defers_but_preserves_delivery() {
        let topo = Hierarchy::balanced(2, &[2]).unwrap();
        let plan = FaultPlan::none().link(LinkFault::delay_all(500_000_000, 0));
        let mut slow =
            Network::new(topo.clone(), SimConfig::default(), |_, _| Relay::new())
                .with_fault_plan(plan);
        let mut fast = Network::new(topo, SimConfig::default(), |_, _| Relay::new());
        let mut s1 = |_: NodeId, _: u64| Some(vec![0.5]);
        let mut s2 = |_: NodeId, _: u64| Some(vec![0.5]);
        slow.run(&mut s1, 20);
        fast.run(&mut s2, 20);
        let root = slow.topology().root();
        assert_eq!(slow.app(root).received, fast.app(root).received);
        assert!(slow.now_ns() > fast.now_ns());
        assert_eq!(slow.stats().dropped, 0);
    }

    /// An app that arms a timer on every reading and counts firings —
    /// drives the AppTimer path end to end through the simulator.
    struct TimerApp {
        readings: u64,
        fired: u64,
    }

    impl DetectorEngine<Vec<f64>> for TimerApp {
        fn ingest(&mut self, ctx: &mut EngineCtx<'_, Vec<f64>>, _value: &[f64]) {
            self.readings += 1;
            ctx.set_timer(250_000_000, self.readings);
        }

        fn on_message(&mut self, _: &mut EngineCtx<'_, Vec<f64>>, _: NodeId, _: Vec<f64>) {}

        fn on_timer(&mut self, ctx: &mut EngineCtx<'_, Vec<f64>>, timer: u64) {
            self.fired += 1;
            assert_eq!(timer, self.fired, "timers fire in arming order");
            ctx.send_parent(vec![timer as f64]);
        }
    }

    #[test]
    fn app_timers_fire_once_each_and_can_send() {
        let topo = Hierarchy::balanced(2, &[2]).unwrap();
        let mut net = Network::new(topo, SimConfig::default(), |_, _| TimerApp {
            readings: 0,
            fired: 0,
        });
        let mut source = |_: NodeId, _: u64| Some(vec![0.5]);
        net.run(&mut source, 10);
        for &leaf in net.topology().leaves() {
            assert_eq!(net.app(leaf).readings, 10);
            assert_eq!(net.app(leaf).fired, 10);
        }
        // Timer callbacks sent one frame each: 2 leaves × 10 timers.
        assert_eq!(net.stats().messages, 20);
    }

    #[test]
    fn timers_are_lost_while_a_node_is_down() {
        let topo = Hierarchy::balanced(2, &[2]).unwrap();
        let cfg = SimConfig {
            stagger_readings: false,
            ..SimConfig::default()
        };
        // Down for [5 s, 15 s): readings 5..=14 are missed AND any timer
        // armed at t=4.x s fires into the crash window and is lost.
        let plan = FaultPlan::none().crash(NodeId(0), 4_500_000_000, Some(15_000_000_000));
        let mut net = Network::new(topo, cfg, |_, _| TimerApp {
            readings: 0,
            fired: 0,
        })
        .with_fault_plan(plan);
        let mut source = |_: NodeId, _: u64| Some(vec![0.5]);
        net.run(&mut source, 20);
        let down = net.app(NodeId(0));
        // Readings at t=0..4 and t=15..19: 5 + 5 = 10; the t=4 timer
        // (due t=4.25? no — armed at 4 + 0.25 = 4.25 s, before the
        // window) fires, so only timers armed at t ∈ {4.5..} are at
        // risk; all surviving readings' timers fire.
        assert_eq!(down.readings, 10);
        assert_eq!(down.fired, down.readings);
        let up = net.app(NodeId(1));
        assert_eq!(up.readings, 20);
        assert_eq!(up.fired, 20);
    }
}
