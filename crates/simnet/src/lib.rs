//! # snod-simnet — hierarchical sensor-network simulator
//!
//! The paper evaluates its algorithms on a simulator built on top of TAG
//! (Madden et al., OSDI 2002), using it to *"define the topology of the
//! network and the type of messages exchanged, to disseminate queries,
//! and to gather statistics"*, extended with the hierarchical (virtual
//! grid) organisation of Section 2. TAG's source is not available, so
//! this crate is the substitute substrate: a deterministic discrete-event
//! simulator providing the same observable quantities — message counts,
//! bytes on the air, per-level traffic, energy — for a detector engine
//! running on every node.
//!
//! The runtime-agnostic core — the [`DetectorEngine`] trait, the
//! message/fault/statistics types and the event-processing protocol —
//! lives in the `snod-engine` crate and is re-exported here under its
//! historic paths; this crate adds the *simulated-time driver*:
//!
//! * [`Hierarchy`] — the tiered virtual-grid organisation of Figure 1:
//!   leaf sensors at the bottom, one leader per cell per tier.
//! * [`Network`] — the simulation driver: schedules sensor readings,
//!   delivers messages with configurable latency, and accounts for
//!   every byte, jumping the clock from event to event.
//! * [`DetectorEngine`] — the callback trait the paper's algorithms
//!   (D3, MGDD, centralized) implement in `snod-core`. The same engines
//!   run unmodified under `snod-engine`'s wall-clock `LiveRuntime`.
//! * [`NetStats`] / [`EnergyModel`] — the statistics behind Figure 11 and
//!   the §10.3 communication-cost discussion.
//!
//! ## Determinism, sequential *and* parallel
//!
//! Identical inputs (topology, streams, seeds) replay identical
//! executions, which the integration tests rely on — **including** when
//! [`SimConfig::worker_threads`] enables the parallel engine. The
//! argument:
//!
//! 1. **Batches.** Events are totally ordered by `(time, scheduling
//!    seq)`. The parallel engine drains one *batch* — every event
//!    sharing the earliest timestamp — at a time, in heap order. A
//!    callback can only schedule events at `time + latency`/`period`
//!    (or at the same instant with zero latency, which lands in a
//!    *later* scheduling-seq batch exactly where the sequential engine
//!    would process it), so batch boundaries never cut a
//!    happens-before edge.
//! 2. **Isolation.** Application state is per-node and an [`EngineCtx`]
//!    only buffers sends. Within a batch, callbacks on different nodes
//!    are therefore independent; callbacks on the *same* node are
//!    grouped and run in batch order on one worker. The assignment of
//!    groups to threads cannot affect any observable value.
//! 3. **Side-effect replay.** Everything shared — stream fetches,
//!    receive/transmit energy sums, message statistics, the per-node
//!    RNG streams, the reliability protocol's pending/dedup tables,
//!    queue sequence numbers — is executed by the coordinator thread in
//!    exact batch order: stream fetches, receive accounting and
//!    duplicate suppression in a pre-pass; outbox flushing, ack and
//!    retransmission handling and next-reading scheduling in a
//!    post-pass. Floating-point accumulation order and RNG draw order
//!    are thus byte-for-byte those of the sequential engine. Crucially,
//!    *acks and retry timers are resolved in the post-pass too*: a
//!    retransmission at batch position `k` followed by an ack at `k+1`
//!    replays in exactly that order, as the sequential engine would.
//!
//! Hence every statistic, alarm and detection is bit-identical across
//! `worker_threads` settings; the parallel engine merely overlaps the
//! (expensive, pure) per-node model computations. The same argument
//! covers the fault layer ([`fault::FaultPlan`]) and the ack/retry
//! protocol ([`fault::RetryPolicy`]): both engines consult the plan in
//! the pre phase and draw fault/loss/retry randomness in the post
//! phase, from per-node streams whose draw order is per-stream
//! sequential order. See `snod-engine`'s `protocol` module for the
//! per-node stream layout and the bit-exactness argument for
//! `FaultPlan::none()` — and for why the same pre/post split makes the
//! wall-clock `LiveRuntime` bit-identical to this simulator.
//!
//! ```
//! use snod_simnet::{DetectorEngine, EngineCtx, Hierarchy, Network, NodeId, SimConfig};
//!
//! // A trivial application: every leaf forwards its readings upward.
//! struct Forward;
//! impl DetectorEngine<Vec<f64>> for Forward {
//!     fn ingest(&mut self, ctx: &mut EngineCtx<'_, Vec<f64>>, value: &[f64]) {
//!         ctx.send_parent(value.to_vec());
//!     }
//!     fn on_message(&mut self, _: &mut EngineCtx<'_, Vec<f64>>, _: NodeId, _: Vec<f64>) {}
//! }
//!
//! let topo = Hierarchy::balanced(4, &[4]).unwrap();
//! let mut net = Network::new(topo, SimConfig::default(), |_, _| Forward);
//! let mut source = |_: NodeId, seq: u64| Some(vec![seq as f64]);
//! net.run(&mut source, 10);
//! assert_eq!(net.stats().messages, 40); // 4 leaves × 10 readings
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregate;
mod election;
mod network;

pub use snod_engine::fault;

pub use aggregate::{Aggregate, PartialState, TagNode, TagPayload};
pub use network::Network;
pub use snod_engine::fault::{
    BurstLoss, CrashWindow, DropoutWindow, FaultPlan, LinkFault, RestartPolicy, RetryPolicy,
};
pub use snod_engine::{
    Clock, DetectorEngine, EnergyModel, Envelope, EngineCtx, Event, EventQueue, Hierarchy,
    LiveRuntime, Location, MonotonicClock, NetStats, NodeId, NodeRole, ReadingTrace, SimConfig,
    SimError, StreamSource, TraceRecorder, VirtualClock, Wire, ACK_BYTES, HEADER_BYTES,
    MSG_ID_BYTES,
};

pub use election::{ElectionPolicy, Electorate, LeaderAssignment};

/// The historic name of [`EngineCtx`], kept so downstream code reads
/// naturally in either vocabulary.
pub type Ctx<'a, P> = EngineCtx<'a, P>;
