//! Exact sliding-window distance-outlier detection with a grid index.
//!
//! The approximate detectors exist because sensors cannot afford
//! `O(|W|)` memory — but the *root of the hierarchy* (the paper's
//! centralized baseline) and any downstream user on real hardware can.
//! [`ExactWindowDetector`] maintains the exact window in a uniform grid
//! of cell width `r`, so an L∞ neighbor count probes at most `3^d`
//! cells and stops early at the decision threshold: `O(t)` amortised
//! per verdict instead of the naive `O(|W|)`.

use std::collections::{HashMap, VecDeque};

use crate::distance::DistanceOutlierConfig;

/// Exact `(D, r)`-outlier detection over the last `capacity` readings.
///
/// ```
/// use snod_outlier::exact::ExactWindowDetector;
/// use snod_outlier::DistanceOutlierConfig;
///
/// let rule = DistanceOutlierConfig::new(3.0, 0.05);
/// let mut det = ExactWindowDetector::new(rule.radius, 100);
/// for i in 0..100 {
///     det.push(vec![0.5 + 0.0001 * i as f64]);
/// }
/// assert!(!det.is_outlier(&[0.5], &rule));  // dense region
/// assert!(det.is_outlier(&[0.9], &rule));   // empty region
/// ```
#[derive(Debug, Clone)]
pub struct ExactWindowDetector {
    radius: f64,
    capacity: usize,
    order: VecDeque<Vec<f64>>,
    cells: HashMap<Vec<i64>, Vec<Vec<f64>>>,
}

impl ExactWindowDetector {
    /// A detector with grid cell width `radius` holding at most
    /// `capacity` readings.
    ///
    /// # Panics
    /// Panics when `radius ≤ 0` or `capacity == 0` (construction-time
    /// programming errors).
    pub fn new(radius: f64, capacity: usize) -> Self {
        assert!(radius > 0.0, "radius must be positive");
        assert!(capacity > 0, "capacity must be positive");
        Self {
            radius,
            capacity,
            order: VecDeque::with_capacity(capacity),
            cells: HashMap::new(),
        }
    }

    fn key(&self, p: &[f64]) -> Vec<i64> {
        p.iter()
            .map(|&c| (c / self.radius).floor() as i64)
            .collect()
    }

    /// Appends a reading, evicting (and returning) the oldest when full.
    pub fn push(&mut self, p: Vec<f64>) -> Option<Vec<f64>> {
        let evicted = if self.order.len() == self.capacity {
            let old = self.order.pop_front().expect("non-empty at capacity");
            let k = self.key(&old);
            if let Some(bucket) = self.cells.get_mut(&k) {
                if let Some(pos) = bucket.iter().position(|q| *q == old) {
                    bucket.swap_remove(pos);
                }
                if bucket.is_empty() {
                    self.cells.remove(&k);
                }
            }
            Some(old)
        } else {
            None
        };
        self.cells.entry(self.key(&p)).or_default().push(p.clone());
        self.order.push_back(p);
        evicted
    }

    /// Readings currently held.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when no reading is held.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Exact number of window readings within L∞ `radius` of `p`,
    /// stopping early once `stop_at` is reached (the verdict is fixed
    /// past the threshold).
    pub fn count_neighbors(&self, p: &[f64], stop_at: usize) -> usize {
        let d = p.len();
        let base = self.key(p);
        let mut count = 0usize;
        let total = 3usize.pow(d as u32);
        let mut probe = vec![0i64; d];
        for flat in 0..total {
            let mut rem = flat;
            for j in 0..d {
                probe[j] = base[j] + (rem % 3) as i64 - 1;
                rem /= 3;
            }
            if let Some(bucket) = self.cells.get(&probe) {
                for q in bucket {
                    let within = p
                        .iter()
                        .zip(q.iter())
                        .all(|(a, b)| (a - b).abs() <= self.radius);
                    if within {
                        count += 1;
                        if count >= stop_at {
                            return count;
                        }
                    }
                }
            }
        }
        count
    }

    /// `(D, r)`-outlier verdict for a *new observation* `p` against the
    /// current window (exact, `p` not counted even if a bit-identical
    /// reading is indexed — pass readings through [`Self::push`]
    /// *after* testing them).
    ///
    /// `rule.radius` must equal the detector's grid radius.
    pub fn is_outlier(&self, p: &[f64], rule: &DistanceOutlierConfig) -> bool {
        debug_assert!(
            (rule.radius - self.radius).abs() < 1e-12,
            "rule radius must match the index radius"
        );
        let stop = rule.min_neighbors.ceil() as usize;
        (self.count_neighbors(p, stop) as f64) < rule.min_neighbors
    }

    /// Like [`Self::is_outlier`] for a reading already pushed into the
    /// window: one occurrence (itself) is discounted.
    pub fn is_outlier_indexed(&self, p: &[f64], rule: &DistanceOutlierConfig) -> bool {
        let stop = rule.min_neighbors.ceil() as usize + 1;
        let n = self.count_neighbors(p, stop).saturating_sub(1);
        (n as f64) < rule.min_neighbors
    }

    /// Grid cells currently occupied (memory diagnostic).
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force::distance_outliers;

    #[test]
    fn matches_brute_force_on_random_data() {
        let rule = DistanceOutlierConfig::new(4.0, 0.03);
        let pts: Vec<Vec<f64>> = (0..400)
            .map(|i| vec![((i * 37) % 173) as f64 / 173.0])
            .collect();
        let mut det = ExactWindowDetector::new(rule.radius, pts.len());
        for p in &pts {
            det.push(p.clone());
        }
        let flags = distance_outliers(&pts, &rule);
        for (p, &expected) in pts.iter().zip(flags.iter()) {
            assert_eq!(det.is_outlier_indexed(p, &rule), expected, "at {p:?}");
        }
    }

    #[test]
    fn window_slides_exactly() {
        let rule = DistanceOutlierConfig::new(1.0, 0.1);
        let mut det = ExactWindowDetector::new(rule.radius, 5);
        for i in 0..10 {
            let evicted = det.push(vec![i as f64]);
            assert_eq!(evicted.is_some(), i >= 5);
        }
        assert_eq!(det.len(), 5);
        // Values 0..=4 are gone.
        assert_eq!(det.count_neighbors(&[0.0], usize::MAX), 0);
        assert_eq!(det.count_neighbors(&[7.0], usize::MAX), 1);
    }

    #[test]
    fn early_exit_matches_full_count_verdicts() {
        let rule = DistanceOutlierConfig::new(10.0, 0.05);
        let mut det = ExactWindowDetector::new(rule.radius, 1_000);
        for i in 0..1_000 {
            det.push(vec![0.5 + 0.00005 * (i % 100) as f64]);
        }
        // The early-exit count saturates at the threshold…
        assert_eq!(det.count_neighbors(&[0.5], 10), 10);
        // …and the verdict agrees with an unbounded count.
        assert!(!det.is_outlier(&[0.5], &rule));
        assert_eq!(det.count_neighbors(&[0.5], usize::MAX), 1_000);
    }

    #[test]
    fn two_dimensional_boxes() {
        let rule = DistanceOutlierConfig::new(2.0, 0.1);
        let mut det = ExactWindowDetector::new(rule.radius, 100);
        det.push(vec![0.5, 0.5]);
        det.push(vec![0.58, 0.58]);
        // Both within L∞ 0.1 of (0.54, 0.54).
        assert_eq!(det.count_neighbors(&[0.54, 0.54], usize::MAX), 2);
        // (0.58, 0.38) is within 0.1 of neither in both coordinates.
        assert_eq!(det.count_neighbors(&[0.58, 0.38], usize::MAX), 0);
        assert!(det.is_outlier(&[0.58, 0.38], &rule));
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn zero_radius_panics() {
        let _ = ExactWindowDetector::new(0.0, 10);
    }

    #[test]
    fn duplicate_values_evict_one_at_a_time() {
        let rule = DistanceOutlierConfig::new(5.0, 0.1);
        let mut det = ExactWindowDetector::new(rule.radius, 3);
        for _ in 0..3 {
            det.push(vec![0.5]);
        }
        det.push(vec![0.9]); // evicts one 0.5, two remain
        assert_eq!(det.count_neighbors(&[0.5], usize::MAX), 2);
        assert_eq!(det.len(), 3);
    }
}
