//! Range-query cost of the kernel estimators — the empirical check of
//! **Theorem 2** (`O(d·|R|)` per query) and of the 1-d fast path
//! (`O(log|R| + |R′|)`, Section 5.3).
//!
//! Expected shape: the generic estimator scales linearly in `|R|` and in
//! `d`; the sorted-centre 1-d estimator is near-flat in `|R|` for narrow
//! queries (only intersecting kernels are touched).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use snod_density::{DensityModel, Kde, Kde1d};

fn sample_1d(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i * 2_654_435_761) % n) as f64 / n as f64)
        .collect()
}

fn sample_nd(n: usize, d: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..d)
                .map(|j| (((i + 31 * j) * 2_654_435_761) % n) as f64 / n as f64)
                .collect()
        })
        .collect()
}

fn bench_range_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_query_vs_sample_size");
    for &r in &[125usize, 250, 500, 1_000, 2_000] {
        let fast = Kde1d::from_sample(&sample_1d(r), 0.29, 10_000.0).unwrap();
        group.bench_with_input(BenchmarkId::new("kde1d_sorted", r), &r, |b, _| {
            b.iter(|| fast.range_prob(black_box(&[0.5]), black_box(0.01)).unwrap())
        });
        let generic = Kde::from_sample(&sample_nd(r, 1), &[0.29], 10_000.0).unwrap();
        group.bench_with_input(BenchmarkId::new("kde_generic", r), &r, |b, _| {
            b.iter(|| {
                generic
                    .range_prob(black_box(&[0.5]), black_box(0.01))
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_dimensionality(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_query_vs_dimensions");
    for &d in &[1usize, 2, 3, 4] {
        let kde = Kde::from_sample(&sample_nd(500, d), &vec![0.2; d], 10_000.0).unwrap();
        let p = vec![0.5; d];
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| kde.range_prob(black_box(&p), black_box(0.05)).unwrap())
        });
    }
    group.finish();
}

/// The MGDD counting pattern: one neighborhood count per MDEF cell, all
/// with the same radius. Batched answers all of them in one sorted
/// sweep; scalar pays a fresh binary search (and, in d > 1, a fresh
/// prune) per query.
fn bench_batched_vs_scalar(c: &mut Criterion) {
    let mut group = c.benchmark_group("batched_vs_scalar");
    let n = 1_000;
    let q = 64usize;
    let r = 0.05;

    let queries_1d: Vec<f64> = (0..q).map(|i| i as f64 / q as f64).collect();
    let fast = Kde1d::from_sample(&sample_1d(n), 0.29, 10_000.0).unwrap();
    group.bench_with_input(BenchmarkId::new("kde1d_scalar", q), &q, |b, _| {
        b.iter(|| {
            queries_1d
                .iter()
                .map(|&p| fast.neighborhood_count(black_box(&[p]), r).unwrap())
                .sum::<f64>()
        })
    });
    group.bench_with_input(BenchmarkId::new("kde1d_batched", q), &q, |b, _| {
        b.iter(|| fast.neighborhood_counts(black_box(&queries_1d), r).unwrap())
    });

    let kde = Kde::from_sample(&sample_nd(n, 2), &[0.2, 0.2], 10_000.0).unwrap();
    let queries_2d: Vec<f64> = (0..q)
        .flat_map(|i| [i as f64 / q as f64, 0.5])
        .collect();
    group.bench_with_input(BenchmarkId::new("kde2d_scalar", q), &q, |b, _| {
        b.iter(|| {
            queries_2d
                .chunks_exact(2)
                .map(|p| kde.neighborhood_count(black_box(p), r).unwrap())
                .sum::<f64>()
        })
    });
    group.bench_with_input(BenchmarkId::new("kde2d_batched", q), &q, |b, _| {
        b.iter(|| kde.neighborhood_counts(black_box(&queries_2d), r).unwrap())
    });
    group.finish();
}

fn bench_model_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_build");
    for &r in &[250usize, 1_000] {
        let xs = sample_1d(r);
        group.bench_with_input(BenchmarkId::new("kde1d_sort", r), &r, |b, _| {
            b.iter(|| Kde1d::from_sample(black_box(&xs), 0.29, 10_000.0).unwrap())
        });
    }
    group.finish();
}


/// Short measurement windows: these benches check complexity *shape*
/// (linear vs flat), not absolute timings.
fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_range_queries,
    bench_dimensionality,
    bench_batched_vs_scalar,
    bench_model_build
}
criterion_main!(benches);
