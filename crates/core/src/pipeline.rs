//! One-call API over the distributed detectors.
//!
//! Downstream users who just want "outliers out of my streams" build an
//! [`OutlierPipeline`], hand it a stream source, and get back a
//! [`PipelineReport`] with the detections grouped by hierarchy level and
//! the full network statistics. The figure-reproduction binaries and the
//! examples are all written against this module.

use std::collections::BTreeMap;
use std::path::PathBuf;

use snod_simnet::{DetectorEngine, FaultPlan, Hierarchy, Network, NodeId, SimConfig, StreamSource};

use crate::centralized::run_centralized_with_faults;
use crate::config::{CoreError, D3Config, MgddConfig};
use crate::d3::{build_d3_network, run_d3_with_faults, Detection};
use crate::fqn::{build_fqn_network, run_fqn_with_faults, FqnConfig};
use crate::mgdd::{build_mgdd_network, run_mgdd_with_faults};
use crate::shift::{build_mmdew_network, run_mmdew_with_faults, MmdewNodeConfig};

/// Which detector the pipeline runs.
#[derive(Debug, Clone)]
pub enum Algorithm {
    /// Distributed distance-based detection (Section 7).
    D3(D3Config),
    /// Multi-granular MDEF detection (Section 8), with the given
    /// broadcast levels (empty = top level only).
    Mgdd(MgddConfig, Vec<u8>),
    /// Streaming Q_n robust-scale detection (median ± k·Q_n).
    Fqn(FqnConfig),
    /// MMD-on-exponential-windows distribution-shift detection.
    Mmdew(MmdewNodeConfig),
    /// The centralized baseline (everything to the root).
    Centralized(snod_outlier::DistanceOutlierConfig, usize),
}

/// A configured, reusable pipeline.
#[derive(Debug, Clone)]
pub struct OutlierPipeline {
    topo: Hierarchy,
    sim: SimConfig,
    algorithm: Algorithm,
    plan: FaultPlan,
}

/// What a pipeline run produced.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Detections grouped by the hierarchy level that flagged them
    /// (for MGDD: the granularity of the global model used).
    pub detections_by_level: BTreeMap<u8, Vec<Detection>>,
    /// Message/byte/energy accounting of the run.
    pub stats: snod_simnet::NetStats,
}

impl PipelineReport {
    /// Total number of detections across levels.
    pub fn total_detections(&self) -> usize {
        self.detections_by_level.values().map(Vec::len).sum()
    }
}

/// Snapshot/resume instructions for [`OutlierPipeline::run_checkpointed`].
///
/// The default plan does nothing; `run_checkpointed` with it is exactly
/// [`OutlierPipeline::run`]. Checkpoint files are written atomically
/// (temp file + rename) with a versioned, checksummed header; resuming
/// one in a pipeline built with the same topology, configs and fault
/// plan is bit-identical to never having stopped.
#[derive(Debug, Clone, Default)]
pub struct CheckpointPlan {
    /// Restore this checkpoint file before processing any event.
    pub resume_from: Option<PathBuf>,
    /// Write a snapshot of the run to this file.
    pub checkpoint_out: Option<PathBuf>,
    /// With `checkpoint_out`: pause once every event at or before this
    /// simulated instant has been processed, snapshot, then continue to
    /// completion. `None` snapshots the fully drained final state.
    pub checkpoint_at_ns: Option<u64>,
}

impl CheckpointPlan {
    /// True when the plan neither restores nor snapshots anything.
    pub fn is_noop(&self) -> bool {
        self.resume_from.is_none() && self.checkpoint_out.is_none()
    }
}

/// Restores (if asked), runs to completion, and snapshots (if asked) —
/// shared by the D3 and MGDD arms of `run_checkpointed`.
fn drive_checkpointed<P, A, S>(
    net: &mut Network<P, A>,
    source: &mut S,
    readings_per_leaf: u64,
    ckpt: &CheckpointPlan,
) -> Result<(), CoreError>
where
    P: snod_simnet::Wire + snod_persist::Persist + Send,
    A: DetectorEngine<P> + snod_persist::Persist + Send,
    S: StreamSource,
{
    if let Some(path) = &ckpt.resume_from {
        net.restore_from_file(path)?;
    }
    match (&ckpt.checkpoint_out, ckpt.checkpoint_at_ns) {
        (Some(out), Some(at)) => {
            net.run_until(source, readings_per_leaf, at);
            net.checkpoint_to_file(out)?;
            net.run_until(source, readings_per_leaf, u64::MAX);
        }
        (Some(out), None) => {
            net.run(source, readings_per_leaf);
            net.checkpoint_to_file(out)?;
        }
        (None, _) => net.run(source, readings_per_leaf),
    }
    Ok(())
}

/// Groups a finished network's detections by level.
fn report_by_level<'a, P, A, I>(net: &'a Network<P, A>, detections: I) -> PipelineReport
where
    P: snod_simnet::Wire,
    A: DetectorEngine<P>,
    I: Fn(&'a A) -> &'a [Detection],
{
    let mut by_level: BTreeMap<u8, Vec<Detection>> = BTreeMap::new();
    for (_, app) in net.apps() {
        for d in detections(app) {
            by_level.entry(d.level).or_default().push(d.clone());
        }
    }
    PipelineReport {
        detections_by_level: by_level,
        stats: net.stats().clone(),
    }
}

impl OutlierPipeline {
    /// Builds a pipeline over an explicit hierarchy.
    pub fn new(topo: Hierarchy, sim: SimConfig, algorithm: Algorithm) -> Self {
        Self {
            topo,
            sim,
            algorithm,
            plan: FaultPlan::none(),
        }
    }

    /// Returns the pipeline with a fault schedule installed: every run
    /// replays the plan's crashes, link faults and loss bursts. With
    /// [`FaultPlan::none()`] (the default) runs are bit-identical to a
    /// pipeline without a plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// The installed fault schedule.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Convenience: a balanced hierarchy of `leaves` sensors under the
    /// given leader fan-outs.
    pub fn balanced(
        leaves: usize,
        fanouts: &[usize],
        sim: SimConfig,
        algorithm: Algorithm,
    ) -> Result<Self, CoreError> {
        let topo = Hierarchy::balanced(leaves, fanouts)
            .map_err(|_| CoreError::Config("invalid hierarchy shape"))?;
        Ok(Self::new(topo, sim, algorithm))
    }

    /// The hierarchy this pipeline runs on.
    pub fn topology(&self) -> &Hierarchy {
        &self.topo
    }

    /// Maps a leaf node id to its stream index (position among leaves).
    pub fn leaf_position(topo: &Hierarchy, node: NodeId) -> Option<usize> {
        topo.leaves().iter().position(|&l| l == node)
    }

    /// Runs the pipeline: each leaf consumes `readings_per_leaf` values
    /// from `source`.
    pub fn run<S: StreamSource>(
        &self,
        source: &mut S,
        readings_per_leaf: u64,
    ) -> Result<PipelineReport, CoreError> {
        let mut by_level: BTreeMap<u8, Vec<Detection>> = BTreeMap::new();
        let stats = match &self.algorithm {
            Algorithm::D3(cfg) => {
                let net = run_d3_with_faults(
                    self.topo.clone(),
                    cfg,
                    self.sim,
                    self.plan.clone(),
                    source,
                    readings_per_leaf,
                )?;
                for (_, app) in net.apps() {
                    for d in &app.detections {
                        by_level.entry(d.level).or_default().push(d.clone());
                    }
                }
                net.stats().clone()
            }
            Algorithm::Mgdd(cfg, levels) => {
                let levels = if levels.is_empty() {
                    vec![self.topo.level_count() as u8]
                } else {
                    levels.clone()
                };
                let net = run_mgdd_with_faults(
                    self.topo.clone(),
                    cfg,
                    self.sim,
                    self.plan.clone(),
                    source,
                    readings_per_leaf,
                    &levels,
                )?;
                for (_, app) in net.apps() {
                    for d in &app.detections {
                        by_level.entry(d.level).or_default().push(d.clone());
                    }
                }
                net.stats().clone()
            }
            Algorithm::Fqn(cfg) => {
                let net = run_fqn_with_faults(
                    self.topo.clone(),
                    cfg,
                    self.sim,
                    self.plan.clone(),
                    source,
                    readings_per_leaf,
                )?;
                for (_, app) in net.apps() {
                    for d in &app.detections {
                        by_level.entry(d.level).or_default().push(d.clone());
                    }
                }
                net.stats().clone()
            }
            Algorithm::Mmdew(cfg) => {
                let net = run_mmdew_with_faults(
                    self.topo.clone(),
                    cfg,
                    self.sim,
                    self.plan.clone(),
                    source,
                    readings_per_leaf,
                )?;
                for (_, app) in net.apps() {
                    for d in &app.detections {
                        by_level.entry(d.level).or_default().push(d.clone());
                    }
                }
                net.stats().clone()
            }
            Algorithm::Centralized(rule, window_per_leaf) => {
                let net = run_centralized_with_faults(
                    self.topo.clone(),
                    *rule,
                    *window_per_leaf,
                    self.sim,
                    self.plan.clone(),
                    source,
                    readings_per_leaf,
                )?;
                for (_, app) in net.apps() {
                    for d in &app.detections {
                        by_level.entry(d.level).or_default().push(d.clone());
                    }
                }
                net.stats().clone()
            }
        };
        Ok(PipelineReport {
            detections_by_level: by_level,
            stats,
        })
    }

    /// [`Self::run`] with checkpoint/resume: optionally restores a
    /// snapshot before the first event, optionally writes one mid-run or
    /// at the end. The D3, MGDD, FQN and MMDEW algorithms persist their
    /// node state; asking for a snapshot of the centralized baseline is
    /// a configuration error.
    ///
    /// Stopping at instant `k`, snapshotting, and resuming the file in a
    /// freshly built identical pipeline replays the remainder of the run
    /// bit-identically — same detections, same stats — which
    /// `tests/checkpoint_resume.rs` pins on golden traces.
    pub fn run_checkpointed<S: StreamSource>(
        &self,
        source: &mut S,
        readings_per_leaf: u64,
        ckpt: &CheckpointPlan,
    ) -> Result<PipelineReport, CoreError> {
        if ckpt.is_noop() {
            return self.run(source, readings_per_leaf);
        }
        match &self.algorithm {
            Algorithm::D3(cfg) => {
                let mut net =
                    build_d3_network(self.topo.clone(), cfg, self.sim, self.plan.clone())?;
                drive_checkpointed(&mut net, source, readings_per_leaf, ckpt)?;
                Ok(report_by_level(&net, |app| app.detections.as_slice()))
            }
            Algorithm::Mgdd(cfg, levels) => {
                let levels = if levels.is_empty() {
                    vec![self.topo.level_count() as u8]
                } else {
                    levels.clone()
                };
                let mut net = build_mgdd_network(
                    self.topo.clone(),
                    cfg,
                    self.sim,
                    self.plan.clone(),
                    &levels,
                )?;
                drive_checkpointed(&mut net, source, readings_per_leaf, ckpt)?;
                Ok(report_by_level(&net, |app| app.detections.as_slice()))
            }
            Algorithm::Fqn(cfg) => {
                let mut net =
                    build_fqn_network(self.topo.clone(), cfg, self.sim, self.plan.clone())?;
                drive_checkpointed(&mut net, source, readings_per_leaf, ckpt)?;
                Ok(report_by_level(&net, |app| app.detections.as_slice()))
            }
            Algorithm::Mmdew(cfg) => {
                let mut net =
                    build_mmdew_network(self.topo.clone(), cfg, self.sim, self.plan.clone())?;
                drive_checkpointed(&mut net, source, readings_per_leaf, ckpt)?;
                Ok(report_by_level(&net, |app| app.detections.as_slice()))
            }
            Algorithm::Centralized(..) => Err(CoreError::Config(
                "checkpoint/resume supports the d3, mgdd, fqn and mmdew algorithms only",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EstimatorConfig;
    use snod_outlier::DistanceOutlierConfig;

    fn d3_algorithm() -> Algorithm {
        Algorithm::D3(D3Config {
            estimator: EstimatorConfig::builder()
                .window(400)
                .sample_size(50)
                .seed(3)
                .build()
                .unwrap(),
            rule: DistanceOutlierConfig::new(8.0, 0.02),
            sample_fraction: 0.5,
        })
    }

    fn source_with_spikes() -> impl FnMut(NodeId, u64) -> Option<Vec<f64>> {
        |node: NodeId, seq: u64| {
            if node.0 == 1 && seq % 120 == 100 {
                Some(vec![0.92])
            } else {
                Some(vec![0.5 + 0.002 * ((seq % 30) as f64)])
            }
        }
    }

    #[test]
    fn d3_pipeline_reports_by_level() {
        let p =
            OutlierPipeline::balanced(4, &[2, 2], SimConfig::default(), d3_algorithm()).unwrap();
        let mut src = source_with_spikes();
        let report = p.run(&mut src, 800).unwrap();
        assert!(report.total_detections() > 0);
        assert!(report.detections_by_level.contains_key(&1));
        assert!(report.stats.messages > 0);
    }

    #[test]
    fn centralized_pipeline_detects_at_root_level_only() {
        let rule = DistanceOutlierConfig::new(8.0, 0.02);
        let p = OutlierPipeline::balanced(
            4,
            &[2, 2],
            SimConfig::default(),
            Algorithm::Centralized(rule, 400),
        )
        .unwrap();
        let mut src = source_with_spikes();
        let report = p.run(&mut src, 800).unwrap();
        let levels: Vec<u8> = report.detections_by_level.keys().copied().collect();
        assert!(levels.iter().all(|&l| l == 3), "levels {levels:?}");
    }

    #[test]
    fn fault_plan_rides_the_pipeline() {
        // A total blackout burst: every frame sent is dropped, so no
        // detection can climb above the leaves.
        let p = OutlierPipeline::balanced(4, &[2, 2], SimConfig::default(), d3_algorithm())
            .unwrap()
            .with_fault_plan(FaultPlan::none().burst(0, u64::MAX, 1.0));
        let mut src = source_with_spikes();
        let report = p.run(&mut src, 800).unwrap();
        assert_eq!(report.stats.dropped, report.stats.messages);
        assert!(report.total_detections() > 0, "leaves went silent too");
        assert!(
            report.detections_by_level.keys().all(|&l| l == 1),
            "a detection crossed a dead network: {:?}",
            report.detections_by_level.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn leaf_position_maps_ids() {
        let p = OutlierPipeline::balanced(4, &[4], SimConfig::default(), d3_algorithm()).unwrap();
        let topo = p.topology();
        for (i, &leaf) in topo.leaves().iter().enumerate() {
            assert_eq!(OutlierPipeline::leaf_position(topo, leaf), Some(i));
        }
        assert_eq!(OutlierPipeline::leaf_position(topo, topo.root()), None);
    }

    #[test]
    fn invalid_hierarchy_is_rejected() {
        assert!(OutlierPipeline::balanced(0, &[4], SimConfig::default(), d3_algorithm()).is_err());
    }
}
