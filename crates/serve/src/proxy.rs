//! A deterministic socket-level fault proxy for exercising the daemon.
//!
//! Sits between a client and the daemon and injects transport faults on
//! the client→server path, decided per *frame* by a seeded RNG (the
//! socket analogue of the engine's `FaultPlan`): mid-frame disconnects,
//! payload corruption, duplicated frames, reordered frames, and
//! split/stalled writes (a mild slow-loris). The server→client path is
//! forwarded untouched so acks and escalations flow.
//!
//! Hello frames are exempt from duplication and reordering: those two
//! faults model *client retransmission* and *datagram-style delivery*,
//! and a real client never retransmits a Hello out of order — while a
//! duplicated Hello would legitimately open a second handle and change
//! the session's meaning rather than test its robustness. Corruption
//! and disconnects still hit Hellos; both kill the connection, which
//! the client recovers from by redialing.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::wire::WIRE_HEADER_LEN;

/// Per-frame fault probabilities, mirroring the engine's `FaultPlan`
/// style: a seed plus independent per-event probabilities.
#[derive(Debug, Clone, Copy)]
pub struct SocketFaultPlan {
    /// RNG seed; the fault sequence is a pure function of
    /// `(seed, connection index, frame index)`.
    pub seed: u64,
    /// Drop the connection mid-frame (half the frame is written first).
    pub p_disconnect: f64,
    /// Flip one payload byte (the frame CRC then fails server-side).
    pub p_corrupt: f64,
    /// Send the frame twice.
    pub p_duplicate: f64,
    /// Hold the frame and emit it after the next one.
    pub p_reorder: f64,
    /// Write the frame in 7-byte dribbles with a stall between each.
    pub p_split: f64,
    /// Stall between split writes.
    pub stall_ms: u64,
}

impl SocketFaultPlan {
    /// Pass-through.
    pub fn none() -> Self {
        Self {
            seed: 0,
            p_disconnect: 0.0,
            p_corrupt: 0.0,
            p_duplicate: 0.0,
            p_reorder: 0.0,
            p_split: 0.0,
            stall_ms: 0,
        }
    }

    /// The gauntlet used by the differential tests.
    pub fn severe(seed: u64) -> Self {
        Self {
            seed,
            p_disconnect: 0.02,
            p_corrupt: 0.02,
            p_duplicate: 0.10,
            p_reorder: 0.10,
            p_split: 0.25,
            stall_ms: 1,
        }
    }
}

/// A running proxy. Dropping it stops the accept loop; in-flight
/// connections die with their sockets.
pub struct FaultProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl FaultProxy {
    /// Starts a proxy on an ephemeral local port, forwarding to
    /// `upstream` with `plan`'s faults.
    pub fn spawn(upstream: SocketAddr, plan: SocketFaultPlan) -> std::io::Result<FaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conn_seq = Arc::new(AtomicU64::new(0));
        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("snod-proxy-accept".into())
                .spawn(move || loop {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    match listener.accept() {
                        Ok((client, _)) => {
                            let c = conn_seq.fetch_add(1, Ordering::Relaxed);
                            let _ = std::thread::Builder::new()
                                .name("snod-proxy-conn".into())
                                .spawn(move || run_proxy_conn(client, upstream, plan, c));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => return,
                    }
                })?
        };
        Ok(FaultProxy {
            addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The address clients should dial.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }
}

fn run_proxy_conn(client: TcpStream, upstream: SocketAddr, plan: SocketFaultPlan, c: u64) {
    let Ok(server) = TcpStream::connect(upstream) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    let _ = client.set_nodelay(true);
    let _ = server.set_nodelay(true);
    // Server→client: verbatim pump.
    {
        let (Ok(mut s), Ok(mut cl)) = (server.try_clone(), client.try_clone()) else {
            return;
        };
        let _ = std::thread::Builder::new()
            .name("snod-proxy-s2c".into())
            .spawn(move || {
                let mut buf = [0u8; 16 * 1024];
                loop {
                    match s.read(&mut buf) {
                        Ok(0) | Err(_) => {
                            let _ = cl.shutdown(Shutdown::Write);
                            return;
                        }
                        Ok(n) => {
                            if cl.write_all(&buf[..n]).is_err() {
                                let _ = s.shutdown(Shutdown::Read);
                                return;
                            }
                        }
                    }
                }
            });
    }
    // Client→server: frame-aware fault pump.
    faulty_c2s(client, server, plan, c);
}

/// Splits the client byte stream into wire frames and forwards each
/// through the fault roll. Runs until either side dies.
fn faulty_c2s(mut client: TcpStream, mut server: TcpStream, plan: SocketFaultPlan, c: u64) {
    let mut rng = StdRng::seed_from_u64(plan.seed ^ (c + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut buf: Vec<u8> = Vec::new();
    let mut held: Option<Vec<u8>> = None;
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match client.read(&mut chunk) {
            Ok(0) | Err(_) => {
                // Client done: flush any held frame, half-close upstream.
                if let Some(frame) = held.take() {
                    let _ = server.write_all(&frame);
                }
                if !buf.is_empty() {
                    let _ = server.write_all(&buf);
                }
                let _ = server.shutdown(Shutdown::Write);
                return;
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
        // Extract complete frames (header + payload) from the buffer.
        while buf.len() >= WIRE_HEADER_LEN {
            let len = u64::from_le_bytes(buf[12..20].try_into().expect("8 bytes")) as usize;
            let total = WIRE_HEADER_LEN.saturating_add(len);
            if buf.len() < total {
                break;
            }
            let frame: Vec<u8> = buf.drain(..total).collect();
            if !forward_frame(&mut server, frame, &mut held, &mut rng, &plan) {
                let _ = client.shutdown(Shutdown::Both);
                return;
            }
        }
    }
}

/// Applies one fault roll to `frame`; false ends the connection.
fn forward_frame(
    server: &mut TcpStream,
    frame: Vec<u8>,
    held: &mut Option<Vec<u8>>,
    rng: &mut StdRng,
    plan: &SocketFaultPlan,
) -> bool {
    let tag = frame.get(WIRE_HEADER_LEN).copied();
    let is_hello = tag == Some(0);
    let roll: f64 = rng.gen();
    let payload_len = frame.len() - WIRE_HEADER_LEN;
    let mut threshold = plan.p_disconnect;
    if roll < threshold {
        // Mid-frame disconnect: write half, then kill the socket.
        let _ = server.write_all(&frame[..frame.len() / 2]);
        let _ = server.shutdown(Shutdown::Both);
        return false;
    }
    threshold += plan.p_corrupt;
    if roll < threshold && payload_len > 0 {
        let mut bad = frame;
        let idx = WIRE_HEADER_LEN + (rng.gen::<u64>() as usize % payload_len);
        bad[idx] ^= 0x41;
        return server.write_all(&bad).is_ok();
    }
    threshold += plan.p_duplicate;
    if roll < threshold && !is_hello {
        return server.write_all(&frame).is_ok() && server.write_all(&frame).is_ok();
    }
    threshold += plan.p_reorder;
    if roll < threshold && !is_hello {
        // Hold this frame; it goes out after the next one.
        if let Some(prev) = held.replace(frame) {
            return server.write_all(&prev).is_ok();
        }
        return true;
    }
    threshold += plan.p_split;
    let ok = if roll < threshold {
        let mut ok = true;
        for piece in frame.chunks(7) {
            if server.write_all(piece).is_err() {
                ok = false;
                break;
            }
            let _ = server.flush();
            if plan.stall_ms > 0 {
                std::thread::sleep(Duration::from_millis(plan.stall_ms));
            }
        }
        ok
    } else {
        server.write_all(&frame).is_ok()
    };
    if !ok {
        return false;
    }
    if let Some(prev) = held.take() {
        return server.write_all(&prev).is_ok();
    }
    true
}
