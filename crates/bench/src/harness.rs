//! Experiment harness: exact ground truth and precision/recall scoring.
//!
//! The paper scores its algorithms against offline baselines —
//! `BruteForce-D` for distance outliers and `BruteForce-M` (aLOCI over
//! the window) for MDEF outliers — *"for each instance of the sliding
//! window"*. Re-running an `O(|W|²)` scan per reading is hopeless at
//! 300k+ readings, so this harness maintains the baselines
//! *incrementally*:
//!
//! * every hierarchy node keeps a grid-indexed exact union window of its
//!   descendant leaves' readings ([`TruthIndex`]);
//! * a distance-truth query counts L∞ neighbors with early exit at the
//!   threshold (`O(t)` amortised);
//! * an MDEF-truth query reads the maintained `2αr`-cell counts — which
//!   is *exactly* the `BruteForce-M`/aLOCI computation.
//!
//! [`RecordingSource`] wraps the per-sensor streams: each reading is
//! ingested into the truth indexes at the moment the simulator consumes
//! it, so predicted and true outliers refer to identical window states.

use std::collections::{HashMap, VecDeque};

use snod_core::pipeline::OutlierPipeline;
use snod_core::Detection;
use snod_data::SensorStreams;
use snod_outlier::{DistanceOutlierConfig, MdefConfig, PrecisionRecall};
use snod_simnet::{Hierarchy, NodeId, StreamSource};

/// Bit-exact hash key for a reading (continuous values never collide in
/// practice; the generators never emit NaN).
pub fn value_key(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Grid-indexed exact sliding window over the union of a subtree's
/// streams.
pub struct TruthIndex {
    dist_radius: f64,
    mdef_cell: f64,
    /// Points per distance cell (cell width = `dist_radius`), keyed by id
    /// for O(1) removal.
    dist_cells: HashMap<Vec<i64>, HashMap<u64, Vec<f64>>>,
    /// Counts per MDEF cell (cell width = `2αr`).
    mdef_cells: HashMap<Vec<i64>, f64>,
    len: usize,
}

impl TruthIndex {
    /// An index for the given outlier rules.
    pub fn new(dist: &DistanceOutlierConfig, mdef: &MdefConfig) -> Self {
        Self {
            dist_radius: dist.radius,
            mdef_cell: 2.0 * mdef.counting_radius,
            dist_cells: HashMap::new(),
            mdef_cells: HashMap::new(),
            len: 0,
        }
    }

    fn dist_key(&self, p: &[f64]) -> Vec<i64> {
        p.iter()
            .map(|&c| (c / self.dist_radius).floor() as i64)
            .collect()
    }

    fn mdef_key(&self, p: &[f64]) -> Vec<i64> {
        p.iter()
            .map(|&c| (c / self.mdef_cell).floor() as i64)
            .collect()
    }

    /// Inserts a reading with a unique id.
    pub fn insert(&mut self, id: u64, p: &[f64]) {
        self.dist_cells
            .entry(self.dist_key(p))
            .or_default()
            .insert(id, p.to_vec());
        *self.mdef_cells.entry(self.mdef_key(p)).or_default() += 1.0;
        self.len += 1;
    }

    /// Removes a previously inserted reading.
    pub fn remove(&mut self, id: u64, p: &[f64]) {
        let dk = self.dist_key(p);
        if let Some(cell) = self.dist_cells.get_mut(&dk) {
            cell.remove(&id);
            if cell.is_empty() {
                self.dist_cells.remove(&dk);
            }
        }
        let mk = self.mdef_key(p);
        if let Some(c) = self.mdef_cells.get_mut(&mk) {
            *c -= 1.0;
            if *c <= 0.0 {
                self.mdef_cells.remove(&mk);
            }
        }
        self.len -= 1;
    }

    /// Readings currently indexed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Exact `BruteForce-D` verdict: fewer than `rule.min_neighbors`
    /// *other* window points within L∞ `rule.radius` of `p`. The query
    /// point is assumed to be indexed (it is ingested before evaluation)
    /// and one bit-identical occurrence is discounted.
    pub fn is_distance_outlier(&self, p: &[f64], rule: &DistanceOutlierConfig) -> bool {
        let t = rule.min_neighbors + 1.0; // discount p itself below
        let d = p.len();
        let base = self.dist_key(p);
        let mut count = 0.0;
        let total = 3usize.pow(d as u32);
        let mut probe = vec![0i64; d];
        for flat in 0..total {
            let mut rem = flat;
            for j in 0..d {
                probe[j] = base[j] + (rem % 3) as i64 - 1;
                rem /= 3;
            }
            if let Some(cell) = self.dist_cells.get(&probe) {
                for q in cell.values() {
                    let within = p
                        .iter()
                        .zip(q.iter())
                        .all(|(a, b)| (a - b).abs() <= rule.radius);
                    if within {
                        count += 1.0;
                        if count >= t {
                            return false;
                        }
                    }
                }
            }
        }
        count - 1.0 < rule.min_neighbors
    }

    /// Exact `BruteForce-M` (aLOCI) verdict from the maintained cell
    /// counts, with `p` (assumed indexed) excluded from its own cell.
    pub fn is_mdef_outlier(&self, p: &[f64], rule: &MdefConfig) -> bool {
        let (_, avg, sigma_mdef, mdef) = self.mdef_debug(p, rule);
        if avg == 0.0 {
            return true;
        }
        rule.flags(mdef, sigma_mdef)
    }

    /// The raw MDEF statistics `(own, n̂, σ_MDEF, MDEF)` behind
    /// [`Self::is_mdef_outlier`] — exposed for calibration diagnostics.
    /// `n̂ = 0` encodes an empty sampling neighborhood (always flagged).
    pub fn mdef_debug(&self, p: &[f64], rule: &MdefConfig) -> (f64, f64, f64, f64) {
        let d = p.len();
        let own_key = self.mdef_key(p);
        let own = (self.mdef_cells.get(&own_key).copied().unwrap_or(1.0) - 1.0).max(0.0);
        let mut lo = Vec::with_capacity(d);
        let mut len = Vec::with_capacity(d);
        for &c in p.iter().take(d) {
            let a = ((c - rule.sampling_radius) / self.mdef_cell).floor() as i64;
            let b = ((c + rule.sampling_radius) / self.mdef_cell).floor() as i64;
            lo.push(a);
            len.push((b - a + 1) as usize);
        }
        let total: usize = len.iter().product();
        let mut w_sum = 0.0;
        let mut w_mean = 0.0;
        let mut w_sq = 0.0;
        let mut nonempty = 0usize;
        let mut probe = vec![0i64; d];
        for flat in 0..total {
            let mut rem = flat;
            for j in (0..d).rev() {
                probe[j] = lo[j] + (rem % len[j]) as i64;
                rem /= len[j];
            }
            if let Some(&c) = self.mdef_cells.get(&probe) {
                // Exclude p from its own cell in the neighborhood stats.
                let c = if probe == own_key {
                    (c - 1.0).max(0.0)
                } else {
                    c
                };
                if c > 0.0 {
                    w_sum += c;
                    w_mean += c * c;
                    w_sq += c * c * c;
                    nonempty += 1;
                }
            }
        }
        if w_sum <= 0.0 {
            return (own, 0.0, 0.0, 1.0);
        }
        let avg = w_mean / w_sum;
        let var = (w_sq / w_sum - avg * avg).max(0.0);
        let mdef = 1.0 - own / avg;
        let sigma = rule.effective_sigma(var.sqrt(), nonempty) / avg;
        (own, avg, sigma, mdef)
    }
}

/// One consumed reading with its per-level ground-truth verdicts.
#[derive(Debug, Clone)]
pub struct ReadingRecord {
    /// Leaf position (stream index).
    pub leaf: usize,
    /// 0-based reading index within that leaf's stream.
    pub seq: u64,
    /// The reading itself.
    pub value: Vec<f64>,
    /// `BruteForce-D` verdict per level (index 0 = level 1).
    pub dist_truth: Vec<bool>,
    /// `BruteForce-M` verdict per level.
    pub mdef_truth: Vec<bool>,
}

/// Maintains per-leaf exact windows plus one [`TruthIndex`] per hierarchy
/// node, and evaluates both baselines for every reading.
pub struct TruthTracker {
    window: usize,
    dist_rule: DistanceOutlierConfig,
    mdef_rule: MdefConfig,
    /// Per-leaf ring window of (id, value).
    leaf_windows: Vec<VecDeque<(u64, Vec<f64>)>>,
    /// One index per hierarchy node.
    indexes: Vec<TruthIndex>,
    /// Path from each leaf (by position) to the root, as node indices.
    ancestor_paths: Vec<Vec<usize>>,
    levels: usize,
    next_id: u64,
}

impl TruthTracker {
    /// Builds a tracker mirroring `topo` with per-leaf windows of
    /// `window` readings.
    pub fn new(
        topo: &Hierarchy,
        window: usize,
        dist_rule: DistanceOutlierConfig,
        mdef_rule: MdefConfig,
    ) -> Self {
        let indexes = (0..topo.node_count())
            .map(|_| TruthIndex::new(&dist_rule, &mdef_rule))
            .collect();
        let ancestor_paths = topo
            .leaves()
            .iter()
            .map(|&leaf| {
                let mut path = vec![leaf.index()];
                let mut n = leaf;
                while let Some(p) = topo.parent(n) {
                    path.push(p.index());
                    n = p;
                }
                path
            })
            .collect();
        Self {
            window,
            dist_rule,
            mdef_rule,
            leaf_windows: vec![VecDeque::new(); topo.leaves().len()],
            indexes,
            ancestor_paths,
            levels: topo.level_count(),
            next_id: 0,
        }
    }

    /// Ingests a reading of leaf `leaf` and returns the per-level truth
    /// verdicts, evaluated on the window state *including* the reading.
    pub fn ingest(&mut self, leaf: usize, value: &[f64]) -> (Vec<bool>, Vec<bool>) {
        let id = self.next_id;
        self.next_id += 1;
        // Slide the leaf's window.
        let win = &mut self.leaf_windows[leaf];
        if win.len() == self.window {
            let (old_id, old_val) = win.pop_front().expect("window full");
            for &node in &self.ancestor_paths[leaf] {
                self.indexes[node].remove(old_id, &old_val);
            }
        }
        win.push_back((id, value.to_vec()));
        for &node in &self.ancestor_paths[leaf] {
            self.indexes[node].insert(id, value);
        }
        // Evaluate truth at every level of the leaf's ancestor path. The
        // distance threshold scales with the union-window size (a
        // (t·|W_union|/|W|, r) rule), keeping the *density* bar constant
        // across levels — the same semantics the distributed detectors
        // apply over their sub-sampled arrival windows.
        let mut dist = vec![false; self.levels];
        let mut mdef = vec![false; self.levels];
        for (level0, &node) in self.ancestor_paths[leaf].iter().enumerate() {
            let scale = self.indexes[node].len() as f64 / self.window as f64;
            let scaled = DistanceOutlierConfig {
                radius: self.dist_rule.radius,
                min_neighbors: self.dist_rule.min_neighbors * scale.max(f64::EPSILON),
            };
            dist[level0] = self.indexes[node].is_distance_outlier(value, &scaled);
            mdef[level0] = self.indexes[node].is_mdef_outlier(value, &self.mdef_rule);
        }
        (dist, mdef)
    }

    /// The truth index of hierarchy node `node` (for inspection).
    #[allow(clippy::should_implement_trait)]
    pub fn index(&self, node: NodeId) -> &TruthIndex {
        &self.indexes[node.index()]
    }
}

/// A [`StreamSource`] that feeds the simulator from a [`SensorStreams`]
/// bank while maintaining ground truth and recording the readings
/// consumed after `warmup` readings per leaf.
pub struct RecordingSource<'a> {
    streams: &'a mut SensorStreams,
    tracker: TruthTracker,
    topo: Hierarchy,
    warmup: u64,
    /// Records for readings past the warm-up.
    pub records: Vec<ReadingRecord>,
}

impl<'a> RecordingSource<'a> {
    /// Wraps `streams` for a run over `topo`.
    pub fn new(
        streams: &'a mut SensorStreams,
        topo: &Hierarchy,
        window: usize,
        dist_rule: DistanceOutlierConfig,
        mdef_rule: MdefConfig,
        warmup: u64,
    ) -> Self {
        Self {
            streams,
            tracker: TruthTracker::new(topo, window, dist_rule, mdef_rule),
            topo: topo.clone(),
            warmup,
            records: Vec::new(),
        }
    }

    /// The underlying truth tracker.
    pub fn tracker(&self) -> &TruthTracker {
        &self.tracker
    }
}

impl StreamSource for RecordingSource<'_> {
    fn next(&mut self, node: NodeId, seq: u64) -> Option<Vec<f64>> {
        let leaf = OutlierPipeline::leaf_position(&self.topo, node)?;
        let value = self.streams.next_for(leaf);
        let (dist, mdef) = self.tracker.ingest(leaf, &value);
        if seq >= self.warmup {
            self.records.push(ReadingRecord {
                leaf,
                seq,
                value: value.clone(),
                dist_truth: dist,
                mdef_truth: mdef,
            });
        }
        Some(value)
    }
}

/// Scores detections at one level against the recorded truth.
///
/// `truth_of` selects which truth vector applies (distance vs MDEF);
/// `level` is 1-based. A record counts as predicted iff any detection at
/// that level carries the bit-identical value.
pub fn score_level(
    records: &[ReadingRecord],
    detections: &[Detection],
    level: u8,
    truth_of: impl Fn(&ReadingRecord) -> bool,
) -> PrecisionRecall {
    let predicted: std::collections::HashSet<Vec<u64>> = detections
        .iter()
        .filter(|d| d.level == level)
        .map(|d| value_key(&d.value))
        .collect();
    let mut pr = PrecisionRecall::new();
    for r in records {
        let was_predicted = predicted.contains(&value_key(&r.value));
        pr.record(was_predicted, truth_of(r));
    }
    pr
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules() -> (DistanceOutlierConfig, MdefConfig) {
        (
            DistanceOutlierConfig::new(5.0, 0.02),
            MdefConfig::new(0.08, 0.01, 3.0).unwrap(),
        )
    }

    #[test]
    fn truth_index_matches_brute_force_distance() {
        let (dist, mdef) = rules();
        let mut idx = TruthIndex::new(&dist, &mdef);
        let pts: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![((i * 37) % 100) as f64 / 100.0])
            .collect();
        for (i, p) in pts.iter().enumerate() {
            idx.insert(i as u64, p);
        }
        let flags = snod_outlier::brute_force::distance_outliers(&pts, &dist);
        for (p, &expected) in pts.iter().zip(flags.iter()) {
            assert_eq!(idx.is_distance_outlier(p, &dist), expected, "at {p:?}");
        }
    }

    #[test]
    fn truth_index_matches_brute_force_mdef() {
        let (dist, mdef) = rules();
        let mut idx = TruthIndex::new(&dist, &mdef);
        // Uniform block + skirt, as in the outlier-crate tests.
        let mut pts: Vec<Vec<f64>> = (0..500)
            .map(|i| vec![0.40 + 0.10 * (i as f64 + 0.5) / 500.0])
            .collect();
        pts.push(vec![0.55]);
        for (i, p) in pts.iter().enumerate() {
            idx.insert(i as u64, p);
        }
        let flags = snod_outlier::brute_force::mdef_outliers_aloci(&pts, &mdef);
        for (p, &expected) in pts.iter().zip(flags.iter()) {
            assert_eq!(idx.is_mdef_outlier(p, &mdef), expected, "at {p:?}");
        }
    }

    #[test]
    fn removal_restores_previous_verdicts() {
        let (dist, mdef) = rules();
        let mut idx = TruthIndex::new(&dist, &mdef);
        for i in 0..50u64 {
            idx.insert(i, &[0.5]);
        }
        assert!(!idx.is_distance_outlier(&[0.5], &dist));
        for i in 0..50u64 {
            idx.remove(i, &[0.5]);
        }
        assert!(idx.is_empty());
        assert!(idx.is_distance_outlier(&[0.5], &dist));
    }

    #[test]
    fn tracker_slides_leaf_windows() {
        let topo = Hierarchy::balanced(2, &[2]).unwrap();
        let (dist, mdef) = rules();
        let mut tracker = TruthTracker::new(&topo, 10, dist, mdef);
        for i in 0..25 {
            tracker.ingest(0, &[i as f64 / 100.0]);
        }
        // Leaf window capped at 10, so the union index holds 10 readings.
        assert_eq!(tracker.index(topo.root()).len(), 10);
        // Leaf 1 never read anything.
        tracker.ingest(1, &[0.5]);
        assert_eq!(tracker.index(topo.root()).len(), 11);
    }

    #[test]
    fn tracker_levels_reflect_union_windows() {
        // A value common at leaf 0 but absent elsewhere: not an outlier
        // at level 1, outlier at the root level once siblings dilute it…
        // here we check the simpler direction: a value dense EVERYWHERE
        // is an outlier nowhere.
        let topo = Hierarchy::balanced(4, &[2, 2]).unwrap();
        let (dist, mdef) = rules();
        let mut tracker = TruthTracker::new(&topo, 50, dist, mdef);
        for round in 0..50 {
            for leaf in 0..4 {
                let (d, _) = tracker.ingest(leaf, &[0.5 + 0.001 * (round % 5) as f64]);
                if round > 10 {
                    assert!(d.iter().all(|&f| !f), "dense value flagged: {d:?}");
                }
            }
        }
    }

    #[test]
    fn score_level_counts_hits_and_misses() {
        let records = vec![
            ReadingRecord {
                leaf: 0,
                seq: 0,
                value: vec![0.9],
                dist_truth: vec![true],
                mdef_truth: vec![false],
            },
            ReadingRecord {
                leaf: 0,
                seq: 1,
                value: vec![0.5],
                dist_truth: vec![false],
                mdef_truth: vec![false],
            },
        ];
        let detections = vec![Detection {
            time_ns: 0,
            value: vec![0.9],
            level: 1,
        }];
        let pr = score_level(&records, &detections, 1, |r| r.dist_truth[0]);
        assert_eq!(pr.true_positives, 1);
        assert_eq!(pr.false_positives, 0);
        assert_eq!(pr.false_negatives, 0);
    }
}
