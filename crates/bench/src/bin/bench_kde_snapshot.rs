//! Timing snapshot for the batched KDE query engine and the epoch-based
//! incremental model maintenance, written to `BENCH_kde.json` in the
//! working directory.
//!
//! Methodology: every measurement is the best wall-clock time over
//! several runs (best-of is robust to scheduler noise); a speedup is
//! `baseline / optimised`. Absolute timings vary by host — the snapshot
//! documents the *ratios* discussed in DESIGN.md §Performance
//! architecture:
//!
//! * `batched` — the MGDD counting pattern (one uniform-radius
//!   neighborhood count per MDEF cell) answered by one sorted sweep
//!   ([`DensityModel::neighborhood_counts`]) vs one scalar query per
//!   cell.
//! * `incremental` — the MGDD leaf replica pattern (push one relayed
//!   value, reassess against the model) under the epoch
//!   [`RebuildPolicy`] vs `RebuildPolicy::always()`, which reproduces
//!   the old rebuild-on-every-push behaviour.

//! * `soa_simd` — the rebuilt structure-of-arrays evaluation engine
//!   (branch-free clamped CDF, reciprocal bandwidths, chunked
//!   accumulation, AVX2 under `--features simd`) vs the previous
//!   row-major scalar evaluator, re-implemented verbatim below as the
//!   baseline.
//! * `compression` — query cost and centre count before/after online
//!   model compression at a fixed budget.
//!
//! Set `SNOD_BENCH_SMOKE=1` to shrink every workload (~20x) for CI smoke
//! runs; the emitted ratios are then indicative only.

use std::hint::black_box;
use std::time::Instant;

use snod_core::{IncrementalReplica, RebuildPolicy};
use snod_density::{scott_bandwidth, DensityModel, EpanechnikovKernel, Kde, Kde1d, Kernel1d};

const RUNS: usize = 5;

fn smoke() -> bool {
    std::env::var_os("SNOD_BENCH_SMOKE").is_some_and(|v| v != "0" && !v.is_empty())
}

/// `full` normally, `small` under `SNOD_BENCH_SMOKE=1`.
fn sized(full: usize, small: usize) -> usize {
    if smoke() {
        small
    } else {
        full
    }
}

fn best_secs<F: FnMut()>(mut f: F) -> f64 {
    // One untimed warm-up run populates caches and allocator pools.
    f();
    let mut best = f64::INFINITY;
    for _ in 0..RUNS {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn sample_1d(n: usize) -> Vec<f64> {
    (0..n as u64)
        .map(|i| ((i * 2_654_435_761) % n as u64) as f64 / n as f64)
        .collect()
}

/// Batched vs scalar: `q` uniform-radius counts against a 1-d model.
fn kde1d_pair(n: usize, q: usize, reps: usize) -> (f64, f64) {
    // σ and radius mirror the MDEF defaults: counting queries use the
    // narrow cell radius αr = 0.01, where per-query search overhead is
    // visible next to the kernel arithmetic.
    let kde = Kde1d::from_sample(&sample_1d(n), 0.1, 10_000.0).unwrap();
    let queries: Vec<f64> = (0..q).map(|i| i as f64 / q as f64).collect();
    let r = 0.01;
    let scalar = best_secs(|| {
        for _ in 0..reps {
            for &p in &queries {
                black_box(kde.neighborhood_count(black_box(&[p]), r).unwrap());
            }
        }
    });
    let batched = best_secs(|| {
        for _ in 0..reps {
            black_box(kde.neighborhood_counts(black_box(&queries), r).unwrap());
        }
    });
    (scalar, batched)
}

/// Batched vs scalar in 2-d (frontier prunes on dimension 0).
fn kde2d_pair(n: usize, q: usize, reps: usize) -> (f64, f64) {
    let rows: Vec<Vec<f64>> = (0..n as u64)
        .map(|i| {
            vec![
                ((i * 2_654_435_761) % n as u64) as f64 / n as f64,
                ((i * 40_503 + 7) % n as u64) as f64 / n as f64,
            ]
        })
        .collect();
    let kde = Kde::from_sample(&rows, &[0.1, 0.1], 10_000.0).unwrap();
    let flat: Vec<f64> = (0..q).flat_map(|i| [i as f64 / q as f64, 0.5]).collect();
    let r = 0.01;
    let scalar = best_secs(|| {
        for _ in 0..reps {
            for p in flat.chunks_exact(2) {
                black_box(kde.neighborhood_count(black_box(p), r).unwrap());
            }
        }
    });
    let batched = best_secs(|| {
        for _ in 0..reps {
            black_box(kde.neighborhood_counts(black_box(&flat), r).unwrap());
        }
    });
    (scalar, batched)
}

/// The MGDD leaf hot path: every relayed push updates the replica and
/// reassesses one point against its model.
fn replica_run(policy: RebuildPolicy, pushes: usize) -> f64 {
    best_secs(|| {
        let mut replica = IncrementalReplica::new(100, policy);
        for i in 0..pushes as u64 {
            let v = ((i * 37) % 1_009) as f64 / 1_009.0;
            replica.push(vec![v], vec![0.1], 1_000.0);
            if replica.sample_len() >= 10 {
                let m = replica.model().unwrap();
                black_box(m.neighborhood_count(&[0.5], 0.05).unwrap());
            }
        }
    })
}

/// `partition_point` over the first coordinate of `n` row-major rows.
fn partition_point_strided(rows: &[f64], dims: usize, n: usize, pred: impl Fn(f64) -> bool) -> usize {
    let (mut lo, mut hi) = (0usize, n);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(rows[mid * dims]) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// The pre-rewrite scoring hot path, kept here as the `soa_simd`
/// baseline: row-major centre storage, dim-0 `partition_point` pruning,
/// branchy piecewise CDF, one division per coordinate.
struct RowMajorBaseline {
    rows: Vec<f64>,
    dims: usize,
    bandwidths: Vec<f64>,
    window_len: f64,
}

impl RowMajorBaseline {
    /// Mirrors a [`Kde`]: same centres in the same dim-0 sorted order.
    fn of(kde: &Kde) -> Self {
        Self {
            rows: kde.centers(),
            dims: kde.dims(),
            bandwidths: kde.bandwidths().to_vec(),
            window_len: kde.window_len(),
        }
    }

    fn neighborhood_count(&self, q: &[f64], r: f64) -> f64 {
        let k = EpanechnikovKernel;
        let d = self.dims;
        let n = self.rows.len() / d;
        // The old trait default allocated the query box per call.
        let lo: Vec<f64> = q.iter().map(|&c| c - r).collect();
        let hi: Vec<f64> = q.iter().map(|&c| c + r).collect();
        let (lo, hi) = (black_box(lo), black_box(hi));
        // Prune on the sorted first coordinate, as the old engine did
        // (strided binary search over the row-major storage).
        let span = self.bandwidths[0] * k.support();
        let s = partition_point_strided(&self.rows, d, n, |c| c < lo[0] - span);
        let e = partition_point_strided(&self.rows, d, n, |c| c <= hi[0] + span);
        // `box_prob` counted every scalar query and its touched kernels.
        snod_obs::counter!("density.scalar.queries").incr();
        snod_obs::counter!("density.scalar.kernels").add((e - s) as u64);
        let mut sum = 0.0;
        'points: for i in s..e {
            let row = &self.rows[i * d..(i + 1) * d];
            let mut prod = 1.0;
            for j in 0..d {
                let a = (lo[j] - row[j]) / self.bandwidths[j];
                let b = (hi[j] - row[j]) / self.bandwidths[j];
                let mass = k.mass(a, b);
                if mass == 0.0 {
                    continue 'points;
                }
                prod *= mass;
            }
            sum += prod;
        }
        sum / n as f64 * self.window_len
    }
}

/// The pre-rewrite 1-d hot path (sorted centres, `partition_point`
/// pruning, per-centre branchy CDF with two divisions) — the workload
/// the ISSUE names: ~1.6M kernel evaluations per 12.8k MDEF counting
/// queries.
fn old_kde1d_count(centers: &[f64], bandwidth: f64, window_len: f64, q: f64, r: f64) -> f64 {
    let k = EpanechnikovKernel;
    // The old trait default allocated the query box per call
    // (`range_prob` built `lo`/`hi` Vecs) before reaching `box_prob`.
    let lo: Vec<f64> = vec![q - r];
    let hi: Vec<f64> = vec![q + r];
    let (a, b) = (black_box(&lo)[0], black_box(&hi)[0]);
    let span = bandwidth * k.support();
    let s = centers.partition_point(|&c| c < a - span);
    let e = centers.partition_point(|&c| c <= b + span);
    // `box_prob` counted every scalar query and its touched kernels.
    snod_obs::counter!("density.scalar.queries").incr();
    snod_obs::counter!("density.scalar.kernels").add((e - s) as u64);
    let sum: f64 = centers[s..e]
        .iter()
        .map(|&c| k.mass((a - c) / bandwidth, (b - c) / bandwidth))
        .sum();
    sum / centers.len() as f64 * window_len
}

/// 1-d scoring hot path: old scalar row evaluator vs the SoA engine at
/// the MDEF cell radius (`αr = 0.01`) and the paper's §7 sample size
/// (`|R| = 2,000`) — the regime BENCH_kde.json's phase attribution
/// showed to be kernel-math-bound.
fn soa1d_pair(n: usize, q: usize, reps: usize) -> (f64, f64, f64) {
    let kde = Kde1d::from_sample(&sample_1d(n), 0.1, 10_000.0).unwrap();
    let centers = kde.centers().to_vec();
    let (bw, wl) = (kde.bandwidth(), kde.window_len());
    let queries: Vec<f64> = (0..q).map(|i| i as f64 / q as f64).collect();
    let r = 0.01;
    let mut max_rel = 0.0f64;
    for &p in &queries {
        let a = old_kde1d_count(&centers, bw, wl, p, r);
        let b = kde.neighborhood_count(&[p], r).unwrap();
        max_rel = max_rel.max((a - b).abs() / a.abs().max(1.0));
    }
    assert!(max_rel < 1e-9, "1-d baseline drifted from engine: {max_rel}");
    let old = best_secs(|| {
        for _ in 0..reps {
            for &p in &queries {
                black_box(old_kde1d_count(
                    black_box(&centers),
                    bw,
                    wl,
                    black_box(p),
                    r,
                ));
            }
        }
    });
    // The optimised side is the hot path as the detectors drive it: one
    // batched call over the query set, engine picking sweep vs search.
    let new = best_secs(|| {
        for _ in 0..reps {
            black_box(kde.neighborhood_counts(black_box(&queries), r).unwrap());
        }
    });
    (old, new, max_rel)
}

/// The tentpole measurement: old row-major scalar evaluator vs the SoA
/// engine on a kernel-arithmetic-bound workload (wide radius, so nearly
/// every centre intersects every query and layout/vectorisation — not
/// search overhead — dominates).
fn soa_pair(n: usize, d: usize, q: usize, reps: usize) -> (f64, f64, f64) {
    let rows: Vec<Vec<f64>> = (0..n as u64)
        .map(|i| {
            (0..d as u64)
                .map(|j| ((i * 2_654_435_761 + j * 40_503 + 7) % n as u64) as f64 / n as f64)
                .collect()
        })
        .collect();
    let sigmas = vec![0.1; d];
    let kde = Kde::from_sample(&rows, &sigmas, 10_000.0).unwrap();
    let baseline = RowMajorBaseline::of(&kde);
    let queries: Vec<Vec<f64>> = (0..q)
        .map(|i| vec![0.2 + 0.6 * i as f64 / q as f64; d])
        .collect();
    let r = 0.3;
    // Agreement guard: the two evaluators must compute the same counts,
    // or the speedup below is meaningless.
    let mut max_rel = 0.0f64;
    for p in &queries {
        let a = baseline.neighborhood_count(p, r);
        let b = kde.neighborhood_count(p, r).unwrap();
        max_rel = max_rel.max((a - b).abs() / a.abs().max(1.0));
    }
    assert!(max_rel < 1e-9, "baseline drifted from engine: {max_rel}");
    let old = best_secs(|| {
        for _ in 0..reps {
            for p in &queries {
                black_box(baseline.neighborhood_count(black_box(p), r));
            }
        }
    });
    // One batched call over the query set, as the detectors issue it.
    let flat: Vec<f64> = queries.iter().flat_map(|p| p.iter().copied()).collect();
    let new = best_secs(|| {
        for _ in 0..reps {
            black_box(kde.neighborhood_counts(black_box(&flat), r).unwrap());
        }
    });
    (old, new, max_rel)
}

/// Online compression at a fixed budget: centre count and query cost
/// before vs after, on a clustered stream (the regime compression is
/// for — near-duplicate sensor readings).
fn compression_pair(n: usize, budget: usize, q: usize, reps: usize) -> (usize, usize, f64, f64) {
    let clusters = 32.max(budget / 4);
    let sample: Vec<f64> = (0..n as u64)
        .map(|i| {
            let c = (i % clusters as u64) as f64 / clusters as f64;
            c + ((i * 2_654_435_761) % 1_000) as f64 * 1e-7
        })
        .collect();
    let full = Kde1d::from_sample(&sample, 0.1, 10_000.0).unwrap();
    let mut packed = full.clone();
    let stats = packed.compress_to_budget(budget, 0.01);
    let queries: Vec<f64> = (0..q).map(|i| i as f64 / q as f64).collect();
    let r = 0.2;
    let full_secs = best_secs(|| {
        for _ in 0..reps {
            black_box(full.neighborhood_counts(black_box(&queries), r).unwrap());
        }
    });
    let packed_secs = best_secs(|| {
        for _ in 0..reps {
            black_box(packed.neighborhood_counts(black_box(&queries), r).unwrap());
        }
    });
    (stats.before, stats.after, full_secs, packed_secs)
}

fn main() {
    let reps = sized(200, 10);
    let (s1, b1) = kde1d_pair(sized(1_000, 200), 64, reps);
    let (s2, b2) = kde2d_pair(sized(1_000, 200), 64, reps);
    let (old1, new1, drift1) = soa1d_pair(sized(2_000, 200), 64, reps);
    // Same model, one epoch's worth of arrivals scored per batch: the
    // O(|R|) sweep frontier amortises across the batch, isolating the
    // kernel-evaluation speedup itself.
    let (old1e, new1e, drift1e) = soa1d_pair(sized(2_000, 200), 256, reps);
    let (old3, new3, drift) = soa_pair(sized(2_000, 200), 3, 32, sized(20, 2));
    let (c_before, c_after, c_full, c_packed) =
        compression_pair(sized(4_000, 400), sized(200, 50), 64, sized(50, 5));
    let rebuild = replica_run(RebuildPolicy::always(), sized(20_000, 2_000));
    let epoch = replica_run(RebuildPolicy::default(), sized(20_000, 2_000));
    let hot_path = rebuild / epoch;

    let backend = if cfg!(all(
        feature = "simd",
        target_arch = "x86_64",
        target_feature = "avx2"
    )) {
        "avx2"
    } else {
        "portable"
    };
    let json = format!(
        "{{\n  \"methodology\": \"best of {RUNS} runs; speedup = baseline_secs / optimised_secs\",\n  \
         \"smoke\": {smoke},\n  \
         \"batched_query_engine\": {{\n    \
         \"kde1d_q64_r1000\": {{\"scalar_secs\": {s1:.6}, \"batched_secs\": {b1:.6}, \"speedup\": {r1:.2}}},\n    \
         \"kde2d_q64_r1000\": {{\"scalar_secs\": {s2:.6}, \"batched_secs\": {b2:.6}, \"speedup\": {r2:.2}}}\n  }},\n  \
         \"soa_simd\": {{\n    \
         \"backend\": \"{backend}\",\n    \
         \"kde1d_n2000_q64_r001\": {{\"row_scalar_secs\": {old1:.6}, \"soa_engine_secs\": {new1:.6}, \"speedup\": {r1d:.2}, \"max_relative_drift\": {drift1:.3e}}},\n    \
         \"kde1d_n2000_q256_r001\": {{\"row_scalar_secs\": {old1e:.6}, \"soa_engine_secs\": {new1e:.6}, \"speedup\": {r1e:.2}, \"max_relative_drift\": {drift1e:.3e}}},\n    \
         \"kde3d_q32_r030\": {{\"row_scalar_secs\": {old3:.6}, \"soa_engine_secs\": {new3:.6}, \"speedup\": {r3:.2}, \"max_relative_drift\": {drift:.3e}}}\n  }},\n  \
         \"compression\": {{\n    \
         \"centres_before\": {c_before}, \"centres_after\": {c_after},\n    \
         \"full_query_secs\": {c_full:.6}, \"compressed_query_secs\": {c_packed:.6}, \"speedup\": {rc:.2}\n  }},\n  \
         \"incremental_maintenance\": {{\n    \
         \"pushes\": {pushes}, \"replica_cap\": 100,\n    \
         \"rebuild_always_secs\": {rebuild:.6}, \"epoch_default_secs\": {epoch:.6}, \"speedup\": {hot_path:.2}\n  }},\n  \
         \"mgdd_hot_path_speedup\": {hot_path:.2}\n}}\n",
        smoke = smoke(),
        r1 = s1 / b1,
        r2 = s2 / b2,
        r1d = old1 / new1,
        r1e = old1e / new1e,
        r3 = old3 / new3,
        rc = c_full / c_packed,
        pushes = sized(20_000, 2_000),
    );
    std::fs::write("BENCH_kde.json", &json).expect("write BENCH_kde.json");
    print!("{json}");
    eprintln!(
        "kde1d batched {:.2}x, kde2d batched {:.2}x, soa engine ({backend}) 1d {:.2}x (q64) / {:.2}x (q256) / 3d {:.2}x, \
         compression {} -> {} centres ({:.2}x queries), incremental maintenance {hot_path:.2}x",
        s1 / b1,
        s2 / b2,
        old1 / new1,
        old1e / new1e,
        old3 / new3,
        c_before,
        c_after,
        c_full / c_packed,
    );

    // Per-phase attribution via the obs registry: where the work goes
    // between bandwidth selection, scalar kernel integration and the
    // batched sweep fast path. Counters (queries, kernel evaluations)
    // and span histograms (build/sweep latency) per phase.
    let xs = sample_1d(1_000);
    let kde = Kde1d::from_sample(&xs, 0.1, 10_000.0).unwrap();
    let queries: Vec<f64> = (0..64).map(|i| i as f64 / 64.0).collect();
    let ((), bandwidth) = snod_bench::obs_report::phase(|| {
        for _ in 0..200 {
            for &sigma in &[0.05, 0.1, 0.2] {
                black_box(scott_bandwidth(black_box(sigma), xs.len(), 1));
            }
        }
    });
    let ((), kernel_integration) = snod_bench::obs_report::phase(|| {
        for _ in 0..200 {
            for &p in &queries {
                black_box(kde.neighborhood_count(black_box(&[p]), 0.01).unwrap());
            }
        }
    });
    let ((), sweep) = snod_bench::obs_report::phase(|| {
        for _ in 0..200 {
            black_box(kde.neighborhood_counts(black_box(&queries), 0.01).unwrap());
        }
    });
    let phases = vec![
        ("bandwidth".to_string(), bandwidth.clone()),
        ("kernel_integration".to_string(), kernel_integration.clone()),
        ("sweep".to_string(), sweep.clone()),
    ];
    snod_bench::obs_report::write_phases("BENCH_kde_metrics.json", &phases)
        .expect("write BENCH_kde_metrics.json");
    if snod_obs::enabled() {
        eprintln!(
            "phase attribution: bandwidth calls {}, scalar kernels {}, sweep kernels {} \
             (BENCH_kde_metrics.json)",
            bandwidth.counter("density.bandwidth.calls").unwrap_or(0),
            kernel_integration
                .counter("density.scalar.kernels")
                .unwrap_or(0),
            sweep.counter("density.sweep.kernels").unwrap_or(0),
        );
    }
}
